//! Offline stand-in for the `criterion` crate (API-compatible subset).
//!
//! Implements the surface used by the QuHE benches — `Criterion`,
//! `benchmark_group`, `Bencher::iter`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros — on top of a simple
//! wall-clock loop: a short warm-up, then timed batches until either the
//! sample budget or the time budget (`QUHE_BENCH_MS`, default 300 ms per
//! benchmark) is exhausted. Results are printed as mean/min time per
//! iteration plus derived throughput when one was declared.
//!
//! It accepts and ignores the CLI flags cargo passes to bench binaries
//! (`--bench`, `--test`, filters), so `cargo bench` and `cargo test --benches`
//! both work. Passing `--test` runs each benchmark exactly once, as upstream
//! criterion does.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's historical name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared per-iteration workload, used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    max_samples: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording the wall-clock time of each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std_black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warm-up: one untimed call (also pre-faults code and data paths).
        std_black_box(routine());
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn env_ms(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_throughput(per_iter: Duration, tp: Throughput) -> String {
    let secs = per_iter.as_secs_f64().max(1e-12);
    match tp {
        Throughput::Bytes(b) => {
            let rate = b as f64 / secs;
            if rate >= 1e9 {
                format!("{:.2} GiB/s", rate / (1u64 << 30) as f64)
            } else {
                format!("{:.2} MiB/s", rate / (1u64 << 20) as f64)
            }
        }
        Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / secs / 1e6),
    }
}

/// Entry point mirroring criterion's `Criterion` configuration object.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            default_budget: Duration::from_millis(env_ms("QUHE_BENCH_MS", 300)),
        }
    }
}

impl Criterion {
    /// Runs a single stand-alone benchmark.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run_one(id.as_ref(), None, self.default_budget, 100, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: 100,
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        budget: Duration,
        max_samples: usize,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            budget,
            max_samples,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("{id}: test ok");
            return;
        }
        if bencher.samples.is_empty() {
            println!("{id}: no samples collected");
            return;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{id}: mean {} / best {} ({} samples)",
            format_duration(mean),
            format_duration(min),
            bencher.samples.len()
        );
        if let Some(tp) = throughput {
            line.push_str(&format!(" [{}]", format_throughput(mean, tp)));
        }
        println!("{line}");
    }
}

/// A group of benchmarks sharing a name prefix, throughput and sample budget.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Caps the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let budget = self.criterion.default_budget;
        let samples = self.sample_size;
        self.criterion
            .run_one(&full, self.throughput, budget, samples, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
}

/// Generates `fn main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_formats() {
        let mut c = Criterion {
            test_mode: false,
            filter: None,
            default_budget: Duration::from_millis(5),
        };
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("group");
        g.throughput(Throughput::Bytes(1024)).sample_size(5);
        g.bench_function("inner", |b| b.iter(|| black_box(1u64 << 20)));
        g.finish();
        assert!(format_duration(Duration::from_nanos(10)).contains("ns"));
        assert!(format_duration(Duration::from_micros(10)).contains("µs"));
        assert!(
            format_throughput(Duration::from_millis(1), Throughput::Elements(1000))
                .contains("Melem/s")
        );
    }
}
