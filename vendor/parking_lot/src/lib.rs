//! Offline stand-in for the `parking_lot` crate (API-compatible subset).
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind `parking_lot`'s non-poisoning
//! interface: `lock()` returns the guard directly and a panicked holder does
//! not poison the lock for later users.

#![forbid(unsafe_code)]

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed
    /// with exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose acquisition methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip_and_try_lock() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.try_lock().map(|g| *g), Some(7));
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_allows_many_readers() {
        let l = RwLock::new(vec![1, 2]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 4);
        drop((a, b));
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
