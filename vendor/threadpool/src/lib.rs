//! Offline stand-in for a thread-pool crate: scoped data-parallel mapping
//! over borrowed data.
//!
//! The real QuHE workloads are a small number of heavy, independent solver
//! jobs (stage-3 multi-starts, whole-scenario solves of a batch grid), so the
//! pool is deliberately simple: each [`ThreadPool::par_map`] call spawns its
//! workers inside a [`std::thread::scope`] and the workers self-schedule jobs
//! off a shared atomic counter. Self-scheduling gives the same load-balancing
//! property as work stealing for coarse-grained jobs — an idle worker
//! immediately claims the next unclaimed job — without any unsafe code or
//! long-lived queues, and borrowed inputs (`&[T]`) need no `'static` bound.
//!
//! Results are returned in input order and the selection of jobs is
//! deterministic; only the execution interleaving varies between runs, so a
//! caller that reduces the results in input order is fully reproducible.

#![forbid(unsafe_code)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-size scoped thread pool.
///
/// The pool stores only its target worker count; threads are spawned per
/// [`ThreadPool::par_map`] call inside a scope, so a pool is `Copy`-cheap to
/// create and never leaks OS threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    /// A pool sized to the machine's available parallelism.
    fn default() -> Self {
        Self::new(0)
    }
}

impl ThreadPool {
    /// Creates a pool with `threads` workers. `0` means "use the machine's
    /// available parallelism"; any positive value is used as given (so `1`
    /// forces serial execution).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            available_parallelism()
        } else {
            threads
        };
        Self { threads }
    }

    /// The number of worker threads this pool will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every element of `items` and returns the results in
    /// input order.
    ///
    /// Jobs are claimed by idle workers off a shared counter, so long and
    /// short jobs balance automatically. With one worker (or zero/one item)
    /// no threads are spawned and the map runs inline on the caller.
    ///
    /// # Panics
    /// Propagates a panic from `f` once all workers have finished.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_indexed(items, |_, item| f(item))
    }

    /// Like [`ThreadPool::par_map`] but the closure also receives the item's
    /// index.
    ///
    /// # Panics
    /// Propagates a panic from `f` once all workers have finished.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else {
                        break;
                    };
                    let result = f(index, item);
                    *slots[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every job index below items.len() was claimed and completed")
            })
            .collect()
    }
}

/// The machine's available parallelism (at least 1).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// One-shot convenience: `par_map` on a pool of `threads` workers
/// (`0` = available parallelism).
pub fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    ThreadPool::new(threads).par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = ThreadPool::new(4).par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_variant_sees_correct_indices() {
        let items = vec!["a", "b", "c", "d", "e"];
        let out = ThreadPool::new(3).par_map_indexed(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..1000).collect();
        let out = ThreadPool::new(8).par_map(&items, |&x| {
            counter.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_worker_runs_inline() {
        let items = vec![1, 2, 3];
        let out = ThreadPool::new(1).par_map(&items, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u8> = vec![];
        let out = ThreadPool::default().par_map(&items, |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = ThreadPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(pool.threads(), available_parallelism());
    }

    #[test]
    fn borrowed_non_static_data_is_supported() {
        let owned: Vec<String> = (0..10).map(|i| i.to_string()).collect();
        let refs: Vec<&str> = owned.iter().map(String::as_str).collect();
        let lengths = par_map(0, &refs, |s| s.len());
        assert_eq!(lengths.iter().sum::<usize>(), 10);
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..16).collect();
        ThreadPool::new(4).par_map(&items, |&x| {
            if x == 7 {
                panic!("job 7");
            }
            x
        });
    }
}
