//! Offline stand-in for the `proptest` crate (API-compatible subset).
//!
//! Supports the pattern used throughout the QuHE test suite:
//!
//! ```ignore
//! proptest! {
//!     #[test]
//!     fn property(a in 0.0f64..1.0, b in 1u64..10) {
//!         prop_assert!(a < 1.0, "a was {}", a);
//!     }
//! }
//! ```
//!
//! Each property runs `PROPTEST_CASES` (default 128) deterministic cases:
//! inputs are drawn from the range strategies with a fixed-seed generator, so
//! failures reproduce exactly across runs. Unlike upstream proptest there is
//! no shrinking — the failing case is reported as-is.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// Number of cases each property is executed with.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(128)
}

/// Builds the deterministic per-property generator. The property name is
/// hashed into the seed so different properties see different streams.
pub fn test_rng(name: &str) -> StdRng {
    use rand::SeedableRng;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values for one property input.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug + Clone;
    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + std::fmt::Debug + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + std::fmt::Debug + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Per-block configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run for each property in the block.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: cases() as u32,
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{StdRng, Strategy};

    /// Strategy producing `Vec`s of a fixed length, each element drawn from
    /// `element` (upstream accepts a size range; only the exact-length form
    /// is used in this workspace).
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// A strategy producing a single fixed value (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Everything a test module needs: the macros plus the [`Strategy`] trait.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cases ($config).cases as usize; $($rest)* }
    };
    (@cases $cases:expr; $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut __proptest_rng = $crate::test_rng(stringify!($name));
                for __proptest_case in 0..$cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)*
                    let __proptest_inputs =
                        format!(concat!($("  ", stringify!($arg), " = {:?}\n",)*) $(, $arg)*);
                    let __proptest_result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(panic) = __proptest_result {
                        eprintln!(
                            "proptest: property `{}` failed at case {} with inputs:\n{}",
                            stringify!($name),
                            __proptest_case,
                            __proptest_inputs,
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cases $crate::cases(); $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the sampled inputs on
/// failure (stand-in for proptest's early-return version; this one panics).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_eq!($left, $right $(, $($fmt)*)?);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)*)?) => {
        assert_ne!($left, $right $(, $($fmt)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 0.25f64..0.75, k in 1i64..=3, fixed in Just(7u8)) {
            prop_assert!((0.25..0.75).contains(&x), "x out of range: {x}");
            prop_assert!((1..=3).contains(&k));
            prop_assert_eq!(fixed, 7u8);
            prop_assert_ne!(fixed, 8u8);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::Strategy;
        let mut a = crate::test_rng("p");
        let mut b = crate::test_rng("p");
        let strat = 0.0f64..1.0;
        for _ in 0..16 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    #[test]
    fn failing_property_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0.0f64..1.0) {
                    prop_assert!(x > 2.0);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
