//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the narrow slice of `rand` 0.8 that the QuHE code
//! actually uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] extension methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed and statistically strong
//! enough for the Monte-Carlo checks in the test suite (e.g. verifying that
//! Rayleigh fading has unit mean over 2·10⁵ samples). It is **not** the same
//! stream as upstream `rand`'s ChaCha12-based `StdRng`, so seeds produce
//! different (but still reproducible) draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the generator's full range
/// (the stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Scalar types that can be drawn uniformly from a half-open or inclusive
/// range (the stand-in for `rand`'s `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. `low < high` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`. `low <= high` must hold.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let u: $t = Standard::sample(rng);
                low + u * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                // For floats the closed upper bound is reached with
                // probability ~2^-53; treat it like the half-open case.
                Self::sample_half_open(low, high, rng)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide);
                let draw = rng.next_u64() as $wide % span;
                ((low as $wide).wrapping_add(draw)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                let draw = rng.next_u64() as $wide % span;
                ((low as $wide).wrapping_add(draw)) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64
);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        let u: f64 = self.gen();
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        let mut c = rngs::StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_float_stays_in_range_and_has_half_mean() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0f64..5.0);
            assert!((-3.0..5.0).contains(&x));
            let k = rng.gen_range(-1i64..=1);
            assert!((-1..=1).contains(&k));
            let m = rng.gen_range(0u64..97);
            assert!(m < 97);
        }
    }

    #[test]
    fn inclusive_integer_range_hits_all_values() {
        let mut rng = rngs::StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v = rng.gen_range(-1i64..=1);
            seen[(v + 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
