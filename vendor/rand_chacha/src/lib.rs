//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha20Rng`] — an RNG drawing its stream from a genuine
//! ChaCha20 keystream (RFC 8439 block function, 20 rounds) — implementing the
//! vendored `rand` stub's [`rand::RngCore`] and [`rand::SeedableRng`] traits.
//! `seed_from_u64` expands the seed with SplitMix64 into the 256-bit key, as
//! upstream `rand` does, so the construction is deterministic; the exact
//! stream differs from upstream `rand_chacha` (which seeds differently) but
//! reproduces across runs.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 20;

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha20_block(key: &[u32; 8], counter: u64, output: &mut [u32; 16]) {
    let mut state: [u32; 16] = [
        0x6170_7865,
        0x3320_646e,
        0x7962_2d32,
        0x6b20_6574,
        key[0],
        key[1],
        key[2],
        key[3],
        key[4],
        key[5],
        key[6],
        key[7],
        counter as u32,
        (counter >> 32) as u32,
        0,
        0,
    ];
    let initial = state;
    for _ in 0..ROUNDS / 2 {
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    for (out, (s, i)) in output.iter_mut().zip(state.iter().zip(initial.iter())) {
        *out = s.wrapping_add(*i);
    }
}

/// An RNG whose output is the ChaCha20 keystream for a seed-derived key.
#[derive(Debug, Clone)]
pub struct ChaCha20Rng {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    index: usize,
}

impl SeedableRng for ChaCha20Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = next();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        let mut rng = ChaCha20Rng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl ChaCha20Rng {
    fn refill(&mut self) {
        chacha20_block(&self.key, self.counter, &mut self.block);
        self.counter += 1;
        self.index = 0;
    }
}

impl RngCore for ChaCha20Rng {
    fn next_u64(&mut self) -> u64 {
        if self.index + 2 > 16 {
            self.refill();
        }
        let lo = u64::from(self.block[self.index]);
        let hi = u64::from(self.block[self.index + 1]);
        self.index += 2;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_block_test_vector() {
        // RFC 8439 §2.3.2 uses key 00 01 .. 1f, nonce with a leading 0x09 /
        // 0x4a pattern and block counter 1. Our state layout zeroes the nonce
        // words, so check the zero-key zero-counter stream against a
        // self-consistency property instead: the block function must be a
        // bijection-like mix — two different counters give different blocks.
        let key = [0u32; 8];
        let mut b0 = [0u32; 16];
        let mut b1 = [0u32; 16];
        chacha20_block(&key, 0, &mut b0);
        chacha20_block(&key, 1, &mut b1);
        assert_ne!(b0, b1);
        let mut b0_again = [0u32; 16];
        chacha20_block(&key, 0, &mut b0_again);
        assert_eq!(b0, b0_again);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha20Rng::seed_from_u64(7);
        let mut b = ChaCha20Rng::seed_from_u64(7);
        let mut c = ChaCha20Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_draws_are_well_spread() {
        use rand::Rng;
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
