//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many domain types but
//! never serializes through them (there is no `serde_json` or transport layer
//! yet), so these derive macros accept the full attribute syntax —
//! `#[derive(serde::Serialize)]`, `#[serde(transparent)]`, etc. — and expand
//! to nothing. Swap for the real crates the moment serialization is needed.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
