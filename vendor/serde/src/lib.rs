//! Offline stand-in for the `serde` crate.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros from the
//! vendored `serde_derive` so `#[derive(serde::Serialize, serde::Deserialize)]`
//! compiles. No runtime serialization machinery is provided — nothing in the
//! workspace serializes through serde yet.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
