//! The solve service end to end: JSON request in, JSON response out, with
//! the three cache paths on display.
//!
//! The walkthrough builds a [`SolveService`] over the built-in solvers and
//! catalogue, then sends three requests through the JSON protocol:
//!
//! 1. a cold request for a catalogue world — solved from scratch and cached;
//! 2. the *same* request again — an exact fingerprint hit: zero solver work,
//!    and the report (including its `runtime_s`) is bit-identical to the
//!    first response;
//! 3. a drifted variant of the same world — a shape-fingerprint near miss:
//!    warm-started from the cached optimum and guarded by the cold
//!    single-start floor.
//!
//! ```bash
//! cargo run --release --example serve_roundtrip
//! ```

use quhe::prelude::*;

fn main() {
    let service = ServiceConfig::new(QuheConfig {
        max_outer_iterations: 4,
        max_stage3_iterations: 30,
        tolerance: 1e-3,
        solver_threads: 1,
        ..QuheConfig::default()
    })
    .build();

    // 1. A cold request, as it would arrive on the wire.
    let request = r#"{"id": "req-1", "scenario": {"catalog": "paper_default", "seed": 42}, "solver": "quhe"}"#;
    println!("request 1 (cold): {request}");
    let cold = SolveResponse::from_json(&service.handle_json(request)).unwrap();
    println!(
        "  -> cache={} objective={:.4} solve runtime={:.3}s service wall={:.3}s fingerprint={}",
        cold.cache.tag(),
        cold.report.objective,
        cold.report.runtime_s,
        cold.service_wall_s,
        cold.fingerprint
    );
    assert_eq!(cold.cache, CacheOutcome::Cold);

    // 2. The same request again: an exact content-addressed hit.
    let hit = SolveResponse::from_json(&service.handle_json(request)).unwrap();
    println!(
        "request 2 (repeat) -> cache={} solve runtime={:.3}s service wall={:.6}s",
        hit.cache.tag(),
        hit.report.runtime_s,
        hit.service_wall_s
    );
    assert_eq!(hit.cache, CacheOutcome::Hit);
    // Bit-identical, including the wall time of the solve that produced it —
    // the lookup's own (tiny) cost lives only in service_wall_s.
    assert_eq!(hit.report, cold.report);
    assert_eq!(
        hit.report.runtime_s.to_bits(),
        cold.report.runtime_s.to_bits()
    );

    // 3. The same world after two drift steps: same shape, different
    //    content — served warm from the cached anchor.
    let drifted_request = SolveRequest::drifted("paper_default", 42, 2).with_id("req-3");
    println!("request 3 (drifted): {}", drifted_request.to_json());
    let drifted = service.handle(&drifted_request).unwrap();
    println!(
        "  -> cache={} objective={:.4} outer_iterations={} (cold solve took {})",
        drifted.cache.tag(),
        drifted.report.objective,
        drifted.report.outer_iterations,
        cold.report.outer_iterations
    );
    assert!(matches!(
        drifted.cache,
        CacheOutcome::Warm | CacheOutcome::WarmFallback
    ));
    assert_eq!(drifted.shape_fingerprint, cold.shape_fingerprint);
    assert_ne!(drifted.fingerprint, cold.fingerprint);

    let stats = service.stats();
    println!(
        "service stats: {} cold / {} hit / {} warm / {} fallback, {} cached reports",
        stats.cold_solves,
        stats.exact_hits,
        stats.warm_hits,
        stats.warm_fallbacks,
        stats.cached_reports
    );
    assert_eq!(stats.total(), 3);
}
