//! QKD network planning: explore how entanglement-rate allocation and link
//! fidelity trade off on the SURFnet topology, and how Stage 1 of QuHE picks
//! the utility-optimal operating point.
//!
//! ```bash
//! cargo run --example qkd_network_planning
//! ```

use quhe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = surfnet_scenario();
    println!("== SURFnet QKD backbone (paper Tables III & IV) ==");
    println!("  key center: {}", network.key_center());
    for route in network.routes() {
        let hops = route.link_ids.len();
        println!(
            "  route {} -> {:<10} via {} links {:?}",
            route.id, route.destination, hops, route.link_ids
        );
    }

    // -------------------------------------------------- fidelity vs. rate --
    println!(
        "\n== Link capacity trade-off (Eq. 3): link 1, beta = {:.2} ==",
        network.links()[0].beta
    );
    for w in [0.90, 0.95, 0.98, 0.995] {
        let capacity = link_capacity(network.links()[0].beta, WernerParameter::new(w)?)?;
        println!(
            "  w = {w:.3} -> capacity {capacity:6.2} pairs/s, F_skf = {:.3}",
            secret_key_fraction(WernerParameter::new(w)?)
        );
    }

    // --------------------------------------- symmetric allocation utility --
    println!("\n== Network utility for symmetric rate allocations (Eq. 6) ==");
    let incidence = network.incidence();
    let betas = network.betas();
    for rate in [0.5, 0.75, 1.0, 1.25, 1.5] {
        let phi = vec![rate; network.num_clients()];
        match optimal_werner(incidence, &phi, &betas) {
            Ok(w) => {
                let utility = network_utility(incidence, &phi, &w)?;
                println!("  phi = {rate:.2} pairs/s each -> U_qkd = {utility:.4e}");
            }
            Err(e) => println!("  phi = {rate:.2} pairs/s each -> infeasible ({e})"),
        }
    }

    // -------------------------------------------------------- QuHE stage 1 --
    println!("\n== Stage-1 optimal allocation (problem P3) ==");
    let scenario = SystemScenario::paper_default(7);
    let problem = Problem::new(scenario, QuheConfig::default())?;
    let stage1 = Stage1Solver::new().solve(&problem)?;
    println!(
        "  solved in {:.3} s, {} barrier iterations",
        stage1.runtime_s, stage1.iterations
    );
    for (route, phi) in problem.scenario().qkd().routes().iter().zip(&stage1.phi) {
        println!(
            "  route {} ({:<10}) phi* = {:.3} pairs/s",
            route.id, route.destination, phi
        );
    }
    let utility = network_utility(problem.scenario().qkd().incidence(), &stage1.phi, &stage1.w)?;
    println!("  optimal U_qkd = {utility:.4e}");

    // -------------------------------------------- protocol-level validation --
    println!("\n== Protocol-level validation of the secret-key fraction law ==");
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(3);
    let route = &network.routes()[3]; // Hilversum -> Rotterdam, 2 hops
    let per_link_w: Vec<f64> = route.link_ids.iter().map(|&l| stage1.w[l - 1]).collect();
    let protocol = EntanglementProtocol::new(ProtocolConfig::new(per_link_w, 100_000)?);
    let outcome = protocol.run(&mut rng);
    println!(
        "  route {} simulated: QBER {:.4}, measured key fraction {:.4}, analytic F_skf {:.4}",
        route.id,
        outcome.qber,
        outcome.secret_key_fraction,
        protocol.analytic_secret_key_fraction()
    );
    Ok(())
}
