//! The framed TCP front end from a client's point of view.
//!
//! The example starts a [`TcpServer`] on an ephemeral loopback port — in a
//! deployment this is the long-running process — and then speaks to it over
//! a plain `TcpStream` exactly as an external client would:
//!
//! 1. a `quhe-serve/v2` request, framed as 4-byte big-endian length + JSON:
//!    cold solve;
//! 2. the identical request again: an exact cache hit, bit-identical report;
//! 3. a drifted near miss: warm-started from the cached anchor;
//! 4. a garbage frame: the structured error envelope comes back and the
//!    *same connection* keeps working — malformed input never costs the
//!    session.
//!
//! ```bash
//! cargo run --release --example tcp_client
//! ```

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use quhe::core::json::JsonValue;
use quhe::prelude::*;
use quhe::serve::wire::{self, read_frame};

/// Frames `body`, sends it, and returns the parsed reply envelope.
fn exchange(stream: &mut TcpStream, body: &str) -> WireReply {
    wire::write_frame(stream, body.as_bytes()).expect("writing the request frame");
    let frame = read_frame(stream)
        .expect("reading the reply frame")
        .expect("the server answers every frame");
    WireReply::from_json(std::str::from_utf8(&frame).expect("replies are UTF-8 JSON"))
        .expect("parsing the reply envelope")
}

/// A v2 body: the request object plus the protocol marker.
fn v2_body(request: &SolveRequest) -> String {
    let mut value = request.to_json_value();
    value.set("proto", JsonValue::String(PROTOCOL_V2.to_string()));
    value.to_compact_string()
}

fn main() {
    // Server side: a solve service behind the framed TCP listener. The
    // builder sizes everything; port 0 picks an ephemeral port.
    let service = ServiceConfig::new(QuheConfig {
        max_outer_iterations: 4,
        max_stage3_iterations: 30,
        tolerance: 1e-3,
        solver_threads: 1,
        ..QuheConfig::default()
    })
    .with_worker_threads(2)
    .build();
    let server = TcpServer::bind(Arc::new(service), "127.0.0.1:0").expect("binding the listener");
    println!("serving on {} ({PROTOCOL_V2})", server.local_addr());

    // Client side: one ordinary TCP connection.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connecting");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();

    // 1. Cold solve.
    let request = SolveRequest::catalog("paper_default", 42).with_id("req-1");
    println!("\n-> {}", v2_body(&request));
    let WireReply::Ok(cold) = exchange(&mut stream, &v2_body(&request)) else {
        panic!("the cold request must succeed");
    };
    println!(
        "<- id={:?} cache={} objective={:.4} solve runtime={:.3}s",
        cold.id,
        cold.cache.tag(),
        cold.report.objective,
        cold.report.runtime_s
    );
    assert_eq!(cold.cache, CacheOutcome::Cold);

    // 2. The identical request: an exact hit, bit-identical report.
    let again = request.clone().with_id("req-2");
    let WireReply::Ok(hit) = exchange(&mut stream, &v2_body(&again)) else {
        panic!("the repeat request must succeed");
    };
    println!(
        "<- id={:?} cache={} (report bit-identical: {})",
        hit.id,
        hit.cache.tag(),
        hit.report == cold.report
    );
    assert_eq!(hit.cache, CacheOutcome::Hit);
    assert_eq!(hit.report, cold.report);

    // 3. A drifted near miss: same world shape, perturbed channels — served
    //    from the warm-start path.
    let drifted = SolveRequest::drifted("paper_default", 42, 1).with_id("req-3");
    let WireReply::Ok(warm) = exchange(&mut stream, &v2_body(&drifted)) else {
        panic!("the drifted request must succeed");
    };
    println!(
        "<- id={:?} cache={} objective={:.4}",
        warm.id,
        warm.cache.tag(),
        warm.report.objective
    );
    assert!(matches!(
        warm.cache,
        CacheOutcome::Warm | CacheOutcome::WarmFallback
    ));

    // 4. Garbage on the wire: a structured error envelope, and the
    //    connection survives to serve the next request.
    println!("\n-> this is not json");
    let WireReply::Err { kind, message, .. } = exchange(&mut stream, "this is not json") else {
        panic!("garbage must be rejected");
    };
    println!("<- error kind={kind} message={message:?}");
    assert_eq!(kind, "invalid_request");
    let WireReply::Ok(after) = exchange(&mut stream, &v2_body(&again.with_id("req-4"))) else {
        panic!("the connection must survive the malformed frame");
    };
    println!(
        "<- id={:?} cache={} — connection survived the garbage frame",
        after.id,
        after.cache.tag()
    );

    drop(stream);
    server.shutdown();
    println!("\nserver drained and shut down cleanly");
}
