//! Custom solver end-to-end: implement the [`Solver`] trait, register the
//! solver in a [`SolverRegistry`] next to the built-ins, run it through the
//! same `solve(scenario, spec)` call every harness uses, and round-trip its
//! [`SolveReport`] through JSON.
//!
//! The example solver is **throttled-AA**: the average allocation with every
//! transmit power scaled down by a throttle factor — a crude energy saver
//! that trades delay for transmit energy. It is deliberately simple; the
//! point is the integration surface, not the method.
//!
//! ```bash
//! cargo run --release --example custom_solver
//! ```

use std::time::Instant;

use quhe::prelude::*;

/// The average allocation with transmit powers throttled to
/// `throttle * p_max`.
#[derive(Debug, Clone, Copy)]
struct ThrottledAa {
    config: QuheConfig,
    /// Fraction of the maximum transmit power each client uses, in (0, 1].
    throttle: f64,
}

impl Solver for ThrottledAa {
    fn name(&self) -> &str {
        "throttled_aa"
    }

    fn description(&self) -> &str {
        "average allocation with transmit powers throttled to a fraction of p_max"
    }

    fn config(&self) -> &QuheConfig {
        &self.config
    }

    fn with_config(&self, config: QuheConfig) -> Box<dyn Solver> {
        Box::new(Self { config, ..*self })
    }

    fn solve(&self, scenario: &SystemScenario, spec: &SolveSpec) -> QuheResult<SolveReport> {
        // A one-shot method: warm starts make no sense, so reject them with
        // the same error shape the built-in baselines use.
        spec.require_cold_start(self.name())?;
        let config = spec.effective_config(&self.config);
        let wall = Instant::now();
        let problem = Problem::new(scenario.clone(), config)?;
        // Start from the deterministic AA point, throttle the power block,
        // and re-tighten the auxiliary delay bound for the slower uploads.
        let mut vars = problem.initial_point()?;
        for p in &mut vars.power {
            *p *= self.throttle;
        }
        vars.delay_bound = problem.system_cost(&vars)?.total_delay_s;
        problem.check_feasible(&vars)?;
        let metrics = MethodMetrics::evaluate(&problem, &vars)?;
        Ok(SolveReport {
            solver: self.name().to_string(),
            spec: spec.clone(),
            objective: metrics.objective,
            variables: vars,
            metrics,
            outer_iterations: 0,
            converged: true,
            outer_trace: Vec::new(),
            stage_calls: [0; 3],
            stage1: None,
            stage2: None,
            stage3: None,
            runtime_s: wall.elapsed().as_secs_f64(),
        }
        .instrumented(spec.instrumentation()))
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = SystemScenario::paper_default(42);
    let config = QuheConfig {
        max_outer_iterations: 3,
        max_stage3_iterations: 10,
        ..QuheConfig::default()
    };

    // Register the custom solver next to the built-ins; it is now
    // addressable exactly like `quhe` or `aa`.
    let mut registry = SolverRegistry::builtin_with(config);
    registry.register(Box::new(ThrottledAa {
        config,
        throttle: 0.5,
    }))?;
    println!("registered solvers: {:?}", registry.names());

    println!("\n== objective / energy / delay on the paper scenario ==");
    println!(
        "{:<14} {:>12} {:>14} {:>12}",
        "solver", "objective", "energy (J)", "delay (s)"
    );
    for name in ["aa", "throttled_aa", "quhe"] {
        let report = registry.solve(name, &scenario, &SolveSpec::cold())?;
        println!(
            "{:<14} {:>12.4} {:>14.4e} {:>12.4e}",
            name, report.objective, report.metrics.energy_j, report.metrics.delay_s
        );
    }

    // Specs work unchanged on custom solvers: here a tolerance override (a
    // no-op for this one-shot method, but uniformly accepted) …
    let throttled = registry.solve(
        "throttled_aa",
        &scenario,
        &SolveSpec::cold().with_tolerance(1e-2),
    )?;
    // … and the report round-trips through the same JSON surface the bench
    // artifacts use.
    let json = throttled.to_json();
    let parsed = SolveReport::from_json(&json)?;
    assert_eq!(parsed, throttled);
    println!(
        "\nthrottled_aa report round-trips through {} bytes of JSON",
        json.len()
    );

    // Throttling halves the transmit energy share but lengthens uploads; the
    // AA baseline must therefore beat it on delay and lose on energy.
    let aa = registry.solve("aa", &scenario, &SolveSpec::cold())?;
    assert!(throttled.metrics.energy_j < aa.metrics.energy_j);
    assert!(throttled.metrics.delay_s > aa.metrics.delay_s);
    println!("throttled_aa saves energy and pays delay versus AA, as designed");
    Ok(())
}
