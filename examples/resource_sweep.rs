//! Resource sweep: how the QuHE objective responds to the total bandwidth
//! and the maximum transmit power, compared against the average-allocation
//! baseline — a condensed version of the paper's Fig. 6 study (the full
//! four-panel sweep lives in `quhe-bench`'s `fig6_sweeps` binary).
//!
//! ```bash
//! cargo run --release --example resource_sweep
//! ```

use quhe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = SystemScenario::paper_default(11);
    // A lighter configuration than the benches use, to keep the example fast.
    let config = QuheConfig {
        max_outer_iterations: 3,
        max_stage3_iterations: 10,
        ..QuheConfig::default()
    };
    let registry = SolverRegistry::builtin_with(config);

    println!("== Objective vs. total bandwidth (cf. Fig. 6(a)) ==");
    println!("{:>12} | {:>10} | {:>10}", "B_total", "AA", "QuHE");
    for bandwidth in [5e6, 7.5e6, 10e6, 12.5e6, 15e6] {
        let scenario = base.with_mec(base.mec().clone().with_total_bandwidth(bandwidth))?;
        let aa = registry.solve("aa", &scenario, &SolveSpec::cold())?;
        let quhe = registry.solve("quhe", &scenario, &SolveSpec::cold())?;
        println!(
            "{:>10.1} M | {:>10.4} | {:>10.4}",
            bandwidth / 1e6,
            aa.objective,
            quhe.objective
        );
    }

    println!("\n== Objective vs. maximum transmit power (cf. Fig. 6(b)) ==");
    println!("{:>12} | {:>10} | {:>10}", "p_max (W)", "AA", "QuHE");
    for power in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let scenario = base.with_mec(base.mec().clone().with_max_power(power))?;
        let aa = registry.solve("aa", &scenario, &SolveSpec::cold())?;
        let quhe = registry.solve("quhe", &scenario, &SolveSpec::cold())?;
        println!(
            "{:>12.1} | {:>10.4} | {:>10.4}",
            power, aa.objective, quhe.objective
        );
    }

    println!("\nQuHE should dominate AA at every operating point, with the gap");
    println!("widening as the resource budgets grow (the paper's Fig. 6 shape).");
    Ok(())
}
