//! The full cryptographic data path of the QuHE system (Section III-A of the
//! paper), end to end and functional:
//!
//! 1. the key center distributes symmetric key material to a client over a
//!    simulated SURFnet QKD route (entanglement swapping + Werner noise),
//! 2. the client masks its samples with a ChaCha20 keystream keyed by the
//!    QKD-distributed secret,
//! 3. the edge server transciphers the masked samples into CKKS ciphertexts
//!    and evaluates an encrypted linear model on them,
//! 4. the client decrypts and checks the prediction.
//!
//! ```bash
//! cargo run --example secure_edge_pipeline
//! ```

use quhe::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(2025);

    // ---------------------------------------------------------------- QKD --
    // Route 1 of Table III (Hilversum -> Delft over links 17, 2, 1), with
    // link Werner parameters taken from the QuHE Stage-1 solution's order of
    // magnitude.
    let network = surfnet_scenario();
    let route = &network.routes()[0];
    println!(
        "== Phase 1: QKD key distribution over route {} ({} -> {}) ==",
        route.id, route.source, route.destination
    );
    let link_werners = vec![0.97, 0.96, 0.98];
    let protocol = EntanglementProtocol::new(ProtocolConfig::new(link_werners, 200_000)?);
    let outcome = protocol.run(&mut rng);
    println!(
        "  distributed {} pairs, sifted {} bits, QBER {:.3}, secret fraction {:.3}",
        outcome.raw_pairs, outcome.sifted_bits, outcome.qber, outcome.secret_key_fraction
    );

    // Buffer the sifted key and withdraw a 256-bit symmetric key.
    let pool = KeyPool::new();
    pool.deposit(&outcome.sifted_key);
    let qkd_key = pool.withdraw(32)?;
    println!(
        "  key pool now holds {} bytes after withdrawing a 32-byte key",
        pool.available()
    );

    // --------------------------------------------------- client encryption --
    println!("\n== Phase 2: client-side symmetric encryption ==");
    let samples: Vec<f64> = (0..16).map(|i| (i as f64) * 0.25 - 2.0).collect();
    let session = TranscipherSession::new(&qkd_key, 0);
    let masked = session.mask(&samples);
    println!(
        "  first sample {:.2} masked to {:.2}",
        samples[0], masked[0]
    );

    // The client also runs KeyGen(lambda, q) and publishes the public key.
    let params = CkksParameters::demo_parameters();
    let context = CkksContext::new(params)?;
    let keys = context.generate_keys(&mut rng);
    println!(
        "  CKKS context: degree {}, {} slots, scale 2^{}",
        context.params().degree,
        context.slots(),
        context.params().scale.log2() as u32
    );

    // ------------------------------------------------ server transciphering --
    println!("\n== Phase 3/4: server transciphering and encrypted evaluation ==");
    let enc_data = session.transcipher(&context, &keys.public, &masked, &mut rng)?;
    // Encrypted prediction: y = w * x + bias, slot-wise.
    let weights: Vec<f64> = (0..samples.len()).map(|i| 0.5 + 0.05 * i as f64).collect();
    let bias = vec![0.25; samples.len()];
    let wx = context.multiply_plain(&enc_data, &context.encode(&weights)?)?;
    let y = context.add_plain(&wx, &context.encode_at_scale(&bias, wx.scale)?)?;

    // ------------------------------------------------------ client decrypt --
    let decrypted = context.decode(&context.decrypt(&y, &keys.secret)?, samples.len())?;
    println!("  sample | expected | decrypted");
    let mut max_err: f64 = 0.0;
    for (i, ((x, w), b)) in samples.iter().zip(&weights).zip(&bias).enumerate() {
        let expected = x * w + b;
        let got = decrypted[i];
        max_err = max_err.max((expected - got).abs());
        if i < 5 {
            println!("  {i:>6} | {expected:>8.4} | {got:>9.4}");
        }
    }
    println!(
        "  maximum absolute error across {} slots: {max_err:.4}",
        samples.len()
    );
    assert!(max_err < 0.05, "encrypted evaluation error too large");

    // ------------------------------------------------------- cost account --
    println!("\n== Cost accounting (the quantities the optimizer trades off) ==");
    let lambda = 1u64 << 15;
    println!(
        "  at lambda = 2^15: f_eval = {:.3e} cycles/sample, f_cmp = {:.3e} cycles/sample, msl = {:.1} bits",
        eval_cycles_per_sample(lambda as f64),
        server_cycles_per_sample(lambda as f64),
        min_security_level(lambda as f64)
    );
    let estimate = estimate_security(lambda as usize, 2f64.powi(881), 3.2);
    println!(
        "  LWE-estimator surrogate at (n = 2^15, log q = 881): {:.0} bits (min over {} attacks)",
        estimate.min_security_bits,
        estimate.per_attack.len()
    );
    Ok(())
}
