//! Scenario catalogue tour: list every registered world, register a custom
//! generator, and solve the whole catalogue as one parallel batch.
//!
//! ```bash
//! cargo run --release --example scenario_catalogue
//! ```

use quhe::prelude::*;

/// A custom world: four IoT sensors close to the server with tiny uploads.
struct IotSensors;

impl ScenarioGenerator for IotSensors {
    fn name(&self) -> &str {
        "iot_sensors"
    }

    fn description(&self) -> &str {
        "4 nearby low-power sensors with 100 Mbit uploads"
    }

    fn num_clients(&self) -> usize {
        4
    }

    fn generate(&self, seed: u64) -> MecScenario {
        // Start from the paper's client profile and shrink the workload: the
        // easiest way to build a custom world is to edit a generated one.
        let base = MecScenario::paper_with_num_clients(4, seed);
        let clients = base
            .clients()
            .iter()
            .map(|c| ClientProfile {
                upload_bits: 1e8,
                tokens: 20.0,
                max_power_w: 0.05,
                ..*c
            })
            .collect();
        MecScenario::new(clients, 10e6, 20e9, 1e-28, base.noise_psd())
            .expect("sensor parameters are positive")
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = ScenarioCatalog::builtin();
    catalog.register(Box::new(IotSensors))?;

    println!("== scenario catalogue ==");
    for generator in catalog.registry().iter() {
        println!(
            "  {:<22} {:>3} clients  {}",
            generator.name(),
            generator.num_clients(),
            generator.description()
        );
    }

    // Solve the whole catalogue for one seed as a parallel batch. Stage-3
    // multi-start stays serial inside each solve; the batch is the parallel
    // axis.
    let config = QuheConfig {
        max_outer_iterations: 2,
        max_stage3_iterations: 8,
        solver_threads: 1,
        ..QuheConfig::default()
    };
    let registry = SolverRegistry::builtin_with(config);
    let named = catalog.generate_all(42)?;
    let scenarios: Vec<SystemScenario> = named.iter().map(|(_, s)| s.clone()).collect();
    println!("\nsolving {} scenarios in parallel...", scenarios.len());
    let outcomes = registry
        .resolve("quhe")?
        .solve_batch(&scenarios, &SolveSpec::cold(), 0);

    println!(
        "\n{:<22} {:>8} {:>12} {:>12} {:>10}",
        "scenario", "clients", "objective", "AA", "gap"
    );
    for ((name, scenario), outcome) in named.iter().zip(outcomes) {
        let quhe = outcome?;
        let aa = registry.solve("aa", scenario, &SolveSpec::cold())?;
        println!(
            "{:<22} {:>8} {:>12.4} {:>12.4} {:>10.4}",
            name,
            scenario.num_clients(),
            quhe.objective,
            aa.objective,
            quhe.objective - aa.objective
        );
    }
    Ok(())
}
