//! Quickstart: run the QuHE solver on the paper's evaluation scenario and
//! compare it against the three whole-procedure baselines — all four through
//! the unified `SolverRegistry` surface.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use quhe::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Section VI-A scenario: the SURFnet QKD backbone (Tables III & IV)
    // paired with six MEC clients in a 1 km cell.
    let scenario = SystemScenario::paper_default(42);
    let registry = SolverRegistry::builtin();

    println!("== QuHE quickstart ==");
    println!(
        "scenario: {} clients, {} QKD links, B_total = {:.1} MHz, f_total = {:.1} GHz",
        scenario.num_clients(),
        scenario.num_links(),
        scenario.mec().total_bandwidth_hz() / 1e6,
        scenario.mec().total_server_frequency_hz() / 1e9,
    );

    // Run the three-stage QuHE algorithm (Algorithm 4).
    let quhe = registry.solve("quhe", &scenario, &SolveSpec::cold())?;
    println!("\nQuHE finished in {:.2} s:", quhe.runtime_s);
    println!("  outer iterations : {}", quhe.outer_iterations);
    println!(
        "  stage calls       : stage1 = {}, stage2 = {}, stage3 = {}",
        quhe.stage_calls[0], quhe.stage_calls[1], quhe.stage_calls[2]
    );
    println!("  metrics           : {}", quhe.metrics);
    println!(
        "  entanglement rates phi* = {:?}",
        round3(&quhe.variables.phi)
    );
    println!("  polynomial degrees lambda* = {:?}", quhe.variables.lambda);

    // Baselines of Section VI-B — the same call, different registry names.
    println!("\n== Baseline comparison (objective of Eq. 17) ==");
    let mut best_baseline = f64::NEG_INFINITY;
    for name in ["aa", "olaa", "occr"] {
        let report = registry.solve(name, &scenario, &SolveSpec::cold())?;
        println!("  {:<5} objective = {:>10.4}", name, report.objective);
        best_baseline = best_baseline.max(report.objective);
    }
    println!("  {:<5} objective = {:>10.4}", "quhe", quhe.objective);

    println!(
        "\nQuHE improves over the best baseline by {:.4}",
        quhe.objective - best_baseline
    );
    Ok(())
}

fn round3(values: &[f64]) -> Vec<f64> {
    values
        .iter()
        .map(|v| (v * 1000.0).round() / 1000.0)
        .collect()
}
