//! Property tests for the `quhe-opt` primitives the QuHE stages are built
//! on: projection idempotence and feasibility, line-search monotonicity, and
//! quadratic-transform consistency with the direct fractional objective.
//!
//! These properties are the contracts the Stage-3 solver silently relies on;
//! pinning them here means a refactor of the toolkit cannot regress them
//! without a named failure.

use proptest::prelude::*;
use quhe_opt::diff::central_gradient;
use quhe_opt::fractional::{QuadraticTransform, RatioTerm};
use quhe_opt::gradient::{ProjectedGradient, ProjectedGradientConfig};
use quhe_opt::line_search::ArmijoLineSearch;
use quhe_opt::projection::{BoxProjection, Projection, SimplexCapProjection};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn box_projection_is_idempotent_and_feasible(
        x in proptest::collection::vec(-10.0f64..10.0, 6),
        lower in -3.0f64..0.0,
        span in 0.1f64..5.0,
    ) {
        let upper = lower + span;
        let boxed = BoxProjection::uniform(6, lower, upper).unwrap();
        let projected = boxed.projected(&x);
        // Feasibility: every coordinate lands inside the box.
        for v in &projected {
            prop_assert!(*v >= lower && *v <= upper, "{v} escaped [{lower}, {upper}]");
        }
        // Idempotence: projecting a projected point is an exact no-op.
        prop_assert_eq!(boxed.projected(&projected), projected.clone());
        prop_assert!(boxed.contains(&projected, 1e-12));
        // Interior points are untouched.
        let interior = boxed.midpoint();
        prop_assert_eq!(boxed.projected(&interior), interior);
    }

    #[test]
    fn simplex_cap_projection_is_idempotent_and_feasible(
        x in proptest::collection::vec(-2.0f64..8.0, 5),
        lower in 0.0f64..0.3,
        slack in 0.5f64..10.0,
    ) {
        // The cap always dominates the lower-bound sum, so the set is
        // non-empty by construction.
        let cap = 5.0 * lower + slack;
        let simplex = SimplexCapProjection::uniform(5, lower, cap).unwrap();
        let projected = simplex.projected(&x);
        // Feasibility: lower bounds and the budget both hold.
        let total: f64 = projected.iter().sum();
        prop_assert!(total <= cap + 1e-9, "budget violated: {total} > {cap}");
        for v in &projected {
            prop_assert!(*v >= lower - 1e-12, "{v} below the lower bound {lower}");
        }
        // Idempotence: a feasible point projects to itself exactly.
        prop_assert_eq!(simplex.projected(&projected), projected.clone());
        // The strictly feasible equal split is untouched.
        let split = simplex.equal_split();
        prop_assert_eq!(simplex.projected(&split), split.clone());
    }

    #[test]
    fn line_search_never_increases_the_objective(
        center in proptest::collection::vec(-3.0f64..3.0, 4),
        curvature in proptest::collection::vec(0.1f64..4.0, 4),
        start in proptest::collection::vec(-5.0f64..5.0, 4),
    ) {
        // A strictly convex quadratic with a random center and curvatures.
        let f = move |x: &[f64]| -> f64 {
            x.iter()
                .zip(&center)
                .zip(&curvature)
                .map(|((xi, c), k)| k * (xi - c) * (xi - c))
                .sum()
        };
        let fx = f(&start);
        let grad = central_gradient(&f, &start, 1e-6);
        let direction: Vec<f64> = grad.iter().map(|g| -g).collect();
        // At the unconstrained minimum the gradient vanishes and there is no
        // descent direction; skip those draws.
        if grad.iter().map(|g| g * g).sum::<f64>() > 1e-12 {
            let outcome = ArmijoLineSearch::default()
                .search(&f, &start, fx, &grad, &direction, |_| true)
                .unwrap();
            prop_assert!(
                outcome.value <= fx,
                "line search increased the objective: {fx} -> {}",
                outcome.value
            );
            prop_assert!(outcome.step > 0.0);
            // The accepted point is exactly x + step * d.
            for ((p, s), d) in outcome.point.iter().zip(&start).zip(&direction) {
                prop_assert!((p - (s + outcome.step * d)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quadratic_transform_surrogate_is_tight_at_the_fixed_point(
        num in 0.5f64..5.0,
        den in 0.5f64..5.0,
        z_scale in 0.1f64..10.0,
    ) {
        // At the optimal auxiliary z* = 1/(2 a b) the Eq. (26) surrogate
        // equals the ratio a/b exactly — the fixed point of the alternating
        // scheme evaluates the direct fractional objective.
        let term = RatioTerm::new(move |_: &[f64]| num, move |_: &[f64]| den);
        let x = [0.0];
        let z_star = term.optimal_auxiliary(&x);
        prop_assert!((term.surrogate(&x, z_star) - term.value(&x)).abs() < 1e-12);
        // Away from the fixed point the surrogate upper-bounds the ratio, so
        // minimizing it can never under-report the true objective.
        let z_off = z_star * z_scale;
        prop_assert!(term.surrogate(&x, z_off) >= term.value(&x) - 1e-12);
    }

    #[test]
    fn quadratic_transform_solution_matches_the_direct_objective(
        weight in 0.5f64..5.0,
        offset in 0.5f64..3.0,
        start in 0.2f64..9.0,
    ) {
        // minimize x + weight * (x^2 + 1) / (x + offset) over [0.1, 10].
        let direct = move |x: f64| x + weight * (x * x + 1.0) / (x + offset);
        let term = RatioTerm::new(
            |x: &[f64]| x[0] * x[0] + 1.0,
            move |x: &[f64]| x[0] + offset,
        );
        let terms = vec![term];
        let projection = BoxProjection::uniform(1, 0.1, 10.0).unwrap();
        let inner = ProjectedGradient::new(ProjectedGradientConfig::default());
        let result = QuadraticTransform::default()
            .solve(
                |x: &[f64]| x[0],
                &terms,
                &[weight],
                &[start],
                |x, z| {
                    let z0 = z[0];
                    let surrogate = move |y: &[f64]| {
                        let num = y[0] * y[0] + 1.0;
                        let den = y[0] + offset;
                        y[0] + weight * (num * num * z0 + 1.0 / (4.0 * den * den * z0))
                    };
                    Ok(inner.minimize(&surrogate, &projection, x)?.solution)
                },
            )
            .unwrap();
        // The reported objective is the direct fractional objective at the
        // returned solution — the transform introduces no bias.
        prop_assert!(
            (result.objective - direct(result.solution[0])).abs() < 1e-9,
            "reported {} vs direct {}",
            result.objective,
            direct(result.solution[0])
        );
        // And the alternation never worsened the start.
        prop_assert!(result.objective <= direct(start) + 1e-9);
        for pair in result.trace.windows(2) {
            prop_assert!(pair[1] <= pair[0] + 1e-9, "trace increased: {pair:?}");
        }
    }
}
