//! Error type shared by all solvers in this crate.

use std::fmt;

/// Convenient alias for `Result<T, OptError>`.
pub type OptResult<T> = Result<T, OptError>;

/// Errors produced by the optimization toolkit.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OptError {
    /// A configuration value is outside its admissible range.
    InvalidConfig {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// The provided starting point (or some other input vector) has the wrong
    /// dimension.
    DimensionMismatch {
        /// Dimension the solver expected.
        expected: usize,
        /// Dimension it received.
        actual: usize,
    },
    /// The starting point violates the feasible set and could not be repaired.
    InfeasibleStart {
        /// Description of the violated constraint.
        reason: String,
    },
    /// The objective or a constraint returned a non-finite value.
    NonFiniteValue {
        /// Where the non-finite value was observed.
        context: String,
    },
    /// A linear system arising inside a solver (e.g. the Newton step) is
    /// singular or not positive definite.
    SingularSystem,
    /// The solver exhausted its iteration budget without satisfying its
    /// convergence criterion and the caller requested strict convergence.
    DidNotConverge {
        /// Iterations performed before giving up.
        iterations: usize,
    },
    /// The discrete search space handed to branch-and-bound is empty.
    EmptySearchSpace,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            OptError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            OptError::InfeasibleStart { reason } => {
                write!(f, "infeasible starting point: {reason}")
            }
            OptError::NonFiniteValue { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            OptError::SingularSystem => {
                write!(f, "linear system is singular or not positive definite")
            }
            OptError::DidNotConverge { iterations } => {
                write!(f, "solver did not converge within {iterations} iterations")
            }
            OptError::EmptySearchSpace => write!(f, "discrete search space is empty"),
        }
    }
}

impl std::error::Error for OptError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = OptError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('2'));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OptError>();
    }
}
