//! Uniform random search, the paper's "random selection" Stage-1 baseline
//! (10^4 uniform samples from the feasible box, keep the best).

use rand::Rng;

use crate::error::{OptError, OptResult};
use crate::projection::BoxProjection;
use crate::OptimizeResult;

/// Configuration for [`RandomSearch`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RandomSearchConfig {
    /// Number of uniform samples to draw (the paper uses `10^4`).
    pub samples: usize,
}

impl Default for RandomSearchConfig {
    fn default() -> Self {
        Self { samples: 10_000 }
    }
}

impl RandomSearchConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] when `samples` is zero.
    pub fn validate(&self) -> OptResult<()> {
        if self.samples == 0 {
            return Err(OptError::InvalidConfig {
                reason: "samples must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Uniform random-search minimizer over a box.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSearch {
    config: RandomSearchConfig,
}

impl RandomSearch {
    /// Creates a solver with the given configuration.
    pub fn new(config: RandomSearchConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RandomSearchConfig {
        &self.config
    }

    /// Minimizes `f` by sampling points uniformly in `bounds`. Samples where
    /// `f` is non-finite (e.g. outside an implicit domain) are skipped, which
    /// mirrors how the paper samples only from the feasible space.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for a zero sample budget.
    /// * [`OptError::DidNotConverge`] when every sampled point was infeasible
    ///   (non-finite objective).
    pub fn minimize<F, R>(
        &self,
        f: &F,
        bounds: &BoxProjection,
        rng: &mut R,
    ) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        self.config.validate()?;
        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut trace = Vec::new();
        for _ in 0..self.config.samples {
            let candidate: Vec<f64> = bounds
                .lower()
                .iter()
                .zip(bounds.upper())
                .map(|(l, u)| if u > l { rng.gen_range(*l..*u) } else { *l })
                .collect();
            let value = f(&candidate);
            if !value.is_finite() {
                continue;
            }
            let improved = best.as_ref().is_none_or(|(_, b)| value < *b);
            if improved {
                best = Some((candidate, value));
                trace.push(value);
            }
        }
        match best {
            Some((solution, objective)) => Ok(OptimizeResult {
                solution,
                objective,
                iterations: self.config.samples,
                converged: true,
                trace,
            }),
            None => Err(OptError::DidNotConverge {
                iterations: self.config.samples,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gets_close_to_minimum_with_enough_samples() {
        let f = |x: &[f64]| (x[0] - 0.25).powi(2);
        let bounds = BoxProjection::uniform(1, 0.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let res = RandomSearch::default()
            .minimize(&f, &bounds, &mut rng)
            .unwrap();
        assert!(res.objective < 1e-4);
        assert_eq!(res.iterations, 10_000);
    }

    #[test]
    fn skips_infeasible_samples() {
        // Objective only finite for x > 0.5.
        let f = |x: &[f64]| if x[0] > 0.5 { x[0] } else { f64::NAN };
        let bounds = BoxProjection::uniform(1, 0.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let res = RandomSearch::default()
            .minimize(&f, &bounds, &mut rng)
            .unwrap();
        assert!(res.solution[0] > 0.5);
    }

    #[test]
    fn all_infeasible_is_an_error() {
        let f = |_: &[f64]| f64::NAN;
        let bounds = BoxProjection::uniform(1, 0.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert!(matches!(
            RandomSearch::new(RandomSearchConfig { samples: 10 }).minimize(&f, &bounds, &mut rng),
            Err(OptError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn improvement_trace_is_strictly_decreasing() {
        let f = |x: &[f64]| x[0].abs();
        let bounds = BoxProjection::uniform(1, -1.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let res = RandomSearch::default()
            .minimize(&f, &bounds, &mut rng)
            .unwrap();
        for w in res.trace.windows(2) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn zero_samples_rejected() {
        assert!(RandomSearchConfig { samples: 0 }.validate().is_err());
    }
}
