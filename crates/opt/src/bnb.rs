//! Best-first branch-and-bound over per-variable discrete choices.
//!
//! Stage 2 of the QuHE algorithm selects the CKKS polynomial degree
//! `lambda_n` of every client from a small discrete set (the paper uses
//! `{2^15, 2^16, 2^17}`) to maximize the Stage-2 objective `F_s2(lambda)`
//! (Eq. 22). The paper's Algorithm 2 is a textbook best-first branch-and-bound
//! with an upper bound computed on partial assignments; this module provides
//! that engine generically so it can be tested in isolation and reused by the
//! ablation benches (exhaustive search vs. branch-and-bound).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::error::{OptError, OptResult};

/// A maximization problem over a vector of discrete choices.
///
/// Variable `i` takes one of `choices(i).len()` values, identified by index.
pub trait DiscreteProblem {
    /// Number of discrete decision variables.
    fn num_variables(&self) -> usize;
    /// The admissible value indices for variable `index` (usually
    /// `0..num_choices`). The returned vector must be non-empty.
    fn choices(&self, index: usize) -> Vec<usize>;
    /// Objective value of a complete assignment (to be maximized).
    fn evaluate(&self, assignment: &[usize]) -> f64;
    /// Upper bound on the objective achievable by any completion of
    /// `partial` (which assigns the first `partial.len()` variables). The
    /// default bound is `+inf`, which makes the search exhaustive but still
    /// correct; tighter bounds prune more.
    fn upper_bound(&self, partial: &[usize]) -> f64 {
        let _ = partial;
        f64::INFINITY
    }
}

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BranchAndBoundConfig {
    /// Safety cap on the number of explored nodes (the QuHE instance explores
    /// at most `M^N = 3^6 = 729` leaves, so the default is generous).
    pub max_nodes: usize,
}

impl Default for BranchAndBoundConfig {
    fn default() -> Self {
        Self {
            max_nodes: 1_000_000,
        }
    }
}

/// Outcome of a branch-and-bound search.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BranchAndBoundResult {
    /// The best complete assignment found (value index per variable).
    pub assignment: Vec<usize>,
    /// Objective value of [`BranchAndBoundResult::assignment`].
    pub objective: f64,
    /// Number of nodes (partial assignments) expanded.
    pub nodes_expanded: usize,
    /// Number of complete assignments evaluated.
    pub leaves_evaluated: usize,
    /// Incumbent objective value after each improvement, in order; useful for
    /// convergence plots (Fig. 4(b) of the paper plots the Stage-2 objective
    /// across iterations).
    pub incumbent_trace: Vec<f64>,
}

#[derive(Debug)]
struct Node {
    partial: Vec<usize>,
    bound: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on the bound; NaN-safe by treating NaN as -inf.
        let a = if self.bound.is_nan() {
            f64::NEG_INFINITY
        } else {
            self.bound
        };
        let b = if other.bound.is_nan() {
            f64::NEG_INFINITY
        } else {
            other.bound
        };
        a.partial_cmp(&b).unwrap_or(Ordering::Equal)
    }
}

/// Best-first branch-and-bound maximizer (the paper's Algorithm 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound {
    config: BranchAndBoundConfig,
}

impl BranchAndBound {
    /// Creates a solver with the given configuration.
    pub fn new(config: BranchAndBoundConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BranchAndBoundConfig {
        &self.config
    }

    /// Maximizes the discrete problem.
    ///
    /// # Errors
    /// * [`OptError::EmptySearchSpace`] if the problem has no variables or a
    ///   variable has no admissible values.
    /// * [`OptError::DidNotConverge`] if the node cap is reached before the
    ///   queue empties.
    pub fn maximize<P: DiscreteProblem>(&self, problem: &P) -> OptResult<BranchAndBoundResult> {
        let n = problem.num_variables();
        if n == 0 {
            return Err(OptError::EmptySearchSpace);
        }
        for i in 0..n {
            if problem.choices(i).is_empty() {
                return Err(OptError::EmptySearchSpace);
            }
        }

        let mut queue = BinaryHeap::new();
        queue.push(Node {
            partial: Vec::new(),
            bound: f64::INFINITY,
        });
        let mut best_assignment: Option<Vec<usize>> = None;
        let mut best_value = f64::NEG_INFINITY;
        let mut nodes_expanded = 0usize;
        let mut leaves_evaluated = 0usize;
        let mut incumbent_trace = Vec::new();

        while let Some(node) = queue.pop() {
            if nodes_expanded >= self.config.max_nodes {
                return Err(OptError::DidNotConverge {
                    iterations: nodes_expanded,
                });
            }
            nodes_expanded += 1;
            // Prune nodes whose bound can no longer beat the incumbent.
            if node.bound <= best_value {
                continue;
            }
            if node.partial.len() == n {
                let value = problem.evaluate(&node.partial);
                leaves_evaluated += 1;
                if value > best_value {
                    best_value = value;
                    best_assignment = Some(node.partial.clone());
                    incumbent_trace.push(value);
                }
                continue;
            }
            let var = node.partial.len();
            for choice in problem.choices(var) {
                let mut partial = node.partial.clone();
                partial.push(choice);
                let bound = if partial.len() == n {
                    problem.evaluate(&partial)
                } else {
                    problem.upper_bound(&partial)
                };
                if bound > best_value {
                    queue.push(Node { partial, bound });
                } // otherwise prune immediately
            }
        }

        let assignment = best_assignment.ok_or(OptError::EmptySearchSpace)?;
        Ok(BranchAndBoundResult {
            assignment,
            objective: best_value,
            nodes_expanded,
            leaves_evaluated,
            incumbent_trace,
        })
    }

    /// Exhaustively enumerates every complete assignment, returning the same
    /// result type. Used as the ablation baseline for Stage 2 and in tests to
    /// confirm that branch-and-bound finds the true optimum.
    ///
    /// # Errors
    /// Same conditions as [`BranchAndBound::maximize`].
    pub fn exhaustive<P: DiscreteProblem>(&self, problem: &P) -> OptResult<BranchAndBoundResult> {
        let n = problem.num_variables();
        if n == 0 {
            return Err(OptError::EmptySearchSpace);
        }
        let choices: Vec<Vec<usize>> = (0..n).map(|i| problem.choices(i)).collect();
        if choices.iter().any(|c| c.is_empty()) {
            return Err(OptError::EmptySearchSpace);
        }
        let mut assignment = vec![0usize; n];
        let mut indices = vec![0usize; n];
        let mut best_assignment = None;
        let mut best_value = f64::NEG_INFINITY;
        let mut leaves = 0usize;
        let mut incumbent_trace = Vec::new();
        loop {
            for (i, &idx) in indices.iter().enumerate() {
                assignment[i] = choices[i][idx];
            }
            let value = problem.evaluate(&assignment);
            leaves += 1;
            if value > best_value {
                best_value = value;
                best_assignment = Some(assignment.clone());
                incumbent_trace.push(value);
            }
            // Odometer increment.
            let mut pos = n;
            loop {
                if pos == 0 {
                    break;
                }
                pos -= 1;
                indices[pos] += 1;
                if indices[pos] < choices[pos].len() {
                    break;
                }
                indices[pos] = 0;
                if pos == 0 {
                    let assignment = best_assignment.ok_or(OptError::EmptySearchSpace)?;
                    return Ok(BranchAndBoundResult {
                        assignment,
                        objective: best_value,
                        nodes_expanded: leaves,
                        leaves_evaluated: leaves,
                        incumbent_trace,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Maximize sum of chosen values with per-variable value tables.
    struct TableProblem {
        tables: Vec<Vec<f64>>,
    }

    impl DiscreteProblem for TableProblem {
        fn num_variables(&self) -> usize {
            self.tables.len()
        }
        fn choices(&self, index: usize) -> Vec<usize> {
            (0..self.tables[index].len()).collect()
        }
        fn evaluate(&self, assignment: &[usize]) -> f64 {
            assignment
                .iter()
                .enumerate()
                .map(|(i, &c)| self.tables[i][c])
                .sum()
        }
        fn upper_bound(&self, partial: &[usize]) -> f64 {
            let assigned: f64 = partial
                .iter()
                .enumerate()
                .map(|(i, &c)| self.tables[i][c])
                .sum();
            let optimistic: f64 = self.tables[partial.len()..]
                .iter()
                .map(|t| t.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
                .sum();
            assigned + optimistic
        }
    }

    #[test]
    fn finds_separable_optimum() {
        let p = TableProblem {
            tables: vec![vec![1.0, 5.0, 2.0], vec![3.0, 1.0], vec![0.0, 0.5, 4.0]],
        };
        let res = BranchAndBound::default().maximize(&p).unwrap();
        assert_eq!(res.assignment, vec![1, 0, 2]);
        assert!((res.objective - 12.0).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_search_on_random_tables() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let tables: Vec<Vec<f64>> = (0..5)
                .map(|_| (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let p = TableProblem { tables };
            let solver = BranchAndBound::default();
            let bnb = solver.maximize(&p).unwrap();
            let exh = solver.exhaustive(&p).unwrap();
            assert!((bnb.objective - exh.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn pruning_reduces_leaf_evaluations() {
        let p = TableProblem {
            tables: vec![vec![10.0, 0.0]; 10],
        };
        let solver = BranchAndBound::default();
        let bnb = solver.maximize(&p).unwrap();
        let exh = solver.exhaustive(&p).unwrap();
        assert_eq!(exh.leaves_evaluated, 1 << 10);
        assert!(
            bnb.leaves_evaluated < exh.leaves_evaluated,
            "bnb evaluated {} leaves",
            bnb.leaves_evaluated
        );
        assert!((bnb.objective - 100.0).abs() < 1e-12);
    }

    #[test]
    fn incumbent_trace_is_increasing() {
        let p = TableProblem {
            tables: vec![vec![1.0, 2.0, 3.0]; 4],
        };
        let res = BranchAndBound::default().maximize(&p).unwrap();
        for w in res.incumbent_trace.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn empty_problems_are_rejected() {
        struct Empty;
        impl DiscreteProblem for Empty {
            fn num_variables(&self) -> usize {
                0
            }
            fn choices(&self, _index: usize) -> Vec<usize> {
                vec![]
            }
            fn evaluate(&self, _assignment: &[usize]) -> f64 {
                0.0
            }
        }
        assert_eq!(
            BranchAndBound::default().maximize(&Empty),
            Err(OptError::EmptySearchSpace)
        );
        assert_eq!(
            BranchAndBound::default().exhaustive(&Empty),
            Err(OptError::EmptySearchSpace)
        );
    }

    #[test]
    fn node_cap_triggers_did_not_converge() {
        let p = TableProblem {
            tables: vec![vec![0.0, 1.0]; 12],
        };
        let solver = BranchAndBound::new(BranchAndBoundConfig { max_nodes: 3 });
        assert!(matches!(
            solver.maximize(&p),
            Err(OptError::DidNotConverge { .. })
        ));
    }
}
