//! Projections onto the feasible sets that appear in the QuHE subproblems.
//!
//! Stage 3 of the QuHE algorithm optimizes per-client transmit power,
//! bandwidth and CPU frequencies subject to per-variable boxes
//! (constraints 17e and 17g of the paper) and to budget constraints coupling
//! the clients (17f for bandwidth, 17h for server CPU). Both are handled by
//! the projections in this module.

use crate::error::{OptError, OptResult};

/// A Euclidean projection onto a closed convex set.
pub trait Projection {
    /// Projects `x` onto the set, in place.
    fn project(&self, x: &mut [f64]);

    /// Returns the projected copy of `x`.
    ///
    /// Allocates on every call; iteration loops should prefer the in-place
    /// [`Projection::project`] on a reused buffer.
    #[must_use = "projected() allocates and returns a new vector; use project() to modify in place"]
    fn projected(&self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        self.project(&mut y);
        y
    }

    /// Whether `x` already lies in the set (up to `tol`).
    fn contains(&self, x: &[f64], tol: f64) -> bool {
        let p = self.projected(x);
        x.iter()
            .zip(&p)
            .all(|(a, b)| (a - b).abs() <= tol * a.abs().max(1.0))
    }
}

/// The identity projection (unconstrained problems).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProjection;

impl Projection for NoProjection {
    fn project(&self, _x: &mut [f64]) {}
}

/// Per-coordinate box `l_i <= x_i <= u_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxProjection {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl BoxProjection {
    /// Creates a box from per-coordinate bounds.
    ///
    /// # Errors
    /// * [`OptError::DimensionMismatch`] if the bound vectors have different
    ///   lengths.
    /// * [`OptError::InvalidConfig`] if any lower bound exceeds its upper
    ///   bound or a bound is NaN.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> OptResult<Self> {
        if lower.len() != upper.len() {
            return Err(OptError::DimensionMismatch {
                expected: lower.len(),
                actual: upper.len(),
            });
        }
        for (i, (l, u)) in lower.iter().zip(&upper).enumerate() {
            if l.is_nan() || u.is_nan() || l > u {
                return Err(OptError::InvalidConfig {
                    reason: format!("box bounds invalid at index {i}: [{l}, {u}]"),
                });
            }
        }
        Ok(Self { lower, upper })
    }

    /// Creates an `n`-dimensional box with identical bounds in every
    /// coordinate.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] when `lower > upper` or a bound is
    /// NaN.
    pub fn uniform(n: usize, lower: f64, upper: f64) -> OptResult<Self> {
        Self::new(vec![lower; n], vec![upper; n])
    }

    /// The dimension of the box.
    pub fn len(&self) -> usize {
        self.lower.len()
    }

    /// Whether the box is zero-dimensional.
    pub fn is_empty(&self) -> bool {
        self.lower.is_empty()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Midpoint of the box, a convenient strictly feasible starting point.
    pub fn midpoint(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(&self.upper)
            .map(|(l, u)| 0.5 * (l + u))
            .collect()
    }
}

impl Projection for BoxProjection {
    fn project(&self, x: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.lower.len(),
            "box projection: dimension mismatch"
        );
        for ((xi, l), u) in x.iter_mut().zip(&self.lower).zip(&self.upper) {
            *xi = xi.clamp(*l, *u);
        }
    }
}

/// Projection onto `{ x : l_i <= x_i, sum_i x_i <= cap }`.
///
/// This is the feasible set of the bandwidth (17f) and server-CPU (17h)
/// budget constraints combined with positivity. The projection first clamps
/// to the lower bounds and then, if the budget is violated, shifts all
/// coordinates down by a common multiplier found by bisection (the standard
/// water-filling style KKT solution of the projection subproblem).
#[derive(Debug, Clone, PartialEq)]
pub struct SimplexCapProjection {
    lower: Vec<f64>,
    cap: f64,
}

impl SimplexCapProjection {
    /// Creates the projection for per-coordinate lower bounds `lower` and the
    /// budget `cap`.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] when the lower bounds already
    /// exceed the cap (the set would be empty) or any value is non-finite.
    pub fn new(lower: Vec<f64>, cap: f64) -> OptResult<Self> {
        if !cap.is_finite() || lower.iter().any(|l| !l.is_finite()) {
            return Err(OptError::InvalidConfig {
                reason: "simplex-cap projection requires finite bounds".to_string(),
            });
        }
        let lower_sum: f64 = lower.iter().sum();
        if lower_sum > cap {
            return Err(OptError::InvalidConfig {
                reason: format!(
                    "lower-bound sum {lower_sum} exceeds the budget {cap}; feasible set is empty"
                ),
            });
        }
        Ok(Self { lower, cap })
    }

    /// Creates the projection with a common lower bound in every coordinate.
    ///
    /// # Errors
    /// Same conditions as [`SimplexCapProjection::new`].
    pub fn uniform(n: usize, lower: f64, cap: f64) -> OptResult<Self> {
        Self::new(vec![lower; n], cap)
    }

    /// The total budget.
    pub fn cap(&self) -> f64 {
        self.cap
    }

    /// An interior point that splits the budget equally above the lower
    /// bounds (useful as a strictly feasible start).
    pub fn equal_split(&self) -> Vec<f64> {
        let n = self.lower.len().max(1) as f64;
        let slack = (self.cap - self.lower.iter().sum::<f64>()).max(0.0);
        // Keep a small margin so budget constraints stay strictly inactive.
        let share = 0.95 * slack / n;
        self.lower.iter().map(|l| l + share).collect()
    }
}

impl Projection for SimplexCapProjection {
    fn project(&self, x: &mut [f64]) {
        assert_eq!(
            x.len(),
            self.lower.len(),
            "simplex projection: dimension mismatch"
        );
        // Clamp to lower bounds first.
        for (xi, l) in x.iter_mut().zip(&self.lower) {
            if *xi < *l {
                *xi = *l;
            }
        }
        let total: f64 = x.iter().sum();
        if total <= self.cap {
            return;
        }
        // Find mu >= 0 such that sum_i max(l_i, x_i - mu) == cap by bisection.
        let mut lo = 0.0_f64;
        let mut hi = x
            .iter()
            .zip(&self.lower)
            .map(|(xi, l)| xi - l)
            .fold(0.0_f64, f64::max);
        let eval = |mu: f64, x: &[f64]| -> f64 {
            x.iter()
                .zip(&self.lower)
                .map(|(xi, l)| (xi - mu).max(*l))
                .sum::<f64>()
        };
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            // Once the midpoint lands on an endpoint, the interval can no
            // longer move: every later iteration recomputes the same `mid`
            // and re-applies the same update (0.5 * (m + m) == m exactly in
            // binary floating point), so the remaining iterations of the
            // nominal 200 are no-ops and the loop exits with exactly the
            // bits it would have produced — in practice after ~60 rounds.
            let stalled = mid.to_bits() == lo.to_bits() || mid.to_bits() == hi.to_bits();
            if eval(mid, x) > self.cap {
                lo = mid;
            } else {
                hi = mid;
            }
            if stalled {
                break;
            }
        }
        let mu = hi;
        for (xi, l) in x.iter_mut().zip(&self.lower) {
            *xi = (*xi - mu).max(*l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_projection_clamps() {
        let b = BoxProjection::uniform(3, 0.0, 1.0).unwrap();
        let mut x = vec![-1.0, 0.5, 2.0];
        b.project(&mut x);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
        assert!(b.contains(&x, 1e-12));
        assert_eq!(b.midpoint(), vec![0.5, 0.5, 0.5]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn box_rejects_inverted_bounds() {
        assert!(BoxProjection::uniform(2, 1.0, 0.0).is_err());
        assert!(BoxProjection::new(vec![0.0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn no_projection_is_identity() {
        let p = NoProjection;
        let mut x = vec![1.0, -7.0];
        p.project(&mut x);
        assert_eq!(x, vec![1.0, -7.0]);
    }

    #[test]
    fn simplex_cap_noop_when_feasible() {
        let p = SimplexCapProjection::uniform(3, 0.0, 10.0).unwrap();
        let mut x = vec![1.0, 2.0, 3.0];
        p.project(&mut x);
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn simplex_cap_projects_onto_budget() {
        let p = SimplexCapProjection::uniform(3, 0.0, 3.0).unwrap();
        let mut x = vec![4.0, 2.0, 0.0];
        p.project(&mut x);
        let total: f64 = x.iter().sum();
        assert!((total - 3.0).abs() < 1e-6, "budget not met: {total}");
        // Projection of (4,2,0) onto the capped simplex keeps ordering.
        assert!(x[0] > x[1] && x[1] >= x[2]);
        assert!(x.iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn simplex_cap_respects_lower_bounds() {
        let p = SimplexCapProjection::new(vec![0.5, 0.5, 0.5], 2.0).unwrap();
        let mut x = vec![10.0, 0.0, 0.0];
        p.project(&mut x);
        let total: f64 = x.iter().sum();
        assert!(total <= 2.0 + 1e-6);
        assert!(x.iter().all(|&v| v >= 0.5 - 1e-9));
    }

    #[test]
    fn simplex_cap_rejects_empty_set() {
        assert!(SimplexCapProjection::uniform(4, 1.0, 3.0).is_err());
    }

    #[test]
    fn equal_split_is_strictly_feasible() {
        let p = SimplexCapProjection::uniform(4, 0.1, 2.0).unwrap();
        let x = p.equal_split();
        let total: f64 = x.iter().sum();
        assert!(total < 2.0);
        assert!(x.iter().all(|&v| v > 0.1));
    }
}
