//! Log-barrier interior-point method for smooth convex problems with
//! inequality constraints.
//!
//! This plays the role CVX plays in the paper's Matlab evaluation: Stage 1
//! (problem P3, Eq. 20) and Stage 3 (problem P6, Eq. 28) are both smooth
//! convex programs with inequality constraints, solved here by the classical
//! barrier method — minimize `t f(x) - sum_i ln(-g_i(x))` for an increasing
//! sequence of `t`, each centering step solved with damped Newton. The
//! `L / t` quantity (number of constraints over the barrier parameter) is the
//! standard duality-gap bound and is what this reproduction reports as the
//! "duality gap" trace of the paper's Fig. 4(d).

use std::cell::RefCell;

use crate::error::{OptError, OptResult};
use crate::newton::{DampedNewton, NewtonConfig, NewtonWorkspace};
use crate::OptimizeResult;

/// A smooth convex problem `minimize f(x) subject to g_i(x) <= 0`.
pub trait InequalityProblem {
    /// Dimension of the decision vector.
    fn dimension(&self) -> usize;
    /// Objective value at `x`.
    fn objective(&self, x: &[f64]) -> f64;
    /// Values of all inequality constraints `g_i(x)` (feasible iff all `<= 0`).
    fn constraints(&self, x: &[f64]) -> Vec<f64>;
    /// Writes the constraint values into `out` (cleared first), producing the
    /// same values in the same order as [`InequalityProblem::constraints`].
    ///
    /// The barrier solver calls this in its evaluation hot loop; problems
    /// that can fill a reused buffer without allocating should override the
    /// default, which simply delegates to the allocating variant.
    fn constraints_into(&self, x: &[f64], out: &mut Vec<f64>) {
        *out = self.constraints(x);
    }
    /// A strictly feasible starting point, if the caller knows one.
    fn strictly_feasible_point(&self) -> Option<Vec<f64>> {
        None
    }
}

/// A closure-backed [`InequalityProblem`], convenient for tests and for the
/// QuHE stages where objective and constraints are already captured in
/// closures.
pub struct FnProblem<F, G> {
    dimension: usize,
    objective: F,
    constraints: G,
    start: Option<Vec<f64>>,
}

impl<F, G> std::fmt::Debug for FnProblem<F, G> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProblem")
            .field("dimension", &self.dimension)
            .field("start", &self.start)
            .finish_non_exhaustive()
    }
}

impl<F, G> FnProblem<F, G>
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    /// Creates a problem from an objective and a constraint-vector closure.
    pub fn new(dimension: usize, objective: F, constraints: G) -> Self {
        Self {
            dimension,
            objective,
            constraints,
            start: None,
        }
    }

    /// Registers a strictly feasible starting point.
    #[must_use]
    pub fn with_start(mut self, start: Vec<f64>) -> Self {
        self.start = Some(start);
        self
    }
}

impl<F, G> InequalityProblem for FnProblem<F, G>
where
    F: Fn(&[f64]) -> f64,
    G: Fn(&[f64]) -> Vec<f64>,
{
    fn dimension(&self) -> usize {
        self.dimension
    }

    fn objective(&self, x: &[f64]) -> f64 {
        (self.objective)(x)
    }

    fn constraints(&self, x: &[f64]) -> Vec<f64> {
        (self.constraints)(x)
    }

    fn strictly_feasible_point(&self) -> Option<Vec<f64>> {
        self.start.clone()
    }
}

/// Configuration of the barrier method.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BarrierConfig {
    /// Initial barrier parameter `t`.
    pub initial_t: f64,
    /// Multiplicative increase of `t` between outer iterations (`mu`).
    pub mu: f64,
    /// Target duality gap `m / t` at which to stop (`m` = number of
    /// constraints). The paper's accuracy tolerance is `1e-4`; its Fig. 4(d)
    /// shows the gap reaching `1e-5`.
    pub gap_tolerance: f64,
    /// Maximum number of outer (centering) iterations.
    pub max_outer_iterations: usize,
    /// Newton configuration used for each centering step.
    pub newton: NewtonConfig,
}

impl Default for BarrierConfig {
    fn default() -> Self {
        Self {
            initial_t: 1.0,
            mu: 8.0,
            gap_tolerance: 1e-5,
            max_outer_iterations: 60,
            newton: NewtonConfig::default(),
        }
    }
}

impl BarrierConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> OptResult<()> {
        if !(self.initial_t > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "initial_t must be positive".to_string(),
            });
        }
        if !(self.mu > 1.0) {
            return Err(OptError::InvalidConfig {
                reason: "mu must exceed 1".to_string(),
            });
        }
        if !(self.gap_tolerance > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "gap_tolerance must be positive".to_string(),
            });
        }
        if self.max_outer_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_outer_iterations must be at least 1".to_string(),
            });
        }
        self.newton.validate()
    }
}

/// Result of a barrier solve, including the duality-gap trace used to
/// reproduce Fig. 4(d) of the paper.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BarrierResult {
    /// The continuous optimization result (solution, objective, trace of the
    /// true objective after each centering step).
    pub inner: OptimizeResult,
    /// Duality-gap bound `m / t` after each outer iteration.
    pub gap_trace: Vec<f64>,
}

/// Log-barrier interior-point solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct BarrierSolver {
    config: BarrierConfig,
}

impl BarrierSolver {
    /// Creates a solver with the given configuration.
    pub fn new(config: BarrierConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BarrierConfig {
        &self.config
    }

    /// Solves the inequality-constrained problem starting from `start`
    /// (which must be strictly feasible) or, when `start` is `None`, from the
    /// problem's own strictly feasible point.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::InfeasibleStart`] when no strictly feasible starting
    ///   point is available.
    pub fn solve<P>(&self, problem: &P, start: Option<&[f64]>) -> OptResult<BarrierResult>
    where
        P: InequalityProblem,
    {
        self.config.validate()?;
        let start: Vec<f64> = match start {
            Some(s) => s.to_vec(),
            None => problem
                .strictly_feasible_point()
                .ok_or_else(|| OptError::InfeasibleStart {
                    reason: "no strictly feasible starting point provided".to_string(),
                })?,
        };
        if start.len() != problem.dimension() {
            return Err(OptError::DimensionMismatch {
                expected: problem.dimension(),
                actual: start.len(),
            });
        }
        // Each closure owns one constraint buffer (distinct cells, so the
        // feasibility check inside the Newton line search never aliases the
        // barrier objective's buffer); all constraint evaluations of the
        // whole solve reuse these two allocations.
        let feas_buf = RefCell::new(Vec::new());
        let strictly_feasible = |x: &[f64]| {
            let mut g = feas_buf.borrow_mut();
            problem.constraints_into(x, &mut g);
            g.iter().all(|&g| g < 0.0 && g.is_finite())
        };
        if !strictly_feasible(&start) {
            return Err(OptError::InfeasibleStart {
                reason: "starting point violates strict feasibility".to_string(),
            });
        }

        let m = problem.constraints(&start).len().max(1) as f64;
        let mut t = self.config.initial_t;
        let mut x = start;
        let mut objective_trace = vec![problem.objective(&x)];
        let mut gap_trace = Vec::new();
        let newton = DampedNewton::new(self.config.newton);
        let mut newton_ws = NewtonWorkspace::new();
        let obj_buf = RefCell::new(Vec::new());
        let mut outer = 0;
        let mut converged = false;

        while outer < self.config.max_outer_iterations {
            outer += 1;
            let t_now = t;
            let barrier_objective = |y: &[f64]| {
                let mut value = t_now * problem.objective(y);
                let mut constraints = obj_buf.borrow_mut();
                problem.constraints_into(y, &mut constraints);
                for &g in constraints.iter() {
                    if g >= 0.0 {
                        return f64::INFINITY;
                    }
                    value -= (-g).ln();
                }
                value
            };
            let centered =
                newton.minimize_with(&barrier_objective, &strictly_feasible, &x, &mut newton_ws)?;
            x = centered.solution;
            objective_trace.push(problem.objective(&x));
            let gap = m / t_now;
            gap_trace.push(gap);
            if gap < self.config.gap_tolerance {
                converged = true;
                break;
            }
            t *= self.config.mu;
        }

        let objective = problem.objective(&x);
        Ok(BarrierResult {
            inner: OptimizeResult {
                solution: x,
                objective,
                iterations: outer,
                converged,
                trace: objective_trace,
            },
            gap_trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_linear_program_over_box() {
        // minimize -x0 - 2 x1 s.t. 0 <= x <= 1 -> optimum at (1, 1).
        let problem = FnProblem::new(
            2,
            |x: &[f64]| -x[0] - 2.0 * x[1],
            |x: &[f64]| vec![-x[0], -x[1], x[0] - 1.0, x[1] - 1.0],
        )
        .with_start(vec![0.5, 0.5]);
        let solver = BarrierSolver::default();
        let res = solver.solve(&problem, None).unwrap();
        assert!((res.inner.solution[0] - 1.0).abs() < 1e-3);
        assert!((res.inner.solution[1] - 1.0).abs() < 1e-3);
        assert!(res.inner.converged);
    }

    #[test]
    fn gap_trace_is_monotone_decreasing() {
        let problem = FnProblem::new(
            1,
            |x: &[f64]| (x[0] - 0.3).powi(2),
            |x: &[f64]| vec![-x[0], x[0] - 1.0],
        )
        .with_start(vec![0.5]);
        let res = BarrierSolver::default().solve(&problem, None).unwrap();
        for w in res.gap_trace.windows(2) {
            assert!(w[1] < w[0]);
        }
        assert!(*res.gap_trace.last().unwrap() < 1e-4);
    }

    #[test]
    fn quadratic_with_budget_constraint() {
        // minimize (x0-3)^2 + (x1-3)^2 s.t. x >= 0, x0 + x1 <= 2 -> (1,1).
        let problem = FnProblem::new(
            2,
            |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2),
            |x: &[f64]| vec![-x[0], -x[1], x[0] + x[1] - 2.0],
        )
        .with_start(vec![0.5, 0.5]);
        let res = BarrierSolver::default().solve(&problem, None).unwrap();
        assert!((res.inner.solution[0] - 1.0).abs() < 2e-3);
        assert!((res.inner.solution[1] - 1.0).abs() < 2e-3);
    }

    #[test]
    fn rejects_infeasible_start() {
        let problem = FnProblem::new(1, |x: &[f64]| x[0], |x: &[f64]| vec![-x[0]]);
        let solver = BarrierSolver::default();
        assert!(matches!(
            solver.solve(&problem, Some(&[-1.0])),
            Err(OptError::InfeasibleStart { .. })
        ));
        // And with no start at all:
        assert!(matches!(
            solver.solve(&problem, None),
            Err(OptError::InfeasibleStart { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = BarrierConfig {
            mu: 1.0,
            ..BarrierConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
