//! Minimal dense linear algebra used by the Newton and barrier solvers.
//!
//! The QuHE problem instances are small (a handful of routes and links), so a
//! straightforward `Vec<f64>`-backed implementation with an `O(n^3)` Cholesky
//! factorization is entirely sufficient and keeps the workspace free of
//! external linear-algebra dependencies.

use crate::error::{OptError, OptResult};

/// Extension methods for `&[f64]` vectors.
pub trait VectorExt {
    /// Euclidean inner product with `other`.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    fn dot(&self, other: &[f64]) -> f64;
    /// Euclidean norm.
    fn norm(&self) -> f64;
    /// Infinity norm (largest absolute entry), zero for an empty vector.
    fn norm_inf(&self) -> f64;
    /// Returns `self + alpha * other` as a new vector.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    fn axpy(&self, alpha: f64, other: &[f64]) -> Vec<f64>;
    /// Returns the element-wise scaled vector `alpha * self`.
    fn scale(&self, alpha: f64) -> Vec<f64>;
    /// True when every entry is finite.
    fn is_finite(&self) -> bool;
}

impl VectorExt for [f64] {
    fn dot(&self, other: &[f64]) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.iter().zip(other).map(|(a, b)| a * b).sum()
    }

    fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    fn norm_inf(&self) -> f64 {
        self.iter().fold(0.0_f64, |acc, x| acc.max(x.abs()))
    }

    fn axpy(&self, alpha: f64, other: &[f64]) -> Vec<f64> {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        self.iter().zip(other).map(|(a, b)| a + alpha * b).collect()
    }

    fn scale(&self, alpha: f64) -> Vec<f64> {
        self.iter().map(|a| a * alpha).collect()
    }

    fn is_finite(&self) -> bool {
        self.iter().all(|x| x.is_finite())
    }
}

/// A dense, row-major `rows x cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    /// Returns [`OptError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> OptResult<Self> {
        if data.len() != rows * cols {
            return Err(OptError::DimensionMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry at `(i, j)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j]
    }

    /// Sets the entry at `(i, j)`.
    ///
    /// # Panics
    /// Panics when out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.dot(x)
            })
            .collect()
    }

    /// Transposed matrix-vector product `A^T x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()`.
    pub fn mul_vec_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "mul_vec_transposed: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &xi) in x.iter().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            for (o, &value) in out.iter_mut().zip(row) {
                *o += value * xi;
            }
        }
        out
    }

    /// Resizes the matrix to `rows x cols` in place and fills it with zeros,
    /// reusing the existing storage when it is already large enough.
    pub fn reshape_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Adds `alpha * I` to a square matrix in place (Tikhonov damping).
    ///
    /// # Panics
    /// Panics when the matrix is not square.
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert_eq!(self.rows, self.cols, "add_diagonal: matrix must be square");
        for i in 0..self.rows {
            self.data[i * self.cols + i] += alpha;
        }
    }

    /// Solves `A x = b` for symmetric positive-definite `A` via Cholesky.
    ///
    /// One-shot convenience over [`CholeskyFactor`]: factors, solves, and
    /// discards the factor. Callers that solve against many right-hand sides
    /// or re-solve with slowly changing matrices should hold a
    /// [`CholeskyFactor`] and use [`CholeskyFactor::refresh`] +
    /// [`CholeskyFactor::solve_into`] to skip the per-call allocations.
    ///
    /// # Errors
    /// * [`OptError::DimensionMismatch`] if `b.len() != self.rows()` or the
    ///   matrix is not square.
    /// * [`OptError::SingularSystem`] if the factorization encounters a
    ///   non-positive pivot.
    pub fn solve_spd(&self, b: &[f64]) -> OptResult<Vec<f64>> {
        let mut factor = CholeskyFactor::new();
        factor.refresh(self)?;
        let mut x = Vec::new();
        factor.solve_into(b, &mut x)?;
        Ok(x)
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

/// A reusable Cholesky factorization `A = L L^T` of a symmetric
/// positive-definite matrix.
///
/// The factor is computed once per matrix ([`CholeskyFactor::refresh`]) and
/// can then be re-solved against many right-hand sides
/// ([`CholeskyFactor::solve_into`]) without refactorizing or allocating —
/// the ownership model of the solver workspaces: the factor's storage
/// outlives individual solves and is refreshed in place only when the matrix
/// actually changes. The arithmetic is identical to
/// [`DenseMatrix::solve_spd`] (which is now a thin wrapper), so solutions
/// are bit-for-bit the same.
#[derive(Debug, Clone, Default)]
pub struct CholeskyFactor {
    n: usize,
    /// Lower-triangular factor, row-major `n x n` (upper part unused).
    l: Vec<f64>,
    /// Forward-substitution intermediate, reused across solves.
    y: Vec<f64>,
}

impl CholeskyFactor {
    /// An empty factor; call [`CholeskyFactor::refresh`] before solving.
    pub fn new() -> Self {
        Self::default()
    }

    /// The dimension of the factored matrix (0 before the first refresh).
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// (Re)factorizes `a` into this factor's storage.
    ///
    /// # Errors
    /// * [`OptError::DimensionMismatch`] if `a` is not square.
    /// * [`OptError::SingularSystem`] if the factorization encounters a
    ///   non-positive pivot (the factor is left invalid; refresh again
    ///   before solving).
    pub fn refresh(&mut self, a: &DenseMatrix) -> OptResult<()> {
        if a.rows() != a.cols() {
            return Err(OptError::DimensionMismatch {
                expected: a.rows(),
                actual: a.cols(),
            });
        }
        let n = a.rows();
        self.n = n;
        self.l.clear();
        self.l.resize(n * n, 0.0);
        let l = &mut self.l;
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                for k in 0..j {
                    sum -= l[i * n + k] * l[j * n + k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(OptError::SingularSystem);
                    }
                    l[i * n + j] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        Ok(())
    }

    /// Solves `A x = b` against the current factor, writing the solution
    /// into `x` (resized as needed). No allocation happens once `x` and the
    /// internal intermediate have grown to the system dimension.
    ///
    /// # Errors
    /// [`OptError::DimensionMismatch`] if `b.len()` differs from the
    /// factored dimension.
    // quhe-analyze: hot-path
    pub fn solve_into(&mut self, b: &[f64], x: &mut Vec<f64>) -> OptResult<()> {
        let n = self.n;
        if b.len() != n {
            return Err(OptError::DimensionMismatch {
                expected: n,
                actual: b.len(),
            });
        }
        let l = &self.l;
        // Forward substitution: L y = b.
        self.y.clear();
        self.y.resize(n, 0.0);
        let y = &mut self.y;
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= l[i * n + k] * y[k];
            }
            y[i] = sum / l[i * n + i];
        }
        // Back substitution: L^T x = y.
        x.clear();
        x.resize(n, 0.0);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= l[k * n + i] * x[k];
            }
            x[i] = sum / l[i * n + i];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_norm_and_axpy() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(a.dot(&b), 32.0);
        assert!((a.norm() - 14.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.norm_inf(), 3.0);
        assert_eq!(a.axpy(2.0, &b), vec![9.0, 12.0, 15.0]);
        assert_eq!(a.scale(-1.0), vec![-1.0, -2.0, -3.0]);
        assert!(a.is_finite());
        assert!(![f64::NAN, 1.0].is_finite());
    }

    #[test]
    fn identity_solves_trivially() {
        let eye = DenseMatrix::identity(3);
        let x = eye.solve_spd(&[1.0, -2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn spd_solve_recovers_known_solution() {
        // A = [[4,1],[1,3]] is SPD; pick x = [1, 2] => b = [6, 7].
        let a = DenseMatrix::from_rows(2, 2, vec![4.0, 1.0, 1.0, 3.0]).unwrap();
        let x = a.solve_spd(&[6.0, 7.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn non_spd_matrix_is_rejected() {
        let a = DenseMatrix::from_rows(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        assert_eq!(a.solve_spd(&[1.0, 1.0]), Err(OptError::SingularSystem));
    }

    #[test]
    fn dimension_checks() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.solve_spd(&[1.0, 1.0]),
            Err(OptError::DimensionMismatch { .. })
        ));
        assert!(DenseMatrix::from_rows(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn mul_vec_and_transpose() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.mul_vec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
        assert_eq!(a.mul_vec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn add_diagonal_damps() {
        let mut a = DenseMatrix::zeros(2, 2);
        a.add_diagonal(2.5);
        assert_eq!(a.get(0, 0), 2.5);
        assert_eq!(a.get(1, 1), 2.5);
        assert_eq!(a.get(0, 1), 0.0);
    }
}
