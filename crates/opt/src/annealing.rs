//! Simulated annealing, one of the paper's Stage-1 baselines.
//!
//! The paper compares its convex Stage-1 solver against Matlab's
//! `simulannealbnd`. This module provides a comparable bounded simulated
//! annealing: Gaussian proposal moves clipped to a box, exponential cooling,
//! Metropolis acceptance.

use rand::Rng;

use crate::error::{OptError, OptResult};
use crate::projection::{BoxProjection, Projection};
use crate::OptimizeResult;

/// Configuration for [`SimulatedAnnealing`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimulatedAnnealingConfig {
    /// Initial temperature.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per iteration (strictly in (0, 1)).
    pub cooling: f64,
    /// Number of iterations.
    pub iterations: usize,
    /// Standard deviation of the Gaussian proposal, relative to the box width
    /// of each coordinate.
    pub relative_step: f64,
}

impl Default for SimulatedAnnealingConfig {
    fn default() -> Self {
        Self {
            initial_temperature: 1.0,
            cooling: 0.995,
            iterations: 5_000,
            relative_step: 0.1,
        }
    }
}

impl SimulatedAnnealingConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> OptResult<()> {
        if !(self.initial_temperature > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "initial_temperature must be positive".to_string(),
            });
        }
        if !(self.cooling > 0.0 && self.cooling < 1.0) {
            return Err(OptError::InvalidConfig {
                reason: "cooling must lie in (0, 1)".to_string(),
            });
        }
        if self.iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "iterations must be at least 1".to_string(),
            });
        }
        if !(self.relative_step > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "relative_step must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Bounded simulated annealing minimizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimulatedAnnealing {
    config: SimulatedAnnealingConfig,
}

impl SimulatedAnnealing {
    /// Creates a solver with the given configuration.
    pub fn new(config: SimulatedAnnealingConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimulatedAnnealingConfig {
        &self.config
    }

    /// Minimizes `f` over the box, starting from `start` (projected into the
    /// box first), drawing randomness from `rng`.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::DimensionMismatch`] if `start` does not match the box.
    /// * [`OptError::NonFiniteValue`] if the objective is non-finite at the
    ///   starting point.
    pub fn minimize<F, R>(
        &self,
        f: &F,
        bounds: &BoxProjection,
        start: &[f64],
        rng: &mut R,
    ) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        R: Rng + ?Sized,
    {
        self.config.validate()?;
        if start.len() != bounds.len() {
            return Err(OptError::DimensionMismatch {
                expected: bounds.len(),
                actual: start.len(),
            });
        }
        let widths: Vec<f64> = bounds
            .lower()
            .iter()
            .zip(bounds.upper())
            .map(|(l, u)| (u - l).max(f64::MIN_POSITIVE))
            .collect();
        let mut current = bounds.projected(start);
        let mut current_value = f(&current);
        if !current_value.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "simulated annealing starting objective".to_string(),
            });
        }
        let mut best = current.clone();
        let mut best_value = current_value;
        let mut temperature = self.config.initial_temperature;
        let mut trace = vec![best_value];

        for _ in 0..self.config.iterations {
            // Gaussian proposal via Box-Muller so we only depend on `Rng`.
            let mut candidate = current.clone();
            for (i, c) in candidate.iter_mut().enumerate() {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let normal = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                *c += normal * self.config.relative_step * widths[i];
            }
            bounds.project(&mut candidate);
            let candidate_value = f(&candidate);
            if candidate_value.is_finite() {
                let accept = candidate_value <= current_value || {
                    let delta = candidate_value - current_value;
                    rng.gen_range(0.0..1.0) < (-delta / temperature.max(1e-300)).exp()
                };
                if accept {
                    current = candidate;
                    current_value = candidate_value;
                    if current_value < best_value {
                        best_value = current_value;
                        best = current.clone();
                    }
                }
            }
            temperature *= self.config.cooling;
            trace.push(best_value);
        }

        Ok(OptimizeResult {
            solution: best,
            objective: best_value,
            iterations: self.config.iterations,
            converged: true,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn finds_near_optimum_of_smooth_bowl() {
        let f = |x: &[f64]| (x[0] - 0.7).powi(2) + (x[1] + 0.3).powi(2);
        let bounds = BoxProjection::uniform(2, -2.0, 2.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sa = SimulatedAnnealing::default();
        let res = sa.minimize(&f, &bounds, &[1.5, 1.5], &mut rng).unwrap();
        assert!(res.objective < 0.01, "objective {}", res.objective);
    }

    #[test]
    fn best_trace_is_monotone_nonincreasing() {
        let f = |x: &[f64]| x[0].sin() * 3.0 + x[0] * x[0] * 0.1;
        let bounds = BoxProjection::uniform(1, -10.0, 10.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let res = SimulatedAnnealing::default()
            .minimize(&f, &bounds, &[8.0], &mut rng)
            .unwrap();
        for w in res.trace.windows(2) {
            assert!(w[1] <= w[0]);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = |x: &[f64]| x[0] * x[0];
        let bounds = BoxProjection::uniform(1, -1.0, 1.0).unwrap();
        let sa = SimulatedAnnealing::default();
        let r1 = sa
            .minimize(
                &f,
                &bounds,
                &[0.9],
                &mut rand::rngs::StdRng::seed_from_u64(3),
            )
            .unwrap();
        let r2 = sa
            .minimize(
                &f,
                &bounds,
                &[0.9],
                &mut rand::rngs::StdRng::seed_from_u64(3),
            )
            .unwrap();
        assert_eq!(r1.solution, r2.solution);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let f = |x: &[f64]| x[0];
        let bounds = BoxProjection::uniform(2, 0.0, 1.0).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(matches!(
            SimulatedAnnealing::default().minimize(&f, &bounds, &[0.5], &mut rng),
            Err(OptError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = SimulatedAnnealingConfig {
            cooling: 1.0,
            ..SimulatedAnnealingConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
