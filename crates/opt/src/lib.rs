//! # quhe-opt — optimization toolkit for the QuHE resource-allocation algorithm
//!
//! The QuHE paper (ICDCS 2025) solves its non-convex, NP-hard resource
//! allocation problem with a three-stage alternating optimization:
//!
//! 1. a convex subproblem in the (log-transformed) entanglement rates,
//! 2. a branch-and-bound search over the discrete CKKS polynomial degrees,
//! 3. a fractional-programming / alternating convex subproblem over the
//!    communication and computation resources.
//!
//! The original evaluation delegates the convex pieces to Matlab + CVX. The
//! Rust solver ecosystem is comparatively thin, and the problem instances the
//! paper studies are tiny (six routes, eighteen links), so this crate provides
//! a compact, dependency-free toolkit of exactly the numerical machinery those
//! stages need:
//!
//! * dense vector/matrix helpers and a Cholesky solver ([`linalg`]),
//! * backtracking line search ([`line_search`]) and feasible-set projections
//!   ([`projection`]),
//! * numerical differentiation ([`diff`]),
//! * projected gradient descent ([`gradient`]), damped Newton ([`newton`]) and
//!   a log-barrier interior-point method ([`barrier`]) for smooth convex
//!   problems,
//! * a generic best-first branch-and-bound engine ([`bnb`]),
//! * the quadratic-transform fractional-programming driver of Shen & Yu
//!   ([`fractional`]),
//! * simulated annealing ([`annealing`]) and random search ([`random_search`])
//!   baselines, and
//! * a block-coordinate / alternating-optimization driver with convergence
//!   tracking ([`block`]).
//!
//! # Example
//!
//! Minimize the convex quadratic `f(x) = (x0 - 1)^2 + (x1 + 2)^2` over the box
//! `[-5, 5]^2` with projected gradient descent:
//!
//! ```
//! use quhe_opt::gradient::{ProjectedGradient, ProjectedGradientConfig};
//! use quhe_opt::projection::BoxProjection;
//!
//! let f = |x: &[f64]| (x[0] - 1.0).powi(2) + (x[1] + 2.0).powi(2);
//! let proj = BoxProjection::uniform(2, -5.0, 5.0).unwrap();
//! let solver = ProjectedGradient::new(ProjectedGradientConfig::default());
//! let result = solver.minimize(&f, &proj, &[0.0, 0.0]).unwrap();
//! assert!((result.solution[0] - 1.0).abs() < 1e-4);
//! assert!((result.solution[1] + 2.0).abs() < 1e-4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annealing;
pub mod barrier;
pub mod block;
pub mod bnb;
pub mod diff;
pub mod error;
pub mod fractional;
pub mod gradient;
pub mod linalg;
pub mod line_search;
pub mod newton;
pub mod projection;
pub mod random_search;

pub use error::{OptError, OptResult};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::annealing::{SimulatedAnnealing, SimulatedAnnealingConfig};
    pub use crate::barrier::{BarrierConfig, BarrierSolver, InequalityProblem};
    pub use crate::block::{BlockDescent, BlockDescentConfig, BlockTrace};
    pub use crate::bnb::{BranchAndBound, BranchAndBoundConfig, DiscreteProblem};
    pub use crate::diff::{central_gradient, central_hessian};
    pub use crate::error::{OptError, OptResult};
    pub use crate::fractional::{QuadraticTransform, QuadraticTransformConfig, RatioTerm};
    pub use crate::gradient::{
        GradientDescent, GradientDescentConfig, ProjectedGradient, ProjectedGradientConfig,
    };
    pub use crate::linalg::{DenseMatrix, VectorExt};
    pub use crate::line_search::{ArmijoLineSearch, LineSearchConfig};
    pub use crate::newton::{DampedNewton, NewtonConfig};
    pub use crate::projection::{BoxProjection, Projection, SimplexCapProjection};
    pub use crate::random_search::{RandomSearch, RandomSearchConfig};
    pub use crate::OptimizeResult;
}

/// Outcome of a continuous optimization run.
///
/// Returned by every iterative solver in this crate so that callers can record
/// convergence traces (used to regenerate the paper's Fig. 4) without knowing
/// which solver produced them.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OptimizeResult {
    /// The best point found.
    pub solution: Vec<f64>,
    /// Objective value at [`OptimizeResult::solution`].
    pub objective: f64,
    /// Number of outer iterations performed.
    pub iterations: usize,
    /// Whether the solver's convergence criterion was met (as opposed to
    /// stopping on the iteration cap).
    pub converged: bool,
    /// Objective value after each iteration, in order. The last entry equals
    /// [`OptimizeResult::objective`] up to floating-point noise.
    pub trace: Vec<f64>,
}

impl OptimizeResult {
    /// Creates a result for a solver that terminated immediately at `solution`.
    pub fn at_point(solution: Vec<f64>, objective: f64) -> Self {
        Self {
            solution,
            objective,
            iterations: 0,
            converged: true,
            trace: vec![objective],
        }
    }

    /// The improvement of the final objective over the first traced value.
    ///
    /// Returns zero when the trace is empty or has a single element.
    pub fn total_improvement(&self) -> f64 {
        match (self.trace.first(), self.trace.last()) {
            (Some(first), Some(last)) if self.trace.len() > 1 => first - last,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_point_builds_singleton_trace() {
        let r = OptimizeResult::at_point(vec![1.0, 2.0], 3.5);
        assert_eq!(r.trace, vec![3.5]);
        assert!(r.converged);
        assert_eq!(r.iterations, 0);
        assert_eq!(r.total_improvement(), 0.0);
    }

    #[test]
    fn total_improvement_is_first_minus_last() {
        let r = OptimizeResult {
            solution: vec![0.0],
            objective: 1.0,
            iterations: 3,
            converged: true,
            trace: vec![5.0, 3.0, 1.0],
        };
        assert!((r.total_improvement() - 4.0).abs() < 1e-12);
    }
}
