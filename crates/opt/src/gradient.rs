//! Plain and projected gradient descent.
//!
//! Projected gradient descent is the workhorse behind Stage 1 and Stage 3 of
//! the QuHE algorithm in this reproduction: after the paper's convexifying
//! transformations both stages reduce to smooth convex problems over simple
//! feasible sets (boxes and budget caps), for which projected gradient with
//! Armijo backtracking converges to the global optimum. Plain (fixed-step)
//! gradient descent is kept as well because the paper uses it — with learning
//! rate 0.01 — as one of the Stage-1 baselines (Fig. 5(b)/(c)).

use crate::diff::{central_gradient, DEFAULT_FD_STEP};
use crate::error::{OptError, OptResult};
use crate::linalg::VectorExt;
use crate::line_search::{ArmijoLineSearch, LineSearchConfig};
use crate::projection::Projection;
use crate::OptimizeResult;

/// Configuration for [`ProjectedGradient`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProjectedGradientConfig {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the objective decrease between iterations.
    pub tolerance: f64,
    /// Relative finite-difference step for the numerical gradient.
    pub fd_step: f64,
    /// Line-search configuration.
    pub line_search: LineSearchConfig,
}

impl Default for ProjectedGradientConfig {
    fn default() -> Self {
        Self {
            max_iterations: 500,
            tolerance: 1e-9,
            fd_step: DEFAULT_FD_STEP,
            line_search: LineSearchConfig::default(),
        }
    }
}

impl ProjectedGradientConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for non-positive tolerances or a
    /// zero iteration budget.
    pub fn validate(&self) -> OptResult<()> {
        if self.max_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if !(self.tolerance > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "tolerance must be positive".to_string(),
            });
        }
        if !(self.fd_step > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "fd_step must be positive".to_string(),
            });
        }
        self.line_search.validate()
    }
}

/// Projected gradient descent with Armijo backtracking.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProjectedGradient {
    config: ProjectedGradientConfig,
}

impl ProjectedGradient {
    /// Creates a solver with the given configuration.
    pub fn new(config: ProjectedGradientConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProjectedGradientConfig {
        &self.config
    }

    /// Minimizes `f` over the convex set described by `projection`, starting
    /// from `start` (which is projected before use).
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::NonFiniteValue`] if the objective is non-finite at the
    ///   (projected) starting point.
    pub fn minimize<F, P>(&self, f: &F, projection: &P, start: &[f64]) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        P: Projection,
    {
        self.config.validate()?;
        let mut x = projection.projected(start);
        let mut fx = f(&x);
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "projected gradient starting objective".to_string(),
            });
        }
        let ls = ArmijoLineSearch::new(self.config.line_search);
        let mut trace = vec![fx];
        let mut converged = false;
        let mut iterations = 0;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            let grad = central_gradient(f, &x, self.config.fd_step);
            if !grad.is_finite() {
                return Err(OptError::NonFiniteValue {
                    context: format!("gradient at iteration {iter}"),
                });
            }
            // Projected-gradient direction: project the full gradient step and
            // move towards the projected point. This guarantees feasibility of
            // every trial point for convex sets.
            let trial = projection.projected(&x.axpy(-1.0, &grad));
            let direction: Vec<f64> = trial.iter().zip(&x).map(|(t, xi)| t - xi).collect();
            let dir_norm = direction.norm_inf();
            if dir_norm < self.config.tolerance {
                converged = true;
                break;
            }
            match ls.search(f, &x, fx, &grad, &direction, |p| {
                projection.contains(p, 1e-9)
            }) {
                Ok(outcome) => {
                    let decrease = fx - outcome.value;
                    x = projection.projected(&outcome.point);
                    fx = f(&x);
                    trace.push(fx);
                    if decrease.abs() < self.config.tolerance {
                        converged = true;
                        break;
                    }
                }
                Err(OptError::DidNotConverge { .. }) => {
                    // No further decrease possible along the projected
                    // gradient: declare convergence at the current iterate.
                    converged = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }

        Ok(OptimizeResult {
            solution: x,
            objective: fx,
            iterations,
            converged,
            trace,
        })
    }
}

/// Configuration for the fixed-step [`GradientDescent`] baseline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GradientDescentConfig {
    /// Constant learning rate (the paper's Stage-1 baseline uses 0.01).
    pub learning_rate: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the objective decrease between iterations.
    pub tolerance: f64,
    /// Relative finite-difference step for the numerical gradient.
    pub fd_step: f64,
}

impl Default for GradientDescentConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            max_iterations: 20_000,
            tolerance: 1e-9,
            fd_step: DEFAULT_FD_STEP,
        }
    }
}

impl GradientDescentConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> OptResult<()> {
        if !(self.learning_rate > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "learning_rate must be positive".to_string(),
            });
        }
        if self.max_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if !(self.tolerance > 0.0) || !(self.fd_step > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "tolerance and fd_step must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Fixed-step-size gradient descent with feasibility projection after every
/// step. Used as the paper's "gradient descent (learning rate 0.01)" Stage-1
/// baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GradientDescent {
    config: GradientDescentConfig,
}

impl GradientDescent {
    /// Creates a solver with the given configuration.
    pub fn new(config: GradientDescentConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GradientDescentConfig {
        &self.config
    }

    /// Minimizes `f` over the set described by `projection` starting from
    /// `start`.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::NonFiniteValue`] if the objective is non-finite at the
    ///   starting point.
    pub fn minimize<F, P>(&self, f: &F, projection: &P, start: &[f64]) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        P: Projection,
    {
        self.config.validate()?;
        let mut x = projection.projected(start);
        let mut fx = f(&x);
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "gradient descent starting objective".to_string(),
            });
        }
        let mut trace = vec![fx];
        let mut converged = false;
        let mut iterations = 0;
        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            let grad = central_gradient(f, &x, self.config.fd_step);
            let mut next = x.axpy(-self.config.learning_rate, &grad);
            projection.project(&mut next);
            let fnext = f(&next);
            if !fnext.is_finite() {
                // Step left the domain where the objective is finite; halve
                // towards the previous iterate is not part of the baseline,
                // so simply stop here as the baseline would diverge.
                break;
            }
            let decrease = fx - fnext;
            x = next;
            fx = fnext;
            trace.push(fx);
            if decrease.abs() < self.config.tolerance {
                converged = true;
                break;
            }
        }
        Ok(OptimizeResult {
            solution: x,
            objective: fx,
            iterations,
            converged,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{BoxProjection, NoProjection, SimplexCapProjection};

    fn rosenbrock_like(x: &[f64]) -> f64 {
        // A smooth convex surrogate: shifted quadratic bowl.
        (x[0] - 2.0).powi(2) + 10.0 * (x[1] - 0.5).powi(2)
    }

    #[test]
    fn projected_gradient_finds_unconstrained_minimum() {
        let solver = ProjectedGradient::default();
        let res = solver
            .minimize(&rosenbrock_like, &NoProjection, &[-3.0, 4.0])
            .unwrap();
        assert!(res.converged);
        assert!((res.solution[0] - 2.0).abs() < 1e-4);
        assert!((res.solution[1] - 0.5).abs() < 1e-4);
        assert!(res.objective < 1e-6);
    }

    #[test]
    fn projected_gradient_respects_box() {
        // Minimum of the bowl is at (2, 0.5) but the box caps x0 at 1.
        let solver = ProjectedGradient::default();
        let boxp = BoxProjection::new(vec![-1.0, -1.0], vec![1.0, 1.0]).unwrap();
        let res = solver
            .minimize(&rosenbrock_like, &boxp, &[0.0, 0.0])
            .unwrap();
        assert!((res.solution[0] - 1.0).abs() < 1e-4);
        assert!((res.solution[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn projected_gradient_respects_budget() {
        // minimize (x0-3)^2 + (x1-3)^2 s.t. x >= 0, x0+x1 <= 2 => (1,1).
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2);
        let proj = SimplexCapProjection::uniform(2, 0.0, 2.0).unwrap();
        let solver = ProjectedGradient::default();
        let res = solver.minimize(&f, &proj, &[0.5, 0.5]).unwrap();
        assert!((res.solution[0] - 1.0).abs() < 1e-3);
        assert!((res.solution[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let solver = ProjectedGradient::default();
        let res = solver
            .minimize(&rosenbrock_like, &NoProjection, &[5.0, -5.0])
            .unwrap();
        for w in res.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "trace increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn plain_gradient_descent_converges_slowly_but_surely() {
        let solver = GradientDescent::new(GradientDescentConfig {
            learning_rate: 0.01,
            max_iterations: 50_000,
            ..GradientDescentConfig::default()
        });
        let res = solver
            .minimize(&rosenbrock_like, &NoProjection, &[-1.0, -1.0])
            .unwrap();
        assert!((res.solution[0] - 2.0).abs() < 1e-3);
        assert!((res.solution[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn plain_gd_takes_more_iterations_than_projected_gradient() {
        let pg = ProjectedGradient::default();
        let gd = GradientDescent::default();
        let r1 = pg
            .minimize(&rosenbrock_like, &NoProjection, &[5.0, 5.0])
            .unwrap();
        let r2 = gd
            .minimize(&rosenbrock_like, &NoProjection, &[5.0, 5.0])
            .unwrap();
        assert!(r2.iterations > r1.iterations);
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = ProjectedGradientConfig {
            max_iterations: 0,
            ..ProjectedGradientConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GradientDescentConfig {
            learning_rate: -1.0,
            ..GradientDescentConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
