//! Plain and projected gradient descent.
//!
//! Projected gradient descent is the workhorse behind Stage 1 and Stage 3 of
//! the QuHE algorithm in this reproduction: after the paper's convexifying
//! transformations both stages reduce to smooth convex problems over simple
//! feasible sets (boxes and budget caps), for which projected gradient with
//! Armijo backtracking converges to the global optimum. Plain (fixed-step)
//! gradient descent is kept as well because the paper uses it — with learning
//! rate 0.01 — as one of the Stage-1 baselines (Fig. 5(b)/(c)).

use crate::diff::{central_gradient, central_gradient_into, DEFAULT_FD_STEP};
use crate::error::{OptError, OptResult};
use crate::linalg::VectorExt;
use crate::line_search::{ArmijoLineSearch, LineSearchConfig};
use crate::projection::Projection;
use crate::OptimizeResult;

/// Configuration for [`ProjectedGradient`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProjectedGradientConfig {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the objective decrease between iterations.
    pub tolerance: f64,
    /// Relative finite-difference step for the numerical gradient.
    pub fd_step: f64,
    /// Line-search configuration.
    pub line_search: LineSearchConfig,
}

impl Default for ProjectedGradientConfig {
    fn default() -> Self {
        Self {
            max_iterations: 500,
            tolerance: 1e-9,
            fd_step: DEFAULT_FD_STEP,
            line_search: LineSearchConfig::default(),
        }
    }
}

impl ProjectedGradientConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for non-positive tolerances or a
    /// zero iteration budget.
    pub fn validate(&self) -> OptResult<()> {
        if self.max_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if !(self.tolerance > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "tolerance must be positive".to_string(),
            });
        }
        if !(self.fd_step > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "fd_step must be positive".to_string(),
            });
        }
        self.line_search.validate()
    }
}

/// Reusable storage for [`ProjectedGradient::minimize_with`] and
/// [`ProjectedGradient::minimize_with_gradient`].
///
/// Holds the iterate, gradient, trial/direction, and line-search buffers so
/// a full projected-gradient solve performs no per-iteration allocation, and
/// consecutive solves (e.g. the inner solves of a quadratic-transform sweep)
/// reuse the same storage. A workspace carries no numeric state between
/// calls — only capacity.
#[derive(Debug, Clone, Default)]
pub struct GradientWorkspace {
    x: Vec<f64>,
    grad: Vec<f64>,
    fd_work: Vec<f64>,
    trial: Vec<f64>,
    direction: Vec<f64>,
    candidate: Vec<f64>,
    projected: Vec<f64>,
}

impl GradientWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Projected gradient descent with Armijo backtracking.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProjectedGradient {
    config: ProjectedGradientConfig,
}

impl ProjectedGradient {
    /// Creates a solver with the given configuration.
    pub fn new(config: ProjectedGradientConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProjectedGradientConfig {
        &self.config
    }

    /// Minimizes `f` over the convex set described by `projection`, starting
    /// from `start` (which is projected before use).
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::NonFiniteValue`] if the objective is non-finite at the
    ///   (projected) starting point.
    pub fn minimize<F, P>(&self, f: &F, projection: &P, start: &[f64]) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        P: Projection,
    {
        self.minimize_with(f, projection, start, &mut GradientWorkspace::new())
    }

    /// [`ProjectedGradient::minimize`] with caller-provided storage; the
    /// gradient is computed by central finite differences. Bit-identical to
    /// [`ProjectedGradient::minimize`].
    ///
    /// # Errors
    /// Same contract as [`ProjectedGradient::minimize`].
    pub fn minimize_with<F, P>(
        &self,
        f: &F,
        projection: &P,
        start: &[f64],
        ws: &mut GradientWorkspace,
    ) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        P: Projection,
    {
        // The FD scratch buffer is moved out of the workspace so the gradient
        // closure and the iteration loop can borrow disjoint storage.
        let mut fd_work = std::mem::take(&mut ws.fd_work);
        let step = self.config.fd_step;
        let result = self.minimize_with_gradient(
            f,
            |x: &[f64], grad: &mut Vec<f64>| central_gradient_into(f, x, step, grad, &mut fd_work),
            projection,
            start,
            ws,
        );
        ws.fd_work = fd_work;
        result
    }

    /// [`ProjectedGradient::minimize_with`] with a caller-provided gradient
    /// oracle: `gradient(x, out)` must write `∇f(x)` into `out`. Callers that
    /// can evaluate the gradient faster than black-box finite differences
    /// (e.g. by exploiting per-coordinate structure) plug in here; supplying
    /// an oracle that reproduces the central-difference values bit-for-bit
    /// keeps the iterates bit-identical to [`ProjectedGradient::minimize`].
    ///
    /// # Errors
    /// Same contract as [`ProjectedGradient::minimize`].
    pub fn minimize_with_gradient<F, G, P>(
        &self,
        f: &F,
        mut gradient: G,
        projection: &P,
        start: &[f64],
        ws: &mut GradientWorkspace,
    ) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        G: FnMut(&[f64], &mut Vec<f64>),
        P: Projection,
    {
        self.config.validate()?;
        ws.x.clear();
        ws.x.extend_from_slice(start);
        projection.project(&mut ws.x);
        let mut fx = f(&ws.x);
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "projected gradient starting objective".to_string(),
            });
        }
        let ls = ArmijoLineSearch::new(self.config.line_search);
        let mut trace = vec![fx];
        let mut converged = false;
        let mut iterations = 0;
        // Accepted step lengths are stable from one iteration to the next, so
        // each search is warm-started at the previous accepted backtrack
        // count; `search_into_hinted` returns the same step as the cold
        // search (see its contract) for a fraction of the evaluations.
        let mut backtrack_hint = 0;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            gradient(&ws.x, &mut ws.grad);
            if !ws.grad.is_finite() {
                return Err(OptError::NonFiniteValue {
                    context: format!("gradient at iteration {iter}"),
                });
            }
            // Projected-gradient direction: project the full gradient step and
            // move towards the projected point. This guarantees feasibility of
            // every trial point for convex sets.
            ws.trial.clear();
            ws.trial
                .extend(ws.x.iter().zip(&ws.grad).map(|(a, b)| a + (-1.0) * b));
            projection.project(&mut ws.trial);
            ws.direction.clear();
            ws.direction
                .extend(ws.trial.iter().zip(&ws.x).map(|(t, xi)| t - xi));
            let dir_norm = ws.direction.norm_inf();
            if dir_norm < self.config.tolerance {
                converged = true;
                break;
            }
            // Every line-search candidate `x + t d`, `t` in (0, 1], is the
            // convex combination `(1-t) x + t trial` of two feasible points,
            // hence feasible for the convex set up to rounding far below the
            // 1e-9 tolerance the previous `contains` check allowed — so the
            // check is vacuous and skipped (the post-step projection below
            // still repairs any rounding, exactly as before).
            match ls.search_into_hinted(
                f,
                &ws.x,
                fx,
                &ws.grad,
                &ws.direction,
                |_| true,
                &mut ws.candidate,
                backtrack_hint,
            ) {
                Ok(outcome) => {
                    backtrack_hint = outcome.backtracks;
                    let decrease = fx - outcome.value;
                    ws.projected.clear();
                    ws.projected.extend_from_slice(&ws.candidate);
                    projection.project(&mut ws.projected);
                    let unchanged = ws
                        .projected
                        .iter()
                        .zip(&ws.candidate)
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    if unchanged {
                        // The projection was a bitwise no-op, so re-evaluating
                        // f at the same bits would reproduce the line-search
                        // value exactly; skip the redundant evaluation.
                        std::mem::swap(&mut ws.x, &mut ws.candidate);
                        fx = outcome.value;
                    } else {
                        std::mem::swap(&mut ws.x, &mut ws.projected);
                        fx = f(&ws.x);
                    }
                    trace.push(fx);
                    if decrease.abs() < self.config.tolerance {
                        converged = true;
                        break;
                    }
                }
                Err(OptError::DidNotConverge { .. }) => {
                    // No further decrease possible along the projected
                    // gradient: declare convergence at the current iterate.
                    converged = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }

        Ok(OptimizeResult {
            solution: ws.x.clone(),
            objective: fx,
            iterations,
            converged,
            trace,
        })
    }
}

/// Configuration for the fixed-step [`GradientDescent`] baseline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GradientDescentConfig {
    /// Constant learning rate (the paper's Stage-1 baseline uses 0.01).
    pub learning_rate: f64,
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the objective decrease between iterations.
    pub tolerance: f64,
    /// Relative finite-difference step for the numerical gradient.
    pub fd_step: f64,
}

impl Default for GradientDescentConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.01,
            max_iterations: 20_000,
            tolerance: 1e-9,
            fd_step: DEFAULT_FD_STEP,
        }
    }
}

impl GradientDescentConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> OptResult<()> {
        if !(self.learning_rate > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "learning_rate must be positive".to_string(),
            });
        }
        if self.max_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if !(self.tolerance > 0.0) || !(self.fd_step > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "tolerance and fd_step must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Fixed-step-size gradient descent with feasibility projection after every
/// step. Used as the paper's "gradient descent (learning rate 0.01)" Stage-1
/// baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct GradientDescent {
    config: GradientDescentConfig,
}

impl GradientDescent {
    /// Creates a solver with the given configuration.
    pub fn new(config: GradientDescentConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GradientDescentConfig {
        &self.config
    }

    /// Minimizes `f` over the set described by `projection` starting from
    /// `start`.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::NonFiniteValue`] if the objective is non-finite at the
    ///   starting point.
    pub fn minimize<F, P>(&self, f: &F, projection: &P, start: &[f64]) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        P: Projection,
    {
        self.config.validate()?;
        let mut x = projection.projected(start);
        let mut fx = f(&x);
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "gradient descent starting objective".to_string(),
            });
        }
        let mut trace = vec![fx];
        let mut converged = false;
        let mut iterations = 0;
        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            let grad = central_gradient(f, &x, self.config.fd_step);
            let mut next = x.axpy(-self.config.learning_rate, &grad);
            projection.project(&mut next);
            let fnext = f(&next);
            if !fnext.is_finite() {
                // Step left the domain where the objective is finite; halve
                // towards the previous iterate is not part of the baseline,
                // so simply stop here as the baseline would diverge.
                break;
            }
            let decrease = fx - fnext;
            x = next;
            fx = fnext;
            trace.push(fx);
            if decrease.abs() < self.config.tolerance {
                converged = true;
                break;
            }
        }
        Ok(OptimizeResult {
            solution: x,
            objective: fx,
            iterations,
            converged,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projection::{BoxProjection, NoProjection, SimplexCapProjection};

    fn rosenbrock_like(x: &[f64]) -> f64 {
        // A smooth convex surrogate: shifted quadratic bowl.
        (x[0] - 2.0).powi(2) + 10.0 * (x[1] - 0.5).powi(2)
    }

    #[test]
    fn projected_gradient_finds_unconstrained_minimum() {
        let solver = ProjectedGradient::default();
        let res = solver
            .minimize(&rosenbrock_like, &NoProjection, &[-3.0, 4.0])
            .unwrap();
        assert!(res.converged);
        assert!((res.solution[0] - 2.0).abs() < 1e-4);
        assert!((res.solution[1] - 0.5).abs() < 1e-4);
        assert!(res.objective < 1e-6);
    }

    #[test]
    fn projected_gradient_respects_box() {
        // Minimum of the bowl is at (2, 0.5) but the box caps x0 at 1.
        let solver = ProjectedGradient::default();
        let boxp = BoxProjection::new(vec![-1.0, -1.0], vec![1.0, 1.0]).unwrap();
        let res = solver
            .minimize(&rosenbrock_like, &boxp, &[0.0, 0.0])
            .unwrap();
        assert!((res.solution[0] - 1.0).abs() < 1e-4);
        assert!((res.solution[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn projected_gradient_respects_budget() {
        // minimize (x0-3)^2 + (x1-3)^2 s.t. x >= 0, x0+x1 <= 2 => (1,1).
        let f = |x: &[f64]| (x[0] - 3.0).powi(2) + (x[1] - 3.0).powi(2);
        let proj = SimplexCapProjection::uniform(2, 0.0, 2.0).unwrap();
        let solver = ProjectedGradient::default();
        let res = solver.minimize(&f, &proj, &[0.5, 0.5]).unwrap();
        assert!((res.solution[0] - 1.0).abs() < 1e-3);
        assert!((res.solution[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let solver = ProjectedGradient::default();
        let res = solver
            .minimize(&rosenbrock_like, &NoProjection, &[5.0, -5.0])
            .unwrap();
        for w in res.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "trace increased: {} -> {}", w[0], w[1]);
        }
    }

    #[test]
    fn plain_gradient_descent_converges_slowly_but_surely() {
        let solver = GradientDescent::new(GradientDescentConfig {
            learning_rate: 0.01,
            max_iterations: 50_000,
            ..GradientDescentConfig::default()
        });
        let res = solver
            .minimize(&rosenbrock_like, &NoProjection, &[-1.0, -1.0])
            .unwrap();
        assert!((res.solution[0] - 2.0).abs() < 1e-3);
        assert!((res.solution[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn plain_gd_takes_more_iterations_than_projected_gradient() {
        let pg = ProjectedGradient::default();
        let gd = GradientDescent::default();
        let r1 = pg
            .minimize(&rosenbrock_like, &NoProjection, &[5.0, 5.0])
            .unwrap();
        let r2 = gd
            .minimize(&rosenbrock_like, &NoProjection, &[5.0, 5.0])
            .unwrap();
        assert!(r2.iterations > r1.iterations);
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad = ProjectedGradientConfig {
            max_iterations: 0,
            ..ProjectedGradientConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = GradientDescentConfig {
            learning_rate: -1.0,
            ..GradientDescentConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
