//! Numerical differentiation helpers.
//!
//! The QuHE subproblems have closed-form objectives but fairly involved
//! analytic gradients; central finite differences are accurate enough for the
//! small problem dimensions involved and keep the solver code independent of
//! the particular objective.

use crate::linalg::DenseMatrix;

/// Default relative step used by the finite-difference helpers.
pub const DEFAULT_FD_STEP: f64 = 1e-6;

/// Central-difference gradient of `f` at `x` with relative step `step`.
///
/// The per-coordinate step is `step * max(1, |x_i|)` so that very large or
/// very small coordinates (the QuHE problem mixes Hz-scale and unit-scale
/// variables) are handled uniformly.
pub fn central_gradient<F>(f: &F, x: &[f64], step: f64) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64,
{
    let mut grad = Vec::new();
    let mut work = Vec::new();
    central_gradient_into(f, x, step, &mut grad, &mut work);
    grad
}

/// In-place variant of [`central_gradient`]: writes the gradient into `grad`
/// and uses `work` as the evaluation-point buffer, so repeated calls (one per
/// solver iteration) allocate nothing once the buffers have grown to
/// `x.len()`. Bit-identical to [`central_gradient`].
pub fn central_gradient_into<F>(
    f: &F,
    x: &[f64],
    step: f64,
    grad: &mut Vec<f64>,
    work: &mut Vec<f64>,
) where
    F: Fn(&[f64]) -> f64,
{
    grad.clear();
    grad.resize(x.len(), 0.0);
    work.clear();
    work.extend_from_slice(x);
    for i in 0..x.len() {
        let h = step * x[i].abs().max(1.0);
        let orig = work[i];
        work[i] = orig + h;
        let fp = f(work);
        work[i] = orig - h;
        let fm = f(work);
        work[i] = orig;
        grad[i] = (fp - fm) / (2.0 * h);
    }
}

/// Central-difference Hessian of `f` at `x` with relative step `step`.
///
/// Uses the symmetric four-point formula for off-diagonal entries and the
/// three-point formula on the diagonal. The result is explicitly symmetrized.
pub fn central_hessian<F>(f: &F, x: &[f64], step: f64) -> DenseMatrix
where
    F: Fn(&[f64]) -> f64,
{
    let mut h = DenseMatrix::zeros(0, 0);
    let mut work = Vec::new();
    let mut steps = Vec::new();
    central_hessian_into(f, x, step, &mut h, &mut work, &mut steps);
    h
}

/// In-place variant of [`central_hessian`]: writes the Hessian into `h`
/// (reshaped as needed) and uses `work`/`steps` as scratch, so repeated calls
/// allocate nothing once the buffers have grown. Bit-identical to
/// [`central_hessian`].
pub fn central_hessian_into<F>(
    f: &F,
    x: &[f64],
    step: f64,
    h: &mut DenseMatrix,
    work: &mut Vec<f64>,
    steps: &mut Vec<f64>,
) where
    F: Fn(&[f64]) -> f64,
{
    let n = x.len();
    h.reshape_zeroed(n, n);
    let f0 = f(x);
    work.clear();
    work.extend_from_slice(x);
    steps.clear();
    steps.extend(x.iter().map(|xi| step * xi.abs().max(1.0)));

    for i in 0..n {
        // Diagonal: (f(x+h) - 2 f(x) + f(x-h)) / h^2.
        let hi = steps[i];
        let orig = work[i];
        work[i] = orig + hi;
        let fp = f(work);
        work[i] = orig - hi;
        let fm = f(work);
        work[i] = orig;
        h.set(i, i, (fp - 2.0 * f0 + fm) / (hi * hi));

        for j in (i + 1)..n {
            let hj = steps[j];
            let (oi, oj) = (work[i], work[j]);
            work[i] = oi + hi;
            work[j] = oj + hj;
            let fpp = f(work);
            work[j] = oj - hj;
            let fpm = f(work);
            work[i] = oi - hi;
            let fmm = f(work);
            work[j] = oj + hj;
            let fmp = f(work);
            work[i] = oi;
            work[j] = oj;
            let val = (fpp - fpm - fmp + fmm) / (4.0 * hi * hj);
            h.set(i, j, val);
            h.set(j, i, val);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic(x: &[f64]) -> f64 {
        // f = 3 x0^2 + 2 x0 x1 + 5 x1^2 + 7 x0 - x1
        3.0 * x[0] * x[0] + 2.0 * x[0] * x[1] + 5.0 * x[1] * x[1] + 7.0 * x[0] - x[1]
    }

    #[test]
    fn gradient_of_quadratic_matches_analytic() {
        let x = [1.5, -2.0];
        let g = central_gradient(&quadratic, &x, DEFAULT_FD_STEP);
        let expected = [
            6.0 * x[0] + 2.0 * x[1] + 7.0,
            2.0 * x[0] + 10.0 * x[1] - 1.0,
        ];
        assert!((g[0] - expected[0]).abs() < 1e-5);
        assert!((g[1] - expected[1]).abs() < 1e-5);
    }

    #[test]
    fn hessian_of_quadratic_matches_analytic() {
        let x = [0.3, 0.7];
        let h = central_hessian(&quadratic, &x, 1e-4);
        assert!((h.get(0, 0) - 6.0).abs() < 1e-3);
        assert!((h.get(1, 1) - 10.0).abs() < 1e-3);
        assert!((h.get(0, 1) - 2.0).abs() < 1e-3);
        assert!((h.get(1, 0) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn gradient_scales_step_with_magnitude() {
        // f(x) = x^2 at a very large coordinate should still differentiate well.
        let f = |x: &[f64]| x[0] * x[0];
        let g = central_gradient(&f, &[1.0e9], DEFAULT_FD_STEP);
        let rel_err = (g[0] - 2.0e9).abs() / 2.0e9;
        assert!(rel_err < 1e-6, "relative error {rel_err}");
    }
}
