//! Quadratic-transform fractional programming (Shen & Yu) as used by Stage 3
//! of the QuHE algorithm.
//!
//! The only non-concave term of the paper's Stage-3 objective (problem P5,
//! Eq. 24) is the transmission-energy ratio `p_n d_n / r_n`. The paper applies
//! the transformation of its Eq. (25)–(27): introduce an auxiliary variable
//! `z_n = 1 / (2 p_n d_n r_n)` and replace the ratio with
//! `(p_n d_n)^2 z_n + 1 / (4 r_n^2 z_n)`, which is convex in the original
//! variables for fixed `z_n` and convex in `z_n` for fixed originals. The
//! resulting algorithm alternates between a closed-form `z` update and a
//! convex subproblem in the original variables — exactly what
//! [`QuadraticTransform::solve`] implements, generically over the list of
//! ratio terms and the inner convex solver supplied by the caller.

use crate::error::{OptError, OptResult};
use crate::OptimizeResult;

/// One fractional term `numerator(x) / denominator(x)` of the objective.
///
/// For Stage 3, `numerator` is the transmitted energy payload `p_n d_n` and
/// `denominator` is the Shannon rate `r_n(b_n, p_n)`; both must be positive on
/// the feasible set.
pub struct RatioTerm<'a> {
    /// Numerator as a function of the decision vector.
    pub numerator: ScalarFn<'a>,
    /// Denominator as a function of the decision vector (must stay positive).
    pub denominator: ScalarFn<'a>,
}

/// A boxed scalar-valued function of the decision vector. The `Send + Sync`
/// bounds let a set of ratio terms be shared by reference across the threads
/// of a parallel multi-start solve.
pub type ScalarFn<'a> = Box<dyn Fn(&[f64]) -> f64 + Send + Sync + 'a>;

impl<'a> std::fmt::Debug for RatioTerm<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RatioTerm").finish_non_exhaustive()
    }
}

impl<'a> RatioTerm<'a> {
    /// Creates a ratio term from numerator and denominator closures.
    pub fn new<N, D>(numerator: N, denominator: D) -> Self
    where
        N: Fn(&[f64]) -> f64 + Send + Sync + 'a,
        D: Fn(&[f64]) -> f64 + Send + Sync + 'a,
    {
        Self {
            numerator: Box::new(numerator),
            denominator: Box::new(denominator),
        }
    }

    /// The value of the ratio at `x`.
    pub fn value(&self, x: &[f64]) -> f64 {
        (self.numerator)(x) / (self.denominator)(x)
    }

    /// The paper's Eq. (25): the optimal auxiliary variable for this term at
    /// the current point, `z = 1 / (2 * numerator * denominator)`.
    pub fn optimal_auxiliary(&self, x: &[f64]) -> f64 {
        let num = (self.numerator)(x);
        let den = (self.denominator)(x);
        1.0 / (2.0 * num * den)
    }

    /// The paper's Eq. (26)/(27): the convex surrogate
    /// `numerator^2 * z + 1 / (4 * denominator^2 * z)` for a fixed auxiliary
    /// value `z`.
    pub fn surrogate(&self, x: &[f64], z: f64) -> f64 {
        let num = (self.numerator)(x);
        let den = (self.denominator)(x);
        num * num * z + 1.0 / (4.0 * den * den * z)
    }
}

/// Configuration of the alternating quadratic-transform loop.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuadraticTransformConfig {
    /// Maximum number of outer (z-update / convex-solve) iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the true objective between outer iterations.
    pub tolerance: f64,
}

impl Default for QuadraticTransformConfig {
    fn default() -> Self {
        Self {
            max_iterations: 300,
            tolerance: 1e-6,
        }
    }
}

impl QuadraticTransformConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> OptResult<()> {
        if self.max_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if !(self.tolerance > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "tolerance must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Result of the quadratic-transform loop, including per-iteration traces of
/// the true objective and of the auxiliary variables.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuadraticTransformResult {
    /// Final decision vector.
    pub solution: Vec<f64>,
    /// True objective (with the real ratios, not the surrogates) at the final
    /// point.
    pub objective: f64,
    /// Outer iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
    /// Whether the run was abandoned early because it provably could not
    /// beat the incumbent passed to
    /// [`QuadraticTransform::solve_with_incumbent`] (always `false` for
    /// [`QuadraticTransform::solve`]).
    pub pruned: bool,
    /// True-objective trace across outer iterations.
    pub trace: Vec<f64>,
    /// Final auxiliary variables, one per ratio term.
    pub auxiliaries: Vec<f64>,
}

/// Alternating optimizer implementing the quadratic transform.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadraticTransform {
    config: QuadraticTransformConfig,
}

impl QuadraticTransform {
    /// Creates a driver with the given configuration.
    pub fn new(config: QuadraticTransformConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &QuadraticTransformConfig {
        &self.config
    }

    /// Minimizes `other_costs(x) + sum_k weight_k * ratio_k(x)` by alternating
    /// between the closed-form auxiliary update and the convex subproblem
    /// solved by `solve_inner`.
    ///
    /// `solve_inner(x, z)` must (approximately) minimize
    /// `other_costs(y) + sum_k weight_k * surrogate_k(y, z_k)` over the
    /// feasible set, starting from `x`, and return the minimizer. The true
    /// objective is tracked separately so the returned trace reflects real
    /// progress.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::NonFiniteValue`] if a ratio produces a non-finite value
    ///   (e.g. a zero denominator) at any iterate.
    /// * Any error returned by `solve_inner`.
    pub fn solve<FC, FS>(
        &self,
        other_costs: FC,
        terms: &[RatioTerm<'_>],
        weights: &[f64],
        start: &[f64],
        solve_inner: FS,
    ) -> OptResult<QuadraticTransformResult>
    where
        FC: Fn(&[f64]) -> f64,
        FS: FnMut(&[f64], &[f64]) -> OptResult<Vec<f64>>,
    {
        self.solve_with_incumbent(other_costs, terms, weights, start, None, solve_inner)
    }

    /// [`QuadraticTransform::solve`] with incumbent-based dominated-run
    /// pruning: when `incumbent` is `Some(best)`, the loop is abandoned as
    /// soon as the current objective trails `best` by more than an optimistic
    /// bound on the achievable remaining improvement
    /// (`remaining_iterations * last_improvement`, doubled for safety). A
    /// pruned run returns `pruned: true` with its current (dominated) point;
    /// its objective is strictly worse than the incumbent by construction.
    ///
    /// The pruning decision depends only on this run's own already-computed
    /// values and the fixed incumbent, so it is deterministic: concurrent
    /// runs over different starts prune identically regardless of thread
    /// count or completion order.
    ///
    /// # Errors
    /// Same contract as [`QuadraticTransform::solve`].
    pub fn solve_with_incumbent<FC, FS>(
        &self,
        other_costs: FC,
        terms: &[RatioTerm<'_>],
        weights: &[f64],
        start: &[f64],
        incumbent: Option<f64>,
        mut solve_inner: FS,
    ) -> OptResult<QuadraticTransformResult>
    where
        FC: Fn(&[f64]) -> f64,
        FS: FnMut(&[f64], &[f64]) -> OptResult<Vec<f64>>,
    {
        self.config.validate()?;
        if terms.len() != weights.len() {
            return Err(OptError::DimensionMismatch {
                expected: terms.len(),
                actual: weights.len(),
            });
        }
        let true_objective = |x: &[f64]| -> f64 {
            other_costs(x)
                + terms
                    .iter()
                    .zip(weights)
                    .map(|(t, w)| w * t.value(x))
                    .sum::<f64>()
        };

        let mut x = start.to_vec();
        let mut fx = true_objective(&x);
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "quadratic transform starting objective".to_string(),
            });
        }
        let mut trace = vec![fx];
        let mut auxiliaries = vec![0.0; terms.len()];
        let mut converged = false;
        let mut pruned = false;
        let mut iterations = 0;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            // Step 1: closed-form auxiliary update (Eq. 25).
            for (z, term) in auxiliaries.iter_mut().zip(terms) {
                *z = term.optimal_auxiliary(&x);
                if !z.is_finite() || *z <= 0.0 {
                    return Err(OptError::NonFiniteValue {
                        context: format!("auxiliary variable at iteration {iter}"),
                    });
                }
            }
            // Step 2: convex subproblem with surrogates (Eq. 28).
            let next = solve_inner(&x, &auxiliaries)?;
            let fnext = true_objective(&next);
            if !fnext.is_finite() {
                return Err(OptError::NonFiniteValue {
                    context: format!("objective after inner solve at iteration {iter}"),
                });
            }
            // Accept only non-worsening steps; the surrogate guarantees this in
            // exact arithmetic, the guard protects against inner-solver noise.
            let improvement = if fnext <= fx {
                let delta = fx - fnext;
                x = next;
                fx = fnext;
                delta
            } else {
                0.0
            };
            trace.push(fx);
            if improvement < self.config.tolerance {
                converged = true;
                break;
            }
            if let Some(best) = incumbent {
                // Optimistic forecast: no later iteration of this monotone
                // loop plausibly improves faster than twice the latest
                // improvement for every remaining iteration. A run whose
                // forecast still trails the incumbent is dominated.
                let remaining = (self.config.max_iterations - iterations) as f64;
                if fx - 2.0 * remaining * improvement > best {
                    pruned = true;
                    break;
                }
            }
        }

        Ok(QuadraticTransformResult {
            solution: x,
            objective: fx,
            iterations,
            converged,
            pruned,
            trace,
            auxiliaries,
        })
    }
}

/// Converts a [`QuadraticTransformResult`] into the crate-wide
/// [`OptimizeResult`] (dropping the auxiliaries).
impl From<QuadraticTransformResult> for OptimizeResult {
    fn from(value: QuadraticTransformResult) -> Self {
        OptimizeResult {
            solution: value.solution,
            objective: value.objective,
            iterations: value.iterations,
            converged: value.converged,
            trace: value.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::{ProjectedGradient, ProjectedGradientConfig};
    use crate::projection::BoxProjection;

    #[test]
    fn surrogate_tightness_at_optimal_auxiliary() {
        // At z = 1/(2 a b), the surrogate equals the ratio a/b exactly.
        let term = RatioTerm::new(|x: &[f64]| x[0], |x: &[f64]| x[1]);
        let x = [3.0, 4.0];
        let z = term.optimal_auxiliary(&x);
        assert!((term.surrogate(&x, z) - term.value(&x)).abs() < 1e-12);
        // And for any other z the surrogate upper-bounds the ratio.
        for other_z in [z * 0.5, z * 2.0, z * 10.0] {
            assert!(term.surrogate(&x, other_z) >= term.value(&x) - 1e-12);
        }
    }

    #[test]
    fn minimizes_energy_like_ratio_problem() {
        // minimize p + 5 * p / log2(1 + p) over p in [0.1, 4].
        // The ratio p / log2(1+p) is increasing in p, so optimum is p = 0.1.
        let term = RatioTerm::new(|x: &[f64]| x[0], |x: &[f64]| (1.0 + x[0]).log2());
        let terms = vec![term];
        let weights = vec![5.0];
        let proj = BoxProjection::uniform(1, 0.1, 4.0).unwrap();
        let inner_solver = ProjectedGradient::new(ProjectedGradientConfig::default());

        let qt = QuadraticTransform::default();
        let res = qt
            .solve(
                |x: &[f64]| x[0],
                &terms,
                &weights,
                &[2.0],
                |x, z| {
                    let z0 = z[0];
                    let obj = |y: &[f64]| {
                        let num = y[0];
                        let den = (1.0 + y[0]).log2();
                        y[0] + 5.0 * (num * num * z0 + 1.0 / (4.0 * den * den * z0))
                    };
                    Ok(inner_solver.minimize(&obj, &proj, x)?.solution)
                },
            )
            .unwrap();
        assert!(
            (res.solution[0] - 0.1).abs() < 1e-2,
            "got {}",
            res.solution[0]
        );
        assert!(res.converged);
    }

    #[test]
    fn trace_is_monotone_nonincreasing() {
        let term = RatioTerm::new(|x: &[f64]| x[0] * x[0] + 1.0, |x: &[f64]| x[0] + 1.0);
        let terms = vec![term];
        let proj = BoxProjection::uniform(1, 0.0, 10.0).unwrap();
        let inner_solver = ProjectedGradient::default();
        let res = QuadraticTransform::default()
            .solve(
                |_x: &[f64]| 0.0,
                &terms,
                &[1.0],
                &[9.0],
                |x, z| {
                    let z0 = z[0];
                    let obj = |y: &[f64]| {
                        let num = y[0] * y[0] + 1.0;
                        let den = y[0] + 1.0;
                        num * num * z0 + 1.0 / (4.0 * den * den * z0)
                    };
                    Ok(inner_solver.minimize(&obj, &proj, x)?.solution)
                },
            )
            .unwrap();
        for w in res.trace.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn mismatched_weights_are_rejected() {
        let terms = vec![RatioTerm::new(|x: &[f64]| x[0], |x: &[f64]| x[0] + 1.0)];
        let res = QuadraticTransform::default().solve(
            |_: &[f64]| 0.0,
            &terms,
            &[1.0, 2.0],
            &[1.0],
            |x, _| Ok(x.to_vec()),
        );
        assert!(matches!(res, Err(OptError::DimensionMismatch { .. })));
    }

    #[test]
    fn zero_denominator_is_detected() {
        let terms = vec![RatioTerm::new(|x: &[f64]| x[0], |_: &[f64]| 0.0)];
        let res = QuadraticTransform::default().solve(
            |_: &[f64]| 0.0,
            &terms,
            &[1.0],
            &[1.0],
            |x, _| Ok(x.to_vec()),
        );
        assert!(matches!(res, Err(OptError::NonFiniteValue { .. })));
    }
}
