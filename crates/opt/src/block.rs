//! Block-coordinate (alternating) optimization driver.
//!
//! The whole QuHE procedure (the paper's Algorithm 4) is a block-coordinate
//! ascent over three blocks: `(phi, w)`, `(lambda, T)` and
//! `(p, b, f^(c), f^(s), T)`. Each outer iteration solves the three blocks in
//! order with the other blocks fixed, and the loop stops when the overall
//! objective stops improving. The paper's maximum-block-improvement argument
//! guarantees convergence to (at least) a stationary point because every block
//! is solved to optimality.
//!
//! This module provides that outer loop generically over a state type `S` and
//! a list of block solvers, and records the per-iteration objective values
//! needed to reproduce the paper's convergence figures.

use crate::error::{OptError, OptResult};

/// Configuration for [`BlockDescent`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BlockDescentConfig {
    /// Maximum number of outer iterations (full sweeps over all blocks).
    pub max_iterations: usize,
    /// Convergence tolerance on the objective change across one full sweep.
    /// The paper uses a solution accuracy tolerance of `1e-4`.
    pub tolerance: f64,
    /// Whether to stop with [`OptError::DidNotConverge`] when the iteration
    /// cap is hit (`true`), or to return the best point found so far
    /// (`false`).
    pub strict: bool,
}

impl Default for BlockDescentConfig {
    fn default() -> Self {
        Self {
            max_iterations: 50,
            tolerance: 1e-4,
            strict: false,
        }
    }
}

impl BlockDescentConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> OptResult<()> {
        if self.max_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if !(self.tolerance > 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "tolerance must be positive".to_string(),
            });
        }
        Ok(())
    }
}

/// Record of one outer iteration of the alternating optimization.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepRecord {
    /// Outer iteration index (0-based).
    pub iteration: usize,
    /// Objective after each block within this sweep, in block order.
    pub block_objectives: Vec<f64>,
    /// Objective at the end of the sweep.
    pub objective: f64,
}

/// Convergence trace of a block-descent run.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct BlockTrace {
    /// One record per completed sweep.
    pub sweeps: Vec<SweepRecord>,
}

impl BlockTrace {
    /// Objective values at the end of each sweep.
    pub fn objectives(&self) -> Vec<f64> {
        self.sweeps.iter().map(|s| s.objective).collect()
    }

    /// Total number of block solves performed.
    pub fn block_calls(&self) -> usize {
        self.sweeps.iter().map(|s| s.block_objectives.len()).sum()
    }
}

/// Result of a block-descent run over a state of type `S`.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockDescentOutcome<S> {
    /// Final state.
    pub state: S,
    /// Objective value of the final state (as reported by the objective
    /// closure, i.e. the maximization objective).
    pub objective: f64,
    /// Number of completed sweeps.
    pub iterations: usize,
    /// Whether the tolerance criterion was met.
    pub converged: bool,
    /// Per-sweep trace.
    pub trace: BlockTrace,
}

/// Generic alternating-optimization driver (maximization).
#[derive(Debug, Clone, Copy, Default)]
pub struct BlockDescent {
    config: BlockDescentConfig,
}

impl BlockDescent {
    /// Creates a driver with the given configuration.
    pub fn new(config: BlockDescentConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BlockDescentConfig {
        &self.config
    }

    /// Runs alternating maximization.
    ///
    /// * `state` — initial state (e.g. the full QuHE variable set).
    /// * `objective` — evaluates the maximization objective of a state.
    /// * `blocks` — block solvers applied in order within each sweep; each
    ///   receives the current state and returns the updated state with its
    ///   block re-optimized (other blocks untouched).
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::NonFiniteValue`] if the objective of the initial state is
    ///   non-finite.
    /// * [`OptError::DidNotConverge`] in strict mode when the iteration cap is
    ///   reached.
    /// * Any error returned by a block solver.
    pub fn maximize<S, F>(
        &self,
        state: S,
        objective: F,
        blocks: &mut [Box<dyn FnMut(S) -> OptResult<S> + '_>],
    ) -> OptResult<BlockDescentOutcome<S>>
    where
        S: Clone,
        F: Fn(&S) -> f64,
    {
        self.config.validate()?;
        let mut current = state;
        let mut best_objective = objective(&current);
        if !best_objective.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "block descent initial objective".to_string(),
            });
        }
        let mut trace = BlockTrace::default();
        let mut converged = false;
        let mut iterations = 0;

        for iteration in 0..self.config.max_iterations {
            iterations = iteration + 1;
            let objective_before = best_objective;
            let mut block_objectives = Vec::with_capacity(blocks.len());
            for block in blocks.iter_mut() {
                let candidate = block(current.clone())?;
                let value = objective(&candidate);
                if !value.is_finite() {
                    return Err(OptError::NonFiniteValue {
                        context: format!("objective after block update in sweep {iteration}"),
                    });
                }
                // Block solvers are exact maximizers over their block, so the
                // objective must not decrease; tolerate tiny numerical noise
                // and keep the better state.
                if value >= best_objective - 1e-9 {
                    current = candidate;
                    best_objective = value.max(best_objective);
                }
                block_objectives.push(best_objective);
            }
            trace.sweeps.push(SweepRecord {
                iteration,
                block_objectives,
                objective: best_objective,
            });
            if (best_objective - objective_before).abs() < self.config.tolerance {
                converged = true;
                break;
            }
        }

        if !converged && self.config.strict {
            return Err(OptError::DidNotConverge { iterations });
        }

        Ok(BlockDescentOutcome {
            state: current,
            objective: best_objective,
            iterations,
            converged,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-block toy: maximize -(x - 3)^2 - (y + 1)^2 - 0.5 (x - y)^2 by
    /// alternating exact coordinate maximization.
    #[derive(Debug, Clone, PartialEq)]
    struct State {
        x: f64,
        y: f64,
    }

    fn objective(s: &State) -> f64 {
        -(s.x - 3.0).powi(2) - (s.y + 1.0).powi(2) - 0.5 * (s.x - s.y).powi(2)
    }

    #[test]
    fn alternating_exact_blocks_reach_stationary_point() {
        let driver = BlockDescent::new(BlockDescentConfig {
            max_iterations: 100,
            tolerance: 1e-10,
            strict: false,
        });
        let mut blocks: Vec<Box<dyn FnMut(State) -> OptResult<State>>> = vec![
            Box::new(|mut s: State| {
                // argmax over x with y fixed: derivative -2(x-3) - (x-y) = 0.
                s.x = (6.0 + s.y) / 3.0;
                Ok(s)
            }),
            Box::new(|mut s: State| {
                // argmax over y with x fixed: derivative -2(y+1) + (x-y) = 0.
                s.y = (s.x - 2.0) / 3.0;
                Ok(s)
            }),
        ];
        let out = driver
            .maximize(State { x: 0.0, y: 0.0 }, objective, &mut blocks)
            .unwrap();
        assert!(out.converged);
        // Stationary point of the full problem: grad = 0 =>
        // x = (6 + y)/3 and y = (x - 2)/3 => x = 2, y = 0.
        assert!((out.state.x - 2.0).abs() < 1e-6);
        assert!((out.state.y - 0.0).abs() < 1e-6);
        // Objective trace is non-decreasing (maximization).
        let objectives = out.trace.objectives();
        for w in objectives.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
        assert!(out.trace.block_calls() >= 2);
    }

    #[test]
    fn strict_mode_errors_when_budget_exhausted() {
        let driver = BlockDescent::new(BlockDescentConfig {
            max_iterations: 1,
            tolerance: 1e-16,
            strict: true,
        });
        let mut blocks: Vec<Box<dyn FnMut(State) -> OptResult<State>>> =
            vec![Box::new(|mut s: State| {
                s.x += 1.0; // keeps improving, never converges in one sweep
                Ok(s)
            })];
        let res = driver.maximize(
            State { x: 0.0, y: 0.0 },
            |s: &State| -((s.x - 100.0).powi(2)),
            &mut blocks,
        );
        assert!(matches!(res, Err(OptError::DidNotConverge { .. })));
    }

    #[test]
    fn worsening_block_updates_are_rejected() {
        let driver = BlockDescent::default();
        let mut blocks: Vec<Box<dyn FnMut(State) -> OptResult<State>>> =
            vec![Box::new(|mut s: State| {
                s.x -= 50.0; // strictly worsens the objective
                Ok(s)
            })];
        let start = State { x: 3.0, y: -1.0 };
        let out = driver
            .maximize(start.clone(), objective, &mut blocks)
            .unwrap();
        assert_eq!(out.state, start, "worsening update should be discarded");
    }

    #[test]
    fn block_errors_propagate() {
        let driver = BlockDescent::default();
        let mut blocks: Vec<Box<dyn FnMut(State) -> OptResult<State>>> =
            vec![Box::new(|_s: State| Err(OptError::SingularSystem))];
        let res = driver.maximize(State { x: 0.0, y: 0.0 }, objective, &mut blocks);
        assert_eq!(res.unwrap_err(), OptError::SingularSystem);
    }
}
