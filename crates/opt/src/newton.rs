//! Damped Newton method for smooth convex minimization.
//!
//! Used by the log-barrier solver ([`crate::barrier`]) as the inner "centering"
//! step, mirroring how CVX's interior-point solver handles the convex
//! subproblems of the QuHE paper's Stage 1 and Stage 3.

use crate::diff::{central_gradient_into, central_hessian_into};
use crate::error::{OptError, OptResult};
use crate::linalg::{CholeskyFactor, DenseMatrix, VectorExt};
use crate::line_search::{ArmijoLineSearch, LineSearchConfig};
use crate::OptimizeResult;

/// Configuration for [`DampedNewton`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NewtonConfig {
    /// Maximum number of Newton iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the Newton decrement (squared).
    pub tolerance: f64,
    /// Relative finite-difference step.
    pub fd_step: f64,
    /// Tikhonov damping added to the Hessian diagonal when the factorization
    /// fails (the Hessian of the QuHE subproblems can be near-singular far
    /// from the optimum).
    pub damping: f64,
    /// Line-search configuration.
    pub line_search: LineSearchConfig,
}

impl Default for NewtonConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            tolerance: 1e-10,
            fd_step: 1e-5,
            damping: 1e-8,
            line_search: LineSearchConfig::default(),
        }
    }
}

impl NewtonConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for non-positive parameters.
    pub fn validate(&self) -> OptResult<()> {
        if self.max_iterations == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_iterations must be at least 1".to_string(),
            });
        }
        if !(self.tolerance > 0.0 && self.fd_step > 0.0 && self.damping >= 0.0) {
            return Err(OptError::InvalidConfig {
                reason: "tolerance/fd_step must be positive, damping non-negative".to_string(),
            });
        }
        self.line_search.validate()
    }
}

/// Reusable storage for [`DampedNewton::minimize_with`].
///
/// Holds the iterate, gradient, Hessian, Cholesky factor, and
/// direction/trial buffers so that a full Newton solve performs no
/// per-iteration allocation, and consecutive solves (e.g. the centering
/// steps of a barrier sweep) reuse the same storage. A workspace carries no
/// numeric state between calls — only capacity — so reusing one across
/// unrelated problems is always safe.
#[derive(Debug, Clone, Default)]
pub struct NewtonWorkspace {
    x: Vec<f64>,
    grad: Vec<f64>,
    rhs: Vec<f64>,
    direction: Vec<f64>,
    trial: Vec<f64>,
    fd_work: Vec<f64>,
    fd_steps: Vec<f64>,
    hess: DenseMatrix,
    chol: CholeskyFactor,
}

impl NewtonWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Damped Newton minimizer with numerical derivatives.
///
/// The optional domain predicate passed to [`DampedNewton::minimize`]
/// restricts iterates to an open set (used for barrier objectives that are
/// only finite strictly inside the feasible region); `f` must be finite on
/// that set.
#[derive(Debug, Clone, Copy, Default)]
pub struct DampedNewton {
    config: NewtonConfig,
}

impl DampedNewton {
    /// Creates a solver with the given configuration.
    pub fn new(config: NewtonConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NewtonConfig {
        &self.config
    }

    /// Minimizes `f` starting from `start`, keeping all iterates inside the
    /// open set described by `in_domain`.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] for an invalid configuration.
    /// * [`OptError::InfeasibleStart`] if `start` is outside the domain.
    /// * [`OptError::NonFiniteValue`] if the objective is non-finite at the
    ///   starting point.
    pub fn minimize<F, D>(&self, f: &F, in_domain: &D, start: &[f64]) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        D: Fn(&[f64]) -> bool,
    {
        self.minimize_with(f, in_domain, start, &mut NewtonWorkspace::new())
    }

    /// [`DampedNewton::minimize`] with caller-provided storage: all
    /// gradients, Hessians, Cholesky factors, and direction/trial points are
    /// written into `ws`, so a solve allocates only its returned
    /// solution/trace. Bit-identical to [`DampedNewton::minimize`].
    ///
    /// # Errors
    /// Same contract as [`DampedNewton::minimize`].
    pub fn minimize_with<F, D>(
        &self,
        f: &F,
        in_domain: &D,
        start: &[f64],
        ws: &mut NewtonWorkspace,
    ) -> OptResult<OptimizeResult>
    where
        F: Fn(&[f64]) -> f64,
        D: Fn(&[f64]) -> bool,
    {
        self.config.validate()?;
        if !in_domain(start) {
            return Err(OptError::InfeasibleStart {
                reason: "newton starting point outside the domain".to_string(),
            });
        }
        ws.x.clear();
        ws.x.extend_from_slice(start);
        let mut fx = f(&ws.x);
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "newton starting objective".to_string(),
            });
        }
        let ls = ArmijoLineSearch::new(self.config.line_search);
        let mut trace = vec![fx];
        let mut converged = false;
        let mut iterations = 0;

        for iter in 0..self.config.max_iterations {
            iterations = iter + 1;
            central_gradient_into(f, &ws.x, self.config.fd_step, &mut ws.grad, &mut ws.fd_work);
            central_hessian_into(
                f,
                &ws.x,
                self.config.fd_step.sqrt() * 1e-2,
                &mut ws.hess,
                &mut ws.fd_work,
                &mut ws.fd_steps,
            );
            // Try the pure Newton system first, escalate damping on failure.
            let mut damping = self.config.damping;
            ws.rhs.clear();
            ws.rhs.extend(ws.grad.iter().map(|g| -g));
            loop {
                let factored = ws
                    .chol
                    .refresh(&ws.hess)
                    .and_then(|()| ws.chol.solve_into(&ws.rhs, &mut ws.direction));
                match factored {
                    Ok(()) => break,
                    Err(OptError::SingularSystem) if damping < 1e6 => {
                        ws.hess.add_diagonal(damping.max(1e-10));
                        damping = (damping.max(1e-10)) * 10.0;
                    }
                    Err(_) => {
                        // Fall back to steepest descent when the Hessian is
                        // hopeless (still globally convergent with line search).
                        ws.direction.clear();
                        ws.direction.extend_from_slice(&ws.rhs);
                        break;
                    }
                }
            }
            // Newton decrement: lambda^2 = -grad^T d.
            let decrement = -ws.grad.dot(&ws.direction);
            if decrement.abs() < self.config.tolerance {
                converged = true;
                break;
            }
            match ls.search_into(
                f,
                &ws.x,
                fx,
                &ws.grad,
                &ws.direction,
                |p| in_domain(p),
                &mut ws.trial,
            ) {
                Ok(outcome) => {
                    let decrease = fx - outcome.value;
                    std::mem::swap(&mut ws.x, &mut ws.trial);
                    fx = outcome.value;
                    trace.push(fx);
                    if decrease.abs() < self.config.tolerance {
                        converged = true;
                        break;
                    }
                }
                Err(OptError::DidNotConverge { .. }) => {
                    converged = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }

        Ok(OptimizeResult {
            solution: ws.x.clone(),
            objective: fx,
            iterations,
            converged,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newton_converges_on_quadratic_in_few_iterations() {
        let f = |x: &[f64]| (x[0] - 1.0).powi(2) + 4.0 * (x[1] + 2.0).powi(2) + x[0] * x[1] * 0.1;
        let solver = DampedNewton::default();
        let res = solver
            .minimize(&f, &|_: &[f64]| true, &[10.0, 10.0])
            .unwrap();
        assert!(res.converged);
        assert!(res.iterations <= 10, "took {} iterations", res.iterations);
        // Analytic minimum of the slightly coupled quadratic.
        assert!(res.objective < f(&[1.0, -2.0]) + 1e-6);
    }

    #[test]
    fn newton_handles_log_barrier_style_objectives() {
        // minimize x - ln(x) on x > 0, minimum at x = 1.
        let f = |x: &[f64]| x[0] - x[0].ln();
        let solver = DampedNewton::default();
        let res = solver
            .minimize(&f, &|p: &[f64]| p[0] > 0.0, &[5.0])
            .unwrap();
        assert!((res.solution[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn infeasible_start_is_rejected() {
        let f = |x: &[f64]| x[0];
        let solver = DampedNewton::default();
        assert!(matches!(
            solver.minimize(&f, &|p: &[f64]| p[0] > 0.0, &[-1.0]),
            Err(OptError::InfeasibleStart { .. })
        ));
    }

    #[test]
    fn invalid_config_rejected() {
        let cfg = NewtonConfig {
            max_iterations: 0,
            ..NewtonConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
