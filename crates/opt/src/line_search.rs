//! Backtracking (Armijo) line search shared by the gradient and Newton
//! solvers.

use crate::error::{OptError, OptResult};
use crate::linalg::VectorExt;

/// Configuration of the Armijo backtracking line search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineSearchConfig {
    /// Initial trial step length.
    pub initial_step: f64,
    /// Multiplicative shrink factor applied when the Armijo condition fails
    /// (strictly between 0 and 1).
    pub shrink: f64,
    /// Armijo sufficient-decrease constant (strictly between 0 and 1).
    pub c1: f64,
    /// Maximum number of backtracking halvings before giving up.
    pub max_backtracks: usize,
}

impl Default for LineSearchConfig {
    fn default() -> Self {
        Self {
            initial_step: 1.0,
            shrink: 0.5,
            c1: 1e-4,
            max_backtracks: 60,
        }
    }
}

impl LineSearchConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> OptResult<()> {
        if !(self.initial_step > 0.0 && self.initial_step.is_finite()) {
            return Err(OptError::InvalidConfig {
                reason: "initial_step must be positive and finite".to_string(),
            });
        }
        if !(self.shrink > 0.0 && self.shrink < 1.0) {
            return Err(OptError::InvalidConfig {
                reason: "shrink must lie in (0, 1)".to_string(),
            });
        }
        if !(self.c1 > 0.0 && self.c1 < 1.0) {
            return Err(OptError::InvalidConfig {
                reason: "c1 must lie in (0, 1)".to_string(),
            });
        }
        if self.max_backtracks == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_backtracks must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Result of a successful line search.
#[derive(Debug, Clone, PartialEq)]
pub struct LineSearchOutcome {
    /// Accepted step length.
    pub step: f64,
    /// The accepted point `x + step * direction`.
    pub point: Vec<f64>,
    /// Objective value at the accepted point.
    pub value: f64,
    /// Number of backtracking steps taken.
    pub backtracks: usize,
}

/// Armijo backtracking line search.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmijoLineSearch {
    config: LineSearchConfig,
}

impl ArmijoLineSearch {
    /// Creates a line search with the given configuration.
    pub fn new(config: LineSearchConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LineSearchConfig {
        &self.config
    }

    /// Searches along `direction` from `x` for a point satisfying the Armijo
    /// sufficient-decrease condition
    /// `f(x + t d) <= f(x) + c1 * t * grad^T d`.
    ///
    /// An optional `feasible` predicate restricts acceptance to points inside
    /// a feasible region (used by the barrier solver to stay strictly
    /// interior); infeasible trial points are treated like insufficient
    /// decrease and trigger further backtracking.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] if the configuration is invalid.
    /// * [`OptError::NonFiniteValue`] if `f(x)` is non-finite.
    /// * [`OptError::DidNotConverge`] if no acceptable step is found within
    ///   the backtracking budget (typically a sign that `direction` is not a
    ///   descent direction).
    pub fn search<F, P>(
        &self,
        f: &F,
        x: &[f64],
        fx: f64,
        grad: &[f64],
        direction: &[f64],
        feasible: P,
    ) -> OptResult<LineSearchOutcome>
    where
        F: Fn(&[f64]) -> f64,
        P: Fn(&[f64]) -> bool,
    {
        self.config.validate()?;
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "line search initial objective".to_string(),
            });
        }
        let slope = grad.dot(direction);
        if slope >= 0.0 {
            // Not a descent direction: backtracking cannot make progress and
            // accepting a rounding-level step would silently stall the caller.
            return Err(OptError::DidNotConverge { iterations: 0 });
        }
        let mut step = self.config.initial_step;
        for backtracks in 0..self.config.max_backtracks {
            let candidate = x.axpy(step, direction);
            if feasible(&candidate) {
                let value = f(&candidate);
                if value.is_finite() && value <= fx + self.config.c1 * step * slope {
                    return Ok(LineSearchOutcome {
                        step,
                        point: candidate,
                        value,
                        backtracks,
                    });
                }
            }
            step *= self.config.shrink;
        }
        Err(OptError::DidNotConverge {
            iterations: self.config.max_backtracks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::central_gradient;

    #[test]
    fn finds_decrease_on_quadratic() {
        let f = |x: &[f64]| x[0] * x[0];
        let x = [3.0];
        let g = central_gradient(&f, &x, 1e-6);
        let d = [-g[0]];
        let ls = ArmijoLineSearch::default();
        let out = ls.search(&f, &x, f(&x), &g, &d, |_| true).unwrap();
        assert!(out.value < f(&x));
        assert!(out.step > 0.0);
    }

    #[test]
    fn respects_feasibility_predicate() {
        let f = |x: &[f64]| x[0];
        let x = [1.0];
        let g = [1.0];
        let d = [-1.0];
        let ls = ArmijoLineSearch::default();
        // Only points with x >= 0.9 are feasible; full step to 0.0 must be
        // rejected and the search must back off.
        let out = ls.search(&f, &x, 1.0, &g, &d, |p| p[0] >= 0.9).unwrap();
        assert!(out.point[0] >= 0.9);
        assert!(out.value < 1.0);
    }

    #[test]
    fn ascent_direction_fails() {
        let f = |x: &[f64]| x[0] * x[0];
        let x = [1.0];
        let g = [2.0];
        let d = [1.0]; // ascent direction
        let ls = ArmijoLineSearch::default();
        assert!(matches!(
            ls.search(&f, &x, 1.0, &g, &d, |_| true),
            Err(OptError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = LineSearchConfig {
            shrink: 1.5,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = LineSearchConfig {
            initial_step: 0.0,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = LineSearchConfig {
            c1: 0.0,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = LineSearchConfig {
            max_backtracks: 0,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
