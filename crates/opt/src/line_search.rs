//! Backtracking (Armijo) line search shared by the gradient and Newton
//! solvers.

use crate::error::{OptError, OptResult};
use crate::linalg::VectorExt;

/// Configuration of the Armijo backtracking line search.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LineSearchConfig {
    /// Initial trial step length.
    pub initial_step: f64,
    /// Multiplicative shrink factor applied when the Armijo condition fails
    /// (strictly between 0 and 1).
    pub shrink: f64,
    /// Armijo sufficient-decrease constant (strictly between 0 and 1).
    pub c1: f64,
    /// Maximum number of backtracking halvings before giving up.
    pub max_backtracks: usize,
}

impl Default for LineSearchConfig {
    fn default() -> Self {
        Self {
            initial_step: 1.0,
            shrink: 0.5,
            c1: 1e-4,
            max_backtracks: 60,
        }
    }
}

impl LineSearchConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// Returns [`OptError::InvalidConfig`] for out-of-range parameters.
    pub fn validate(&self) -> OptResult<()> {
        if !(self.initial_step > 0.0 && self.initial_step.is_finite()) {
            return Err(OptError::InvalidConfig {
                reason: "initial_step must be positive and finite".to_string(),
            });
        }
        if !(self.shrink > 0.0 && self.shrink < 1.0) {
            return Err(OptError::InvalidConfig {
                reason: "shrink must lie in (0, 1)".to_string(),
            });
        }
        if !(self.c1 > 0.0 && self.c1 < 1.0) {
            return Err(OptError::InvalidConfig {
                reason: "c1 must lie in (0, 1)".to_string(),
            });
        }
        if self.max_backtracks == 0 {
            return Err(OptError::InvalidConfig {
                reason: "max_backtracks must be at least 1".to_string(),
            });
        }
        Ok(())
    }
}

/// Result of a successful line search.
#[derive(Debug, Clone, PartialEq)]
pub struct LineSearchOutcome {
    /// Accepted step length.
    pub step: f64,
    /// The accepted point `x + step * direction`.
    pub point: Vec<f64>,
    /// Objective value at the accepted point.
    pub value: f64,
    /// Number of backtracking steps taken.
    pub backtracks: usize,
}

/// Result of a successful [`ArmijoLineSearch::search_into`]: the accepted
/// point itself is left in the caller-provided trial buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSearchStep {
    /// Accepted step length.
    pub step: f64,
    /// Objective value at the accepted point.
    pub value: f64,
    /// Number of backtracking steps taken.
    pub backtracks: usize,
}

/// Armijo backtracking line search.
#[derive(Debug, Clone, Copy, Default)]
pub struct ArmijoLineSearch {
    config: LineSearchConfig,
}

impl ArmijoLineSearch {
    /// Creates a line search with the given configuration.
    pub fn new(config: LineSearchConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LineSearchConfig {
        &self.config
    }

    /// Searches along `direction` from `x` for a point satisfying the Armijo
    /// sufficient-decrease condition
    /// `f(x + t d) <= f(x) + c1 * t * grad^T d`.
    ///
    /// An optional `feasible` predicate restricts acceptance to points inside
    /// a feasible region (used by the barrier solver to stay strictly
    /// interior); infeasible trial points are treated like insufficient
    /// decrease and trigger further backtracking.
    ///
    /// # Errors
    /// * [`OptError::InvalidConfig`] if the configuration is invalid.
    /// * [`OptError::NonFiniteValue`] if `f(x)` is non-finite.
    /// * [`OptError::DidNotConverge`] if no acceptable step is found within
    ///   the backtracking budget (typically a sign that `direction` is not a
    ///   descent direction).
    pub fn search<F, P>(
        &self,
        f: &F,
        x: &[f64],
        fx: f64,
        grad: &[f64],
        direction: &[f64],
        feasible: P,
    ) -> OptResult<LineSearchOutcome>
    where
        F: Fn(&[f64]) -> f64,
        P: Fn(&[f64]) -> bool,
    {
        let mut trial = Vec::new();
        let step = self.search_into(f, x, fx, grad, direction, feasible, &mut trial)?;
        Ok(LineSearchOutcome {
            step: step.step,
            point: trial,
            value: step.value,
            backtracks: step.backtracks,
        })
    }

    /// Allocation-free variant of [`ArmijoLineSearch::search`]: every trial
    /// point is written into `trial`, and on success the accepted point is
    /// left there. Repeated calls with the same buffer (one per solver
    /// iteration) allocate nothing once the buffer has grown to `x.len()`.
    /// Bit-identical to [`ArmijoLineSearch::search`].
    ///
    /// # Errors
    /// Same contract as [`ArmijoLineSearch::search`].
    // quhe-analyze: hot-path
    #[allow(clippy::too_many_arguments)]
    pub fn search_into<F, P>(
        &self,
        f: &F,
        x: &[f64],
        fx: f64,
        grad: &[f64],
        direction: &[f64],
        feasible: P,
        trial: &mut Vec<f64>,
    ) -> OptResult<LineSearchStep>
    where
        F: Fn(&[f64]) -> f64,
        P: Fn(&[f64]) -> bool,
    {
        // Qualified call: a bare `.validate()` is indistinguishable from the
        // other config validators to the whole-workspace hot-path lint.
        LineSearchConfig::validate(&self.config)?;
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "line search initial objective".to_string(),
            });
        }
        let slope = grad.dot(direction);
        if slope >= 0.0 {
            // Not a descent direction: backtracking cannot make progress and
            // accepting a rounding-level step would silently stall the caller.
            return Err(OptError::DidNotConverge { iterations: 0 });
        }
        assert_eq!(x.len(), direction.len(), "search_into: length mismatch");
        let mut step = self.config.initial_step;
        for backtracks in 0..self.config.max_backtracks {
            trial.clear();
            trial.extend(x.iter().zip(direction).map(|(a, b)| a + step * b));
            if feasible(trial) {
                let value = f(trial);
                if value.is_finite() && value <= fx + self.config.c1 * step * slope {
                    return Ok(LineSearchStep {
                        step,
                        value,
                        backtracks,
                    });
                }
            }
            step *= self.config.shrink;
        }
        Err(OptError::DidNotConverge {
            iterations: self.config.max_backtracks,
        })
    }

    /// [`ArmijoLineSearch::search_into`] warm-started at `hint` backtracks
    /// instead of at the initial step.
    ///
    /// The plain search rediscovers the accepted step from scratch: every
    /// call pays one objective evaluation per rejected trial, and iterative
    /// solvers whose accepted step length is stable across iterations pay
    /// that rejection cost again and again. This variant starts testing at
    /// the hinted backtrack count (typically the count accepted by the
    /// previous iteration): if the hinted step is rejected it backtracks
    /// further exactly like the plain search, and if it is accepted it walks
    /// *back up* toward longer steps until it finds the first accepted one.
    /// With an accurate hint the accepted step costs 2 objective evaluations
    /// instead of `backtracks + 1`.
    ///
    /// Trial steps are generated by the same repeated multiplication as the
    /// plain search, so every tested step length — and therefore every trial
    /// point, objective value, and the returned outcome — carries exactly the
    /// bits the plain search would produce for the same backtrack count.
    /// The result is identical to [`ArmijoLineSearch::search_into`] whenever
    /// acceptance is monotone in the backtrack count (shorter steps accepted
    /// whenever a longer one is), which holds for smooth objectives along
    /// descent directions over convex feasible sets — the regime of every
    /// solver in this crate. `hint = 0` degenerates to the plain search.
    ///
    /// # Errors
    /// Same contract as [`ArmijoLineSearch::search`].
    // quhe-analyze: hot-path
    #[allow(clippy::too_many_arguments)]
    pub fn search_into_hinted<F, P>(
        &self,
        f: &F,
        x: &[f64],
        fx: f64,
        grad: &[f64],
        direction: &[f64],
        feasible: P,
        trial: &mut Vec<f64>,
        hint: usize,
    ) -> OptResult<LineSearchStep>
    where
        F: Fn(&[f64]) -> f64,
        P: Fn(&[f64]) -> bool,
    {
        // Qualified for the same reason as in `search_into`.
        LineSearchConfig::validate(&self.config)?;
        if !fx.is_finite() {
            return Err(OptError::NonFiniteValue {
                context: "line search initial objective".to_string(),
            });
        }
        let slope = grad.dot(direction);
        if slope >= 0.0 {
            return Err(OptError::DidNotConverge { iterations: 0 });
        }
        assert_eq!(
            x.len(),
            direction.len(),
            "search_into_hinted: length mismatch"
        );
        // Step lengths must match the plain search bit-for-bit, so they are
        // produced by the same repeated multiplication rather than a power.
        let step_at = |k: usize| -> f64 {
            let mut s = self.config.initial_step;
            for _ in 0..k {
                s *= self.config.shrink;
            }
            s
        };
        let attempt = |step: f64, trial: &mut Vec<f64>| -> Option<f64> {
            trial.clear();
            trial.extend(x.iter().zip(direction).map(|(a, b)| a + step * b));
            if feasible(trial) {
                let value = f(trial);
                if value.is_finite() && value <= fx + self.config.c1 * step * slope {
                    return Some(value);
                }
            }
            None
        };
        let mut backtracks = hint.min(self.config.max_backtracks - 1);
        let mut step = step_at(backtracks);
        match attempt(step, trial) {
            Some(accepted) => {
                // Accepted at the hint: walk toward longer steps until one is
                // rejected; the plain search would have stopped at the first
                // (longest) accepted step.
                let mut value = accepted;
                while backtracks > 0 {
                    let longer = step_at(backtracks - 1);
                    match attempt(longer, trial) {
                        Some(v) => {
                            backtracks -= 1;
                            step = longer;
                            value = v;
                        }
                        None => {
                            // `trial` holds the rejected longer point; restore
                            // the accepted one (same expression, same bits).
                            trial.clear();
                            trial.extend(x.iter().zip(direction).map(|(a, b)| a + step * b));
                            break;
                        }
                    }
                }
                Ok(LineSearchStep {
                    step,
                    value,
                    backtracks,
                })
            }
            None => {
                // Rejected at the hint: shrink further, exactly like the
                // plain search continuing past `hint` backtracks.
                while backtracks + 1 < self.config.max_backtracks {
                    backtracks += 1;
                    step *= self.config.shrink;
                    if let Some(value) = attempt(step, trial) {
                        return Ok(LineSearchStep {
                            step,
                            value,
                            backtracks,
                        });
                    }
                }
                Err(OptError::DidNotConverge {
                    iterations: self.config.max_backtracks,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::central_gradient;

    #[test]
    fn finds_decrease_on_quadratic() {
        let f = |x: &[f64]| x[0] * x[0];
        let x = [3.0];
        let g = central_gradient(&f, &x, 1e-6);
        let d = [-g[0]];
        let ls = ArmijoLineSearch::default();
        let out = ls.search(&f, &x, f(&x), &g, &d, |_| true).unwrap();
        assert!(out.value < f(&x));
        assert!(out.step > 0.0);
    }

    #[test]
    fn respects_feasibility_predicate() {
        let f = |x: &[f64]| x[0];
        let x = [1.0];
        let g = [1.0];
        let d = [-1.0];
        let ls = ArmijoLineSearch::default();
        // Only points with x >= 0.9 are feasible; full step to 0.0 must be
        // rejected and the search must back off.
        let out = ls.search(&f, &x, 1.0, &g, &d, |p| p[0] >= 0.9).unwrap();
        assert!(out.point[0] >= 0.9);
        assert!(out.value < 1.0);
    }

    #[test]
    fn ascent_direction_fails() {
        let f = |x: &[f64]| x[0] * x[0];
        let x = [1.0];
        let g = [2.0];
        let d = [1.0]; // ascent direction
        let ls = ArmijoLineSearch::default();
        assert!(matches!(
            ls.search(&f, &x, 1.0, &g, &d, |_| true),
            Err(OptError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn hinted_search_matches_plain_search_for_every_hint() {
        // Smooth strictly convex objective: acceptance is monotone in the
        // backtrack count, so the hinted search must reproduce the plain
        // search bit-for-bit no matter how wrong the hint is.
        let f = |x: &[f64]| (x[0] - 0.3).powi(2) + 50.0 * (x[1] + 0.2).powi(2);
        let x = [2.0, 1.0];
        let g = central_gradient(&f, &x, 1e-6);
        let d: Vec<f64> = g.iter().map(|v| -v).collect();
        let ls = ArmijoLineSearch::default();
        let mut plain_trial = Vec::new();
        let plain = ls
            .search_into(&f, &x, f(&x), &g, &d, |_| true, &mut plain_trial)
            .unwrap();
        for hint in 0..ls.config().max_backtracks + 5 {
            let mut trial = Vec::new();
            let hinted = ls
                .search_into_hinted(&f, &x, f(&x), &g, &d, |_| true, &mut trial, hint)
                .unwrap();
            assert_eq!(hinted.step.to_bits(), plain.step.to_bits(), "hint {hint}");
            assert_eq!(hinted.value.to_bits(), plain.value.to_bits(), "hint {hint}");
            assert_eq!(hinted.backtracks, plain.backtracks, "hint {hint}");
            assert_eq!(
                trial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                plain_trial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "hint {hint}: accepted point differs"
            );
        }
    }

    #[test]
    fn hinted_search_respects_feasibility_predicate() {
        let f = |x: &[f64]| x[0];
        let x = [1.0];
        let g = [1.0];
        let d = [-1.0];
        let ls = ArmijoLineSearch::default();
        let mut plain_trial = Vec::new();
        let plain = ls
            .search_into(
                &f,
                &x,
                1.0,
                &g,
                &d,
                |p: &[f64]| p[0] >= 0.9,
                &mut plain_trial,
            )
            .unwrap();
        for hint in [0, 1, plain.backtracks, plain.backtracks + 7] {
            let mut trial = Vec::new();
            let hinted = ls
                .search_into_hinted(
                    &f,
                    &x,
                    1.0,
                    &g,
                    &d,
                    |p: &[f64]| p[0] >= 0.9,
                    &mut trial,
                    hint,
                )
                .unwrap();
            assert_eq!(hinted.step.to_bits(), plain.step.to_bits(), "hint {hint}");
            assert!(trial[0] >= 0.9);
        }
    }

    #[test]
    fn hinted_search_rejects_ascent_directions() {
        let f = |x: &[f64]| x[0] * x[0];
        let ls = ArmijoLineSearch::default();
        let mut trial = Vec::new();
        assert!(matches!(
            ls.search_into_hinted(&f, &[1.0], 1.0, &[2.0], &[1.0], |_| true, &mut trial, 3),
            Err(OptError::DidNotConverge { .. })
        ));
    }

    #[test]
    fn invalid_config_is_rejected() {
        let cfg = LineSearchConfig {
            shrink: 1.5,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = LineSearchConfig {
            initial_step: 0.0,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = LineSearchConfig {
            c1: 0.0,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = LineSearchConfig {
            max_backtracks: 0,
            ..LineSearchConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
