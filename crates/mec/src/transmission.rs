//! Uplink transmission delay and energy (Eqs. 11–12 of the paper).

use crate::error::{MecError, MecResult};
use crate::shannon::uplink_rate;

/// Delay and energy of one client's uplink transmission.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TransmissionCost {
    /// Achieved uplink rate in bit/s.
    pub rate_bps: f64,
    /// Transmission delay `T^(tr) = d^(tr) / r` in seconds (Eq. 11).
    pub delay_s: f64,
    /// Transmission energy `E^(tr) = p T^(tr)` in joules (Eq. 12).
    pub energy_j: f64,
}

/// Computes the transmission cost of sending `data_bits` encrypted bits at
/// transmit power `power_w` over bandwidth `bandwidth_hz` with channel gain
/// `gain` and noise PSD `noise_psd`.
///
/// # Errors
/// * [`MecError::InvalidParameter`] if any physical parameter is invalid or
///   `data_bits` is non-positive.
pub fn transmission_cost(
    data_bits: f64,
    bandwidth_hz: f64,
    power_w: f64,
    gain: f64,
    noise_psd: f64,
) -> MecResult<TransmissionCost> {
    if !(data_bits > 0.0 && data_bits.is_finite()) {
        return Err(MecError::InvalidParameter {
            reason: format!("data size must be positive, got {data_bits}"),
        });
    }
    let rate_bps = uplink_rate(bandwidth_hz, power_w, gain, noise_psd)?;
    let delay_s = data_bits / rate_bps;
    Ok(TransmissionCost {
        rate_bps,
        delay_s,
        energy_j: power_w * delay_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const N0: f64 = 1e-20;

    #[test]
    fn delay_and_energy_are_consistent() {
        let cost = transmission_cost(3e9, 1.67e6, 0.2, 2e-12, N0).unwrap();
        assert!((cost.delay_s - 3e9 / cost.rate_bps).abs() < 1e-9);
        assert!((cost.energy_j - 0.2 * cost.delay_s).abs() < 1e-9);
        assert!(cost.rate_bps > 0.0);
    }

    #[test]
    fn invalid_data_size_rejected() {
        assert!(transmission_cost(0.0, 1e6, 0.1, 1e-12, N0).is_err());
        assert!(transmission_cost(-3.0, 1e6, 0.1, 1e-12, N0).is_err());
        assert!(transmission_cost(1e9, 0.0, 0.1, 1e-12, N0).is_err());
    }

    proptest! {
        #[test]
        fn more_power_never_increases_delay(
            p1 in 0.01f64..0.5, p2 in 0.01f64..0.5, b in 1e5f64..1e7,
        ) {
            let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
            let c_lo = transmission_cost(1e9, b, lo, 1e-12, N0).unwrap();
            let c_hi = transmission_cost(1e9, b, hi, 1e-12, N0).unwrap();
            prop_assert!(c_hi.delay_s <= c_lo.delay_s + 1e-9);
        }

        #[test]
        fn energy_scales_linearly_with_data(
            scale in 1.1f64..5.0, b in 1e5f64..1e7, p in 0.01f64..0.5,
        ) {
            let base = transmission_cost(1e9, b, p, 1e-12, N0).unwrap();
            let scaled = transmission_cost(scale * 1e9, b, p, 1e-12, N0).unwrap();
            prop_assert!((scaled.energy_j / base.energy_j - scale).abs() < 1e-9);
        }
    }
}
