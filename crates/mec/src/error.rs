//! Error type for the MEC substrate.

use std::fmt;

/// Convenient alias for `Result<T, MecError>`.
pub type MecResult<T> = Result<T, MecError>;

/// Errors produced by the MEC substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MecError {
    /// A physical parameter (power, bandwidth, frequency, distance, …) is
    /// non-positive or non-finite where a positive value is required.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// Vectors describing per-client quantities have inconsistent lengths.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A resource allocation exceeds its budget (bandwidth or server CPU).
    BudgetExceeded {
        /// Description of the violated budget.
        reason: String,
    },
}

impl fmt::Display for MecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MecError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            MecError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            MecError::BudgetExceeded { reason } => write!(f, "budget exceeded: {reason}"),
        }
    }
}

impl std::error::Error for MecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MecError::DimensionMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains('6'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MecError>();
    }
}
