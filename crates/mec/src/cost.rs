//! System-level delay and energy aggregates (Eqs. 15–16 of the paper).

use crate::error::{MecError, MecResult};

/// The per-client cost breakdown across the three phases.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ClientCostBreakdown {
    /// Client-side encryption delay in seconds.
    pub encryption_delay_s: f64,
    /// Client-side encryption energy in joules.
    pub encryption_energy_j: f64,
    /// Uplink transmission delay in seconds.
    pub transmission_delay_s: f64,
    /// Uplink transmission energy in joules.
    pub transmission_energy_j: f64,
    /// Server computation delay in seconds.
    pub computation_delay_s: f64,
    /// Server computation energy in joules.
    pub computation_energy_j: f64,
}

impl ClientCostBreakdown {
    /// The end-to-end delay of this client,
    /// `T^(enc) + T^(tr) + T^(cmp)`.
    pub fn total_delay_s(&self) -> f64 {
        self.encryption_delay_s + self.transmission_delay_s + self.computation_delay_s
    }

    /// The total energy attributed to this client,
    /// `E^(enc) + E^(tr) + E^(cmp)`.
    pub fn total_energy_j(&self) -> f64 {
        self.encryption_energy_j + self.transmission_energy_j + self.computation_energy_j
    }
}

/// System-level aggregates over all clients.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemCost {
    /// Per-client breakdowns, in client order.
    pub per_client: Vec<ClientCostBreakdown>,
    /// System delay `T_total = max_n (T^(enc) + T^(tr) + T^(cmp))` (Eq. 15).
    pub total_delay_s: f64,
    /// System energy `E_total = sum_n (E^(enc) + E^(tr) + E^(cmp))` (Eq. 16).
    pub total_energy_j: f64,
}

impl SystemCost {
    /// Aggregates per-client breakdowns into the system cost.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] when `per_client` is empty.
    pub fn aggregate(per_client: Vec<ClientCostBreakdown>) -> MecResult<Self> {
        if per_client.is_empty() {
            return Err(MecError::InvalidParameter {
                reason: "system cost requires at least one client".to_string(),
            });
        }
        let total_delay_s = per_client
            .iter()
            .map(ClientCostBreakdown::total_delay_s)
            .fold(f64::NEG_INFINITY, f64::max);
        let total_energy_j = per_client
            .iter()
            .map(ClientCostBreakdown::total_energy_j)
            .sum();
        Ok(Self {
            per_client,
            total_delay_s,
            total_energy_j,
        })
    }

    /// Index of the client that attains the system delay (the bottleneck).
    pub fn bottleneck_client(&self) -> usize {
        self.per_client
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.total_delay_s()
                    .partial_cmp(&b.total_delay_s())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(delay: f64, energy: f64) -> ClientCostBreakdown {
        ClientCostBreakdown {
            encryption_delay_s: delay * 0.1,
            encryption_energy_j: energy * 0.2,
            transmission_delay_s: delay * 0.3,
            transmission_energy_j: energy * 0.3,
            computation_delay_s: delay * 0.6,
            computation_energy_j: energy * 0.5,
        }
    }

    #[test]
    fn per_client_totals() {
        let b = breakdown(10.0, 100.0);
        assert!((b.total_delay_s() - 10.0).abs() < 1e-12);
        assert!((b.total_energy_j() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn system_delay_is_max_and_energy_is_sum() {
        let cost = SystemCost::aggregate(vec![
            breakdown(5.0, 10.0),
            breakdown(9.0, 20.0),
            breakdown(2.0, 5.0),
        ])
        .unwrap();
        assert!((cost.total_delay_s - 9.0).abs() < 1e-12);
        assert!((cost.total_energy_j - 35.0).abs() < 1e-12);
        assert_eq!(cost.bottleneck_client(), 1);
    }

    #[test]
    fn empty_aggregation_is_rejected() {
        assert!(SystemCost::aggregate(vec![]).is_err());
    }
}
