//! Wireless channel model: large-scale path loss plus Rayleigh fading.
//!
//! The paper uses the 3GPP-style urban model `PL(dB) = 128.1 + 37.6 log10(d)`
//! with `d` in kilometres for the large-scale fading between a client node and
//! the server, multiplied by a Rayleigh small-scale fading coefficient. The
//! channel attenuation `g_n` that enters the Shannon rate (Eq. 10) is the
//! resulting linear power gain.

use rand::Rng;

use crate::error::{MecError, MecResult};

/// Large-scale path loss in dB at distance `distance_m` metres,
/// `128.1 + 37.6 log10(d_km)`.
///
/// # Errors
/// Returns [`MecError::InvalidParameter`] for a non-positive distance.
pub fn path_loss_db(distance_m: f64) -> MecResult<f64> {
    if !(distance_m > 0.0 && distance_m.is_finite()) {
        return Err(MecError::InvalidParameter {
            reason: format!("distance must be positive, got {distance_m}"),
        });
    }
    Ok(128.1 + 37.6 * (distance_m / 1000.0).log10())
}

/// Converts a loss in dB into a linear power gain `10^(-loss/10)`.
pub fn db_loss_to_linear_gain(loss_db: f64) -> f64 {
    10f64.powf(-loss_db / 10.0)
}

/// Samples a Rayleigh-fading power gain: the squared magnitude of a unit
/// complex Gaussian, i.e. an exponential random variable with unit mean.
pub fn rayleigh_gain<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Inverse-CDF sampling of Exp(1); clamp the uniform away from 0 so the
    // logarithm stays finite.
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -u.ln()
}

/// The composite channel model used by the scenario generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChannelModel {
    /// Noise power spectral density `N0` in W/Hz (the usual thermal-noise
    /// figure of −174 dBm/Hz by default).
    pub noise_psd: f64,
}

impl Default for ChannelModel {
    fn default() -> Self {
        Self {
            // −174 dBm/Hz = 10^(−17.4) mW/Hz = 10^(−20.4) W/Hz.
            noise_psd: 10f64.powf(-20.4),
        }
    }
}

impl ChannelModel {
    /// Creates a channel model with an explicit noise PSD.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] for a non-positive PSD.
    pub fn new(noise_psd: f64) -> MecResult<Self> {
        if !(noise_psd > 0.0 && noise_psd.is_finite()) {
            return Err(MecError::InvalidParameter {
                reason: format!("noise PSD must be positive, got {noise_psd}"),
            });
        }
        Ok(Self { noise_psd })
    }

    /// Samples the composite channel power gain `g_n` for a client at
    /// `distance_m` metres: large-scale path loss times a Rayleigh fade.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] for a non-positive distance.
    pub fn sample_gain<R: Rng + ?Sized>(&self, distance_m: f64, rng: &mut R) -> MecResult<f64> {
        let loss = path_loss_db(distance_m)?;
        Ok(db_loss_to_linear_gain(loss) * rayleigh_gain(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn path_loss_matches_reference_points() {
        // At 1 km the model gives exactly 128.1 dB.
        assert!((path_loss_db(1000.0).unwrap() - 128.1).abs() < 1e-12);
        // At 100 m: 128.1 - 37.6 = 90.5 dB.
        assert!((path_loss_db(100.0).unwrap() - 90.5).abs() < 1e-9);
        assert!(path_loss_db(0.0).is_err());
        assert!(path_loss_db(-5.0).is_err());
    }

    #[test]
    fn db_conversion_round_trip() {
        let gain = db_loss_to_linear_gain(90.5);
        assert!((gain - 10f64.powf(-9.05)).abs() < 1e-15);
    }

    #[test]
    fn rayleigh_gain_has_unit_mean() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| rayleigh_gain(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn channel_model_validation_and_default() {
        assert!(ChannelModel::new(0.0).is_err());
        let default = ChannelModel::default();
        assert!((default.noise_psd - 10f64.powf(-20.4)).abs() < 1e-25);
    }

    #[test]
    fn sampled_gain_is_positive_and_distance_decreasing_on_average() {
        let model = ChannelModel::default();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 20_000;
        let avg = |d: f64, rng: &mut rand::rngs::StdRng| -> f64 {
            (0..n)
                .map(|_| model.sample_gain(d, rng).unwrap())
                .sum::<f64>()
                / n as f64
        };
        let near = avg(100.0, &mut rng);
        let far = avg(900.0, &mut rng);
        assert!(near > far);
        assert!(far > 0.0);
    }

    proptest! {
        #[test]
        fn path_loss_is_monotone_in_distance(a in 10.0f64..2000.0, b in 10.0f64..2000.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(path_loss_db(lo).unwrap() <= path_loss_db(hi).unwrap());
        }
    }
}
