//! FDMA bandwidth-budget accounting (constraint 17f of the paper).

use crate::error::{MecError, MecResult};

/// A bandwidth budget shared by all clients under FDMA.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandwidthBudget {
    total_hz: f64,
}

impl BandwidthBudget {
    /// Creates a budget.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] for a non-positive budget.
    pub fn new(total_hz: f64) -> MecResult<Self> {
        if !(total_hz > 0.0 && total_hz.is_finite()) {
            return Err(MecError::InvalidParameter {
                reason: format!("total bandwidth must be positive, got {total_hz}"),
            });
        }
        Ok(Self { total_hz })
    }

    /// The total bandwidth in Hz.
    pub fn total_hz(self) -> f64 {
        self.total_hz
    }

    /// Splits the budget equally among `n` clients (the AA baseline and the
    /// default starting point of the optimizer).
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] when `n` is zero.
    pub fn equal_split(self, n: usize) -> MecResult<Vec<f64>> {
        if n == 0 {
            return Err(MecError::InvalidParameter {
                reason: "cannot split a bandwidth budget among zero clients".to_string(),
            });
        }
        Ok(vec![self.total_hz / n as f64; n])
    }

    /// Checks that an allocation respects the budget (constraint 17f) and is
    /// elementwise positive.
    ///
    /// # Errors
    /// * [`MecError::InvalidParameter`] if some allocation is non-positive.
    /// * [`MecError::BudgetExceeded`] if the allocations sum above the budget
    ///   (with a small relative tolerance for floating-point noise).
    pub fn check(self, allocation: &[f64]) -> MecResult<()> {
        for (n, b) in allocation.iter().enumerate() {
            if !(b.is_finite() && *b > 0.0) {
                return Err(MecError::InvalidParameter {
                    reason: format!("bandwidth of client {} must be positive, got {}", n + 1, b),
                });
            }
        }
        let sum: f64 = allocation.iter().sum();
        if sum > self.total_hz * (1.0 + 1e-9) {
            return Err(MecError::BudgetExceeded {
                reason: format!(
                    "allocated {sum} Hz exceeds the budget of {} Hz",
                    self.total_hz
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_validation_and_split() {
        assert!(BandwidthBudget::new(0.0).is_err());
        let budget = BandwidthBudget::new(10e6).unwrap();
        assert_eq!(budget.total_hz(), 10e6);
        let split = budget.equal_split(4).unwrap();
        assert_eq!(split, vec![2.5e6; 4]);
        assert!(budget.equal_split(0).is_err());
    }

    #[test]
    fn budget_check() {
        let budget = BandwidthBudget::new(10e6).unwrap();
        assert!(budget.check(&[5e6, 4.9e6]).is_ok());
        assert!(matches!(
            budget.check(&[6e6, 6e6]),
            Err(MecError::BudgetExceeded { .. })
        ));
        assert!(budget.check(&[5e6, 0.0]).is_err());
        // The equal split is always feasible.
        assert!(budget.check(&budget.equal_split(6).unwrap()).is_ok());
    }
}
