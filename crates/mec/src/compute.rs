//! Client-side encryption and server-side computation costs
//! (Eqs. 7–8 and 13–14 of the paper).

use quhe_crypto::cost_model::{eval_cycles_per_sample, server_cycles_per_sample};

use crate::error::{MecError, MecResult};

/// Parameters of one client's encryption task.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClientComputeParams {
    /// CPU cycles `f^(se)` needed for the symmetric encryption plus the HE
    /// encryption of the symmetric key.
    pub encryption_cycles: f64,
    /// Effective switched capacitance `kappa^(c)` of the client.
    pub switched_capacitance: f64,
}

/// Delay and energy of one client's encryption phase.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClientComputeCost {
    /// Encryption delay `T^(enc) = f^(se) / f^(c)` in seconds (Eq. 7).
    pub delay_s: f64,
    /// Encryption energy `E^(enc) = kappa^(c) f^(se) (f^(c))^2` in joules
    /// (Eq. 8).
    pub energy_j: f64,
}

/// Computes the encryption delay and energy of a client running at CPU
/// frequency `client_frequency_hz`.
///
/// # Errors
/// Returns [`MecError::InvalidParameter`] for non-positive cycles, frequency
/// or capacitance.
pub fn client_encryption_cost(
    params: &ClientComputeParams,
    client_frequency_hz: f64,
) -> MecResult<ClientComputeCost> {
    for (name, value) in [
        ("encryption cycles", params.encryption_cycles),
        ("switched capacitance", params.switched_capacitance),
        ("client frequency", client_frequency_hz),
    ] {
        if !(value > 0.0 && value.is_finite()) {
            return Err(MecError::InvalidParameter {
                reason: format!("{name} must be positive, got {value}"),
            });
        }
    }
    Ok(ClientComputeCost {
        delay_s: params.encryption_cycles / client_frequency_hz,
        energy_j: params.switched_capacitance
            * params.encryption_cycles
            * client_frequency_hz
            * client_frequency_hz,
    })
}

/// Parameters of one client's server-side workload.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerComputeParams {
    /// Number of tokens `d^(cmp)` submitted by the client.
    pub tokens: f64,
    /// Tokens per sample `rho`.
    pub tokens_per_sample: f64,
    /// Effective switched capacitance `kappa^(s)` of the server.
    pub switched_capacitance: f64,
}

/// Delay and energy of the server computation for one client.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServerComputeCost {
    /// Total CPU cycles charged for this client's workload:
    /// `(f^(cmp)(lambda) + f^(eval)(lambda)) d^(cmp) / rho`.
    pub total_cycles: f64,
    /// Computation delay `T^(cmp)` in seconds (Eq. 13).
    pub delay_s: f64,
    /// Computation energy `E^(cmp)` in joules (Eq. 14).
    pub energy_j: f64,
}

/// Computes the server-side computation cost for a client whose CKKS degree
/// is `lambda` and that was allocated `server_frequency_hz` of server CPU.
///
/// # Errors
/// Returns [`MecError::InvalidParameter`] for non-positive inputs or a
/// `lambda` small enough to make the fitted cycle model negative (the model
/// of Eq. 31 is only valid on the paper's candidate range).
pub fn server_computation_cost(
    params: &ServerComputeParams,
    lambda: f64,
    server_frequency_hz: f64,
) -> MecResult<ServerComputeCost> {
    for (name, value) in [
        ("tokens", params.tokens),
        ("tokens per sample", params.tokens_per_sample),
        ("switched capacitance", params.switched_capacitance),
        ("server frequency", server_frequency_hz),
        ("lambda", lambda),
    ] {
        if !(value > 0.0 && value.is_finite()) {
            return Err(MecError::InvalidParameter {
                reason: format!("{name} must be positive, got {value}"),
            });
        }
    }
    let cycles_per_sample = eval_cycles_per_sample(lambda) + server_cycles_per_sample(lambda);
    if cycles_per_sample <= 0.0 {
        return Err(MecError::InvalidParameter {
            reason: format!(
                "the fitted cycle model is non-positive at lambda = {lambda}; it is only valid for lambda >= 2^15"
            ),
        });
    }
    let total_cycles = cycles_per_sample * params.tokens / params.tokens_per_sample;
    Ok(ServerComputeCost {
        total_cycles,
        delay_s: total_cycles / server_frequency_hz,
        energy_j: params.switched_capacitance
            * total_cycles
            * server_frequency_hz
            * server_frequency_hz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn client_params() -> ClientComputeParams {
        ClientComputeParams {
            encryption_cycles: 1e6,
            switched_capacitance: 1e-28,
        }
    }

    fn server_params() -> ServerComputeParams {
        ServerComputeParams {
            tokens: 160.0,
            tokens_per_sample: 10.0,
            switched_capacitance: 1e-28,
        }
    }

    #[test]
    fn client_cost_matches_equations_7_and_8() {
        let cost = client_encryption_cost(&client_params(), 3e9).unwrap();
        assert!((cost.delay_s - 1e6 / 3e9).abs() < 1e-18);
        assert!((cost.energy_j - 1e-28 * 1e6 * 9e18).abs() < 1e-9);
    }

    #[test]
    fn server_cost_matches_equations_13_and_14() {
        let lambda = (1u64 << 15) as f64;
        let cost = server_computation_cost(&server_params(), lambda, 3.3e9).unwrap();
        let cycles_per_sample = quhe_crypto::cost_model::total_server_cycles_per_sample(lambda);
        let expected_cycles = cycles_per_sample * 160.0 / 10.0;
        assert!((cost.total_cycles - expected_cycles).abs() / expected_cycles < 1e-12);
        assert!((cost.delay_s - expected_cycles / 3.3e9).abs() < 1e-6);
        assert!(
            (cost.energy_j - 1e-28 * expected_cycles * 3.3e9 * 3.3e9).abs() / cost.energy_j < 1e-9
        );
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(client_encryption_cost(&client_params(), 0.0).is_err());
        let bad = ClientComputeParams {
            encryption_cycles: -1.0,
            switched_capacitance: 1e-28,
        };
        assert!(client_encryption_cost(&bad, 1e9).is_err());
        assert!(server_computation_cost(&server_params(), 0.0, 1e9).is_err());
        assert!(server_computation_cost(&server_params(), (1u64 << 15) as f64, -1.0).is_err());
        // lambda = 1024 makes Eq. 31 negative: rejected.
        assert!(server_computation_cost(&server_params(), 1024.0, 1e9).is_err());
    }

    #[test]
    fn higher_lambda_costs_more_server_cycles() {
        let l1 = server_computation_cost(&server_params(), (1u64 << 15) as f64, 3e9).unwrap();
        let l2 = server_computation_cost(&server_params(), (1u64 << 16) as f64, 3e9).unwrap();
        let l3 = server_computation_cost(&server_params(), (1u64 << 17) as f64, 3e9).unwrap();
        assert!(l1.total_cycles < l2.total_cycles && l2.total_cycles < l3.total_cycles);
    }

    proptest! {
        #[test]
        fn client_delay_energy_tradeoff(f1 in 5e8f64..3e9, f2 in 5e8f64..3e9) {
            // Raising the client frequency lowers delay but raises energy.
            let (lo, hi) = if f1 < f2 { (f1, f2) } else { (f2, f1) };
            let c_lo = client_encryption_cost(&client_params(), lo).unwrap();
            let c_hi = client_encryption_cost(&client_params(), hi).unwrap();
            prop_assert!(c_hi.delay_s <= c_lo.delay_s);
            prop_assert!(c_hi.energy_j >= c_lo.energy_j);
        }

        #[test]
        fn server_delay_energy_tradeoff(f1 in 1e9f64..2e10, f2 in 1e9f64..2e10) {
            let lambda = (1u64 << 16) as f64;
            let (lo, hi) = if f1 < f2 { (f1, f2) } else { (f2, f1) };
            let c_lo = server_computation_cost(&server_params(), lambda, lo).unwrap();
            let c_hi = server_computation_cost(&server_params(), lambda, hi).unwrap();
            prop_assert!(c_hi.delay_s <= c_lo.delay_s);
            prop_assert!(c_hi.energy_j >= c_lo.energy_j);
        }
    }
}
