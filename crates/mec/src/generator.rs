//! Scenario generators and the named scenario registry.
//!
//! The paper evaluates a single world — six clients in a 1 km cell running
//! the NLP workload of Section VI-A — but the reproduction targets many more:
//! dense cells, heterogeneous device fleets, far-edge deployments, bursty
//! workloads. This module makes worlds first-class: a [`ScenarioGenerator`]
//! turns a seed into a complete [`MecScenario`] deterministically, and a
//! [`ScenarioRegistry`] holds generators by name so experiment harnesses can
//! iterate "every known scenario" without hard-coding the list.
//!
//! All generators are seed-deterministic (same seed, same scenario — byte for
//! byte) and every produced scenario passes [`MecScenario::new`] validation.
//! Custom generators plug in through [`ScenarioRegistry::register`].

use rand::Rng;
use rand::SeedableRng;

use crate::channel::ChannelModel;
use crate::error::{MecError, MecResult};
use crate::scenario::{ClientProfile, MecScenario};

/// A named, seed-deterministic source of MEC scenarios.
///
/// Implementations must be pure functions of `(self, seed)`: calling
/// [`ScenarioGenerator::generate`] twice with the same seed must produce
/// identical scenarios, so that experiments are reproducible and batch grids
/// can be re-run incrementally.
pub trait ScenarioGenerator: Send + Sync {
    /// Registry key, e.g. `"dense_cell"`.
    fn name(&self) -> &str;

    /// One-line human description of the world this generator models.
    fn description(&self) -> &str;

    /// Number of clients in the generated scenarios.
    fn num_clients(&self) -> usize;

    /// Generates the scenario for `seed`.
    fn generate(&self, seed: u64) -> MecScenario;
}

/// Samples an area-uniform position in an annulus and the composite channel
/// gain at that distance — the shared placement kernel of the generators.
///
/// # Panics
/// Panics with a descriptive message when the annulus is empty
/// (`0 < min_radius_m < max_radius_m` is required); generator knobs are
/// plain struct fields, so this is the single validation point for them.
fn place_client<R: Rng + ?Sized>(
    rng: &mut R,
    channel: &ChannelModel,
    min_radius_m: f64,
    max_radius_m: f64,
) -> (f64, f64) {
    assert!(
        min_radius_m > 0.0 && min_radius_m < max_radius_m,
        "client placement requires 0 < min radius < max radius, got {min_radius_m}..{max_radius_m} m"
    );
    let min_sq = (min_radius_m / max_radius_m).powi(2);
    let radius = max_radius_m * rng.gen_range(min_sq..1.0f64).sqrt();
    let gain = channel
        .sample_gain(radius, rng)
        .expect("annulus radii are positive");
    (radius, gain)
}

/// The paper's Section VI-A world: six clients uniform in a 1 km cell with
/// the NLP workload (equivalent to [`MecScenario::paper_default`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PaperDefault;

impl ScenarioGenerator for PaperDefault {
    fn name(&self) -> &str {
        "paper_default"
    }

    fn description(&self) -> &str {
        "the paper's Section VI-A world: 6 clients uniform in a 1 km cell, NLP workload"
    }

    fn num_clients(&self) -> usize {
        6
    }

    fn generate(&self, seed: u64) -> MecScenario {
        MecScenario::paper_default(seed)
    }
}

/// A dense small cell: many clients packed into a tight radius, with the
/// shared budgets scaled up so the per-client share stays workable.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DenseCell {
    /// Number of clients in the cell (the paper uses 6; dense studies use
    /// 32–128).
    pub num_clients: usize,
    /// Cell radius in metres.
    pub cell_radius_m: f64,
}

impl Default for DenseCell {
    fn default() -> Self {
        Self {
            num_clients: 32,
            cell_radius_m: 500.0,
        }
    }
}

impl ScenarioGenerator for DenseCell {
    fn name(&self) -> &str {
        "dense_cell"
    }

    fn description(&self) -> &str {
        "dense small cell: 32+ clients in a 500 m radius, budgets scaled with the population"
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn generate(&self, seed: u64) -> MecScenario {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let channel = ChannelModel::default();
        // The dead-zone floor shrinks with the cell so small custom radii
        // still describe a non-empty annulus.
        let min_radius = 25.0_f64.min(0.05 * self.cell_radius_m);
        let clients = (0..self.num_clients)
            .map(|i| {
                let (radius, gain) =
                    place_client(&mut rng, &channel, min_radius, self.cell_radius_m);
                ClientProfile {
                    distance_m: radius,
                    channel_gain: gain,
                    upload_bits: 3e9,
                    tokens: 160.0,
                    tokens_per_sample: 10.0,
                    encryption_cycles: 1e6,
                    client_capacitance: 1e-28,
                    max_client_frequency_hz: 3e9,
                    max_power_w: 0.2,
                    privacy_weight: MecScenario::PAPER_PRIVACY_WEIGHTS
                        [i % MecScenario::PAPER_PRIVACY_WEIGHTS.len()],
                }
            })
            .collect();
        // Budgets grow with the population relative to the paper's six-client
        // cell, so the per-client share of bandwidth/server CPU is preserved
        // and the scenario stresses allocation, not starvation.
        let scale = self.num_clients as f64 / 6.0;
        MecScenario::new(
            clients,
            10e6 * scale,
            20e9 * scale,
            1e-28,
            channel.noise_psd,
        )
        .expect("dense-cell parameters are positive")
    }
}

/// A mixed fleet of device classes — phones, laptops and edge gateways — with
/// different CPU budgets, power amplifiers, switched capacitances and privacy
/// weights.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HeterogeneousDevices {
    /// Number of clients (devices are assigned to classes seed-randomly).
    pub num_clients: usize,
}

impl Default for HeterogeneousDevices {
    fn default() -> Self {
        Self { num_clients: 12 }
    }
}

/// One device class of [`HeterogeneousDevices`]:
/// `(max CPU Hz, max power W, capacitance, privacy weight)`.
const DEVICE_CLASSES: [(f64, f64, f64, f64); 3] = [
    (1.5e9, 0.1, 3e-28, 0.3),  // phone: weak CPU, privacy-sensitive
    (3.0e9, 0.2, 1e-28, 0.1),  // laptop: the paper's client
    (4.5e9, 0.4, 5e-29, 0.05), // edge gateway: strong CPU, aggregated data
];

impl ScenarioGenerator for HeterogeneousDevices {
    fn name(&self) -> &str {
        "heterogeneous_devices"
    }

    fn description(&self) -> &str {
        "mixed device fleet: phone / laptop / edge-gateway classes with distinct CPU, power and privacy weights"
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn generate(&self, seed: u64) -> MecScenario {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let channel = ChannelModel::default();
        let clients = (0..self.num_clients)
            .map(|_| {
                let (max_freq, max_power, capacitance, privacy) =
                    DEVICE_CLASSES[rng.gen_range(0..DEVICE_CLASSES.len())];
                let (radius, gain) = place_client(&mut rng, &channel, 50.0, 1000.0);
                ClientProfile {
                    distance_m: radius,
                    channel_gain: gain,
                    upload_bits: 3e9,
                    tokens: 160.0,
                    tokens_per_sample: 10.0,
                    encryption_cycles: 1e6,
                    client_capacitance: capacitance,
                    max_client_frequency_hz: max_freq,
                    max_power_w: max_power,
                    privacy_weight: privacy,
                }
            })
            .collect();
        let scale = self.num_clients as f64 / 6.0;
        MecScenario::new(
            clients,
            10e6 * scale,
            20e9 * scale,
            1e-28,
            channel.noise_psd,
        )
        .expect("device-class parameters are positive")
    }
}

/// Far-edge clients: long distances (rural/industrial deployments), weak
/// channels, and a stronger power amplifier to partially compensate.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FarEdge {
    /// Number of clients.
    pub num_clients: usize,
    /// Minimum client distance in metres.
    pub min_distance_m: f64,
    /// Maximum client distance in metres.
    pub max_distance_m: f64,
}

impl Default for FarEdge {
    fn default() -> Self {
        Self {
            num_clients: 8,
            min_distance_m: 2_000.0,
            max_distance_m: 5_000.0,
        }
    }
}

impl ScenarioGenerator for FarEdge {
    fn name(&self) -> &str {
        "far_edge"
    }

    fn description(&self) -> &str {
        "far-edge deployment: 2–5 km clients with weak channels and 0.5 W amplifiers"
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn generate(&self, seed: u64) -> MecScenario {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let channel = ChannelModel::default();
        let clients = (0..self.num_clients)
            .map(|i| {
                let (radius, gain) =
                    place_client(&mut rng, &channel, self.min_distance_m, self.max_distance_m);
                ClientProfile {
                    distance_m: radius,
                    channel_gain: gain,
                    upload_bits: 3e9,
                    tokens: 160.0,
                    tokens_per_sample: 10.0,
                    encryption_cycles: 1e6,
                    client_capacitance: 1e-28,
                    max_client_frequency_hz: 3e9,
                    max_power_w: 0.5,
                    privacy_weight: MecScenario::PAPER_PRIVACY_WEIGHTS
                        [i % MecScenario::PAPER_PRIVACY_WEIGHTS.len()],
                }
            })
            .collect();
        let scale = self.num_clients as f64 / 6.0;
        MecScenario::new(
            clients,
            10e6 * scale,
            20e9 * scale,
            1e-28,
            channel.noise_psd,
        )
        .expect("far-edge parameters are positive")
    }
}

/// A bursty workload: upload sizes and token counts follow a heavy-tailed
/// (bounded Pareto) distribution, so a few clients carry most of the load.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BurstyWorkload {
    /// Number of clients.
    pub num_clients: usize,
    /// Pareto tail index; smaller means heavier tails (must be positive).
    pub tail_index: f64,
}

impl Default for BurstyWorkload {
    fn default() -> Self {
        Self {
            num_clients: 10,
            tail_index: 1.2,
        }
    }
}

impl BurstyWorkload {
    /// A bounded Pareto(`tail_index`) multiplier in `[1, cap]` via inverse-CDF
    /// sampling.
    fn heavy_tail<R: Rng + ?Sized>(&self, rng: &mut R, cap: f64) -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (1.0 / u.powf(1.0 / self.tail_index)).min(cap)
    }
}

impl ScenarioGenerator for BurstyWorkload {
    fn name(&self) -> &str {
        "bursty_workload"
    }

    fn description(&self) -> &str {
        "heavy-tailed workload: bounded-Pareto upload sizes and token counts (few clients carry most load)"
    }

    fn num_clients(&self) -> usize {
        self.num_clients
    }

    fn generate(&self, seed: u64) -> MecScenario {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let channel = ChannelModel::default();
        let clients = (0..self.num_clients)
            .map(|i| {
                let (radius, gain) = place_client(&mut rng, &channel, 50.0, 1000.0);
                let burst = self.heavy_tail(&mut rng, 20.0);
                // Tokens scale with the same burst so compute load follows the
                // upload load; tokens_per_sample stays at the paper's 10.
                ClientProfile {
                    distance_m: radius,
                    channel_gain: gain,
                    upload_bits: 1e9 * burst,
                    tokens: (40.0 * burst).round(),
                    tokens_per_sample: 10.0,
                    encryption_cycles: 1e6,
                    client_capacitance: 1e-28,
                    max_client_frequency_hz: 3e9,
                    max_power_w: 0.2,
                    privacy_weight: MecScenario::PAPER_PRIVACY_WEIGHTS
                        [i % MecScenario::PAPER_PRIVACY_WEIGHTS.len()],
                }
            })
            .collect();
        let scale = self.num_clients as f64 / 6.0;
        MecScenario::new(
            clients,
            10e6 * scale,
            20e9 * scale,
            1e-28,
            channel.noise_psd,
        )
        .expect("bursty-workload parameters are positive")
    }
}

/// A name-keyed collection of scenario generators.
///
/// The registry is an offline, in-process catalogue: it is built once
/// (typically via [`ScenarioRegistry::builtin`]), optionally extended with
/// custom generators, and then read concurrently by experiment harnesses
/// (`&ScenarioRegistry` is `Send + Sync`).
#[derive(Default)]
pub struct ScenarioRegistry {
    generators: Vec<Box<dyn ScenarioGenerator>>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The registry of built-in worlds: `paper_default`, `dense_cell`,
    /// `heterogeneous_devices`, `far_edge` and `bursty_workload`, each with
    /// its default knobs.
    pub fn builtin() -> Self {
        let mut registry = Self::new();
        for generator in [
            Box::new(PaperDefault) as Box<dyn ScenarioGenerator>,
            Box::new(DenseCell::default()),
            Box::new(HeterogeneousDevices::default()),
            Box::new(FarEdge::default()),
            Box::new(BurstyWorkload::default()),
        ] {
            registry
                .register(generator)
                .expect("built-in names are unique");
        }
        registry
    }

    /// Registers a generator under its [`ScenarioGenerator::name`].
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] if a generator with the same
    /// name is already registered (names are the lookup key, so shadowing
    /// would silently change experiment grids).
    pub fn register(&mut self, generator: Box<dyn ScenarioGenerator>) -> MecResult<()> {
        if self.get(generator.name()).is_some() {
            return Err(MecError::InvalidParameter {
                reason: format!(
                    "scenario generator '{}' is already registered",
                    generator.name()
                ),
            });
        }
        self.generators.push(generator);
        Ok(())
    }

    /// Looks up a generator by name.
    pub fn get(&self, name: &str) -> Option<&dyn ScenarioGenerator> {
        self.generators
            .iter()
            .find(|g| g.name() == name)
            .map(Box::as_ref)
    }

    /// The registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.generators.iter().map(|g| g.name()).collect()
    }

    /// Iterates over the registered generators in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn ScenarioGenerator> {
        self.generators.iter().map(Box::as_ref)
    }

    /// Number of registered generators.
    pub fn len(&self) -> usize {
        self.generators.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }

    /// Generates the named scenario for `seed`.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] naming the unknown generator
    /// and listing the registered names.
    pub fn generate(&self, name: &str, seed: u64) -> MecResult<MecScenario> {
        match self.get(name) {
            Some(generator) => Ok(generator.generate(seed)),
            None => Err(MecError::InvalidParameter {
                reason: format!(
                    "unknown scenario '{name}'; registered: {}",
                    self.names().join(", ")
                ),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn builtin_generators() -> ScenarioRegistry {
        ScenarioRegistry::builtin()
    }

    #[test]
    fn builtin_registry_has_the_five_worlds() {
        let registry = builtin_generators();
        assert_eq!(
            registry.names(),
            vec![
                "paper_default",
                "dense_cell",
                "heterogeneous_devices",
                "far_edge",
                "bursty_workload"
            ]
        );
        assert_eq!(registry.len(), 5);
        assert!(!registry.is_empty());
    }

    #[test]
    fn every_builtin_generator_is_seed_deterministic() {
        let registry = builtin_generators();
        for name in registry.names() {
            let a = registry.generate(name, 42).unwrap();
            let b = registry.generate(name, 42).unwrap();
            assert_eq!(a, b, "{name} is not deterministic");
            let c = registry.generate(name, 43).unwrap();
            assert_ne!(a, c, "{name} ignores its seed");
        }
    }

    #[test]
    fn every_builtin_scenario_is_valid_and_sized_as_declared() {
        let registry = builtin_generators();
        for generator in registry.iter() {
            let scenario = generator.generate(1);
            assert_eq!(scenario.num_clients(), generator.num_clients());
            assert!(scenario.total_bandwidth_hz() > 0.0);
            assert!(scenario.total_server_frequency_hz() > 0.0);
            for client in scenario.clients() {
                assert!(client.channel_gain > 0.0, "{}", generator.name());
                assert!(client.upload_bits > 0.0);
                assert!(client.tokens > 0.0);
                assert!(client.max_power_w > 0.0);
                assert!(client.max_client_frequency_hz > 0.0);
                assert!(client.privacy_weight > 0.0);
            }
            assert!(!generator.description().is_empty());
        }
    }

    #[test]
    fn paper_default_generator_matches_the_legacy_constructor() {
        assert_eq!(PaperDefault.generate(9), MecScenario::paper_default(9));
    }

    #[test]
    fn dense_cell_packs_clients_into_the_small_cell() {
        let scenario = DenseCell::default().generate(5);
        assert_eq!(scenario.num_clients(), 32);
        for client in scenario.clients() {
            assert!(client.distance_m <= 500.0);
        }
        // Budgets scale with the population.
        assert!((scenario.total_bandwidth_hz() - 10e6 * 32.0 / 6.0).abs() < 1.0);
    }

    #[test]
    fn heterogeneous_fleet_mixes_device_classes() {
        let scenario = HeterogeneousDevices { num_clients: 24 }.generate(3);
        let mut frequencies: Vec<f64> = scenario
            .clients()
            .iter()
            .map(|c| c.max_client_frequency_hz)
            .collect();
        frequencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
        frequencies.dedup();
        assert!(
            frequencies.len() >= 2,
            "24 seed-random draws should hit at least two classes"
        );
    }

    #[test]
    fn far_edge_clients_are_distant_and_weak() {
        let far = FarEdge::default().generate(2);
        let near = MecScenario::paper_default(2);
        for client in far.clients() {
            assert!(client.distance_m >= 2_000.0 && client.distance_m <= 5_000.0);
        }
        let avg = |s: &MecScenario| {
            s.clients().iter().map(|c| c.channel_gain).sum::<f64>() / s.num_clients() as f64
        };
        assert!(avg(&far) < avg(&near));
    }

    #[test]
    fn bursty_workload_is_heavy_tailed() {
        let scenario = BurstyWorkload {
            num_clients: 64,
            ..BurstyWorkload::default()
        }
        .generate(11);
        let mut uploads: Vec<f64> = scenario.clients().iter().map(|c| c.upload_bits).collect();
        uploads.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = uploads.iter().sum();
        let top_quarter: f64 = uploads[..16].iter().sum();
        assert!(
            top_quarter > 0.5 * total,
            "top 25% of clients should carry >50% of load, got {:.0}%",
            100.0 * top_quarter / total
        );
    }

    #[test]
    #[should_panic(expected = "min radius < max radius")]
    fn empty_annulus_panics_with_a_clear_message() {
        FarEdge {
            num_clients: 2,
            min_distance_m: 5_000.0,
            max_distance_m: 2_000.0,
        }
        .generate(1);
    }

    #[test]
    fn dense_cell_supports_small_custom_radii() {
        let scenario = DenseCell {
            num_clients: 4,
            cell_radius_m: 60.0,
        }
        .generate(1);
        assert!(scenario.clients().iter().all(|c| c.distance_m <= 60.0));
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut registry = builtin_generators();
        let err = registry.register(Box::new(PaperDefault)).unwrap_err();
        assert!(err.to_string().contains("already registered"));
    }

    #[test]
    fn unknown_scenario_error_lists_the_catalogue() {
        let registry = builtin_generators();
        let err = registry.generate("marsnet", 1).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("marsnet") && msg.contains("dense_cell"),
            "{msg}"
        );
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScenarioRegistry>();
    }
}
