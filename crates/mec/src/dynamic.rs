//! Dynamic scenarios: discrete world events and seed-deterministic traces.
//!
//! The generators in [`crate::generator`] produce *static* worlds. Production
//! edge deployments are not static: clients join and leave the cell, wireless
//! channels drift, workloads burst, and applications tighten their latency
//! requirements. This module makes that evolution first-class:
//!
//! * [`ScenarioEvent`] — the atomic world changes (client join/leave,
//!   channel-gain drift, load burst, deadline tightening).
//! * [`DynamicWorld`] — a [`MecScenario`] plus the accumulated
//!   delay-priority multiplier, with [`DynamicWorld::apply`] validating and
//!   applying events (the produced scenario always passes
//!   [`MecScenario::new`] validation).
//! * [`EventTrace`] — a seed-deterministic T-step timeline over any starting
//!   world: every step carries its event list and the world after applying
//!   them, so online solvers can replay the exact same drift sequence.
//!
//! Traces are pure functions of `(initial world, seed, config)`: generating
//! the same trace twice yields identical worlds byte for byte, which the
//! online engine's differential tests rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::channel::ChannelModel;
use crate::error::{MecError, MecResult};
use crate::scenario::{ClientProfile, MecScenario};

/// An atomic change to a dynamic world.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ScenarioEvent {
    /// A new client joins the cell with the given profile.
    ClientJoin {
        /// The profile of the arriving client.
        client: ClientProfile,
    },
    /// The client at `index` leaves the cell.
    ClientLeave {
        /// Index of the departing client (0-based).
        index: usize,
    },
    /// Every client's channel gain is multiplied by its drift factor
    /// (fading, mobility, blockage).
    ChannelDrift {
        /// One multiplicative factor per client, all positive.
        factors: Vec<f64>,
    },
    /// The client at `index` bursts: upload payload and token count are
    /// scaled by `factor`.
    LoadBurst {
        /// Index of the bursting client (0-based).
        index: usize,
        /// Multiplicative load factor (positive; > 1 is a burst).
        factor: f64,
    },
    /// The application tightens its latency requirement: the world's delay
    /// priority is multiplied by `factor` (>= 1 tightens).
    DeadlineTighten {
        /// Multiplicative delay-priority factor (positive).
        factor: f64,
    },
}

impl ScenarioEvent {
    /// The registry of event kinds, in the order used by trace generation.
    pub const KINDS: [&'static str; 5] = [
        "client_join",
        "client_leave",
        "channel_drift",
        "load_burst",
        "deadline_tighten",
    ];

    /// Stable machine-readable kind tag of this event.
    pub fn kind(&self) -> &'static str {
        match self {
            ScenarioEvent::ClientJoin { .. } => "client_join",
            ScenarioEvent::ClientLeave { .. } => "client_leave",
            ScenarioEvent::ChannelDrift { .. } => "channel_drift",
            ScenarioEvent::LoadBurst { .. } => "load_burst",
            ScenarioEvent::DeadlineTighten { .. } => "deadline_tighten",
        }
    }

    /// Whether this event changes the number of clients — the structural
    /// changes after which a warm-started re-solve is not meaningful.
    pub fn is_structural(&self) -> bool {
        matches!(
            self,
            ScenarioEvent::ClientJoin { .. } | ScenarioEvent::ClientLeave { .. }
        )
    }
}

/// A [`MecScenario`] with the accumulated dynamic state that is not part of
/// the scenario itself: the delay-priority multiplier raised by
/// [`ScenarioEvent::DeadlineTighten`] events (the solver applies it to the
/// objective's delay weight).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DynamicWorld {
    /// The MEC scenario at this point of the timeline.
    pub scenario: MecScenario,
    /// Accumulated delay-priority multiplier (starts at 1).
    pub delay_weight_factor: f64,
}

impl DynamicWorld {
    /// Wraps a static scenario as the start of a timeline.
    pub fn new(scenario: MecScenario) -> Self {
        Self {
            scenario,
            delay_weight_factor: 1.0,
        }
    }

    /// Returns the world after applying `event`, validating the event against
    /// the current state. The scenario is rebuilt through
    /// [`MecScenario::new`], so every produced world passes full scenario
    /// validation.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] for an out-of-range client
    /// index, a removal that would empty the cell, a factor vector of the
    /// wrong length, or a non-positive/non-finite factor.
    pub fn apply(&self, event: &ScenarioEvent) -> MecResult<Self> {
        let scenario = &self.scenario;
        let mut clients = scenario.clients().to_vec();
        let mut delay_weight_factor = self.delay_weight_factor;
        match event {
            ScenarioEvent::ClientJoin { client } => clients.push(*client),
            ScenarioEvent::ClientLeave { index } => {
                if *index >= clients.len() {
                    return Err(MecError::InvalidParameter {
                        reason: format!(
                            "client_leave index {index} out of range for {} clients",
                            clients.len()
                        ),
                    });
                }
                if clients.len() == 1 {
                    return Err(MecError::InvalidParameter {
                        reason: "client_leave would empty the cell (a scenario requires at \
                                 least one client)"
                            .to_string(),
                    });
                }
                clients.remove(*index);
            }
            ScenarioEvent::ChannelDrift { factors } => {
                if factors.len() != clients.len() {
                    return Err(MecError::InvalidParameter {
                        reason: format!(
                            "channel_drift carries {} factors for {} clients",
                            factors.len(),
                            clients.len()
                        ),
                    });
                }
                for (client, &factor) in clients.iter_mut().zip(factors) {
                    check_factor("channel_drift", factor)?;
                    client.channel_gain *= factor;
                }
            }
            ScenarioEvent::LoadBurst { index, factor } => {
                check_factor("load_burst", *factor)?;
                let client = clients
                    .get_mut(*index)
                    .ok_or_else(|| MecError::InvalidParameter {
                        reason: format!("load_burst index {index} out of range"),
                    })?;
                client.upload_bits *= factor;
                client.tokens = (client.tokens * factor).max(1.0).round();
            }
            ScenarioEvent::DeadlineTighten { factor } => {
                check_factor("deadline_tighten", *factor)?;
                delay_weight_factor *= factor;
            }
        }
        Ok(Self {
            scenario: MecScenario::new(
                clients,
                scenario.total_bandwidth_hz(),
                scenario.total_server_frequency_hz(),
                scenario.server_capacitance(),
                scenario.noise_psd(),
            )?,
            delay_weight_factor,
        })
    }
}

fn check_factor(kind: &str, factor: f64) -> MecResult<()> {
    if !(factor > 0.0 && factor.is_finite()) {
        return Err(MecError::InvalidParameter {
            reason: format!("{kind} factor must be positive and finite, got {factor}"),
        });
    }
    Ok(())
}

/// Knobs of the seed-deterministic trace generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventTraceConfig {
    /// Number of steps after the initial world.
    pub steps: usize,
    /// Per-step relative channel-gain drift amplitude (0 disables drift; the
    /// per-client factors are drawn uniformly from `[1 - a, 1 + a]`).
    pub drift_amplitude: f64,
    /// Per-step probability of one discrete event (join/leave/burst/tighten)
    /// in addition to the drift; 0 gives a drift-only trace.
    pub event_probability: f64,
    /// Joins are suppressed at this population and leaves at
    /// `min_clients`, keeping the trace inside a solvable band.
    pub max_clients: usize,
    /// Lower population bound (must be at least 1).
    pub min_clients: usize,
}

impl Default for EventTraceConfig {
    fn default() -> Self {
        Self {
            steps: 8,
            drift_amplitude: 0.02,
            event_probability: 0.25,
            max_clients: 64,
            min_clients: 2,
        }
    }
}

impl EventTraceConfig {
    /// A drift-only trace of `steps` steps: channels drift, nothing else
    /// happens. This is the workload on which warm-started re-solves shine.
    pub fn drift_only(steps: usize) -> Self {
        Self {
            steps,
            event_probability: 0.0,
            ..Self::default()
        }
    }

    /// A frozen trace of `steps` steps: no events at all, every step's world
    /// is bit-identical to the initial one (the differential-test baseline).
    pub fn frozen(steps: usize) -> Self {
        Self {
            steps,
            drift_amplitude: 0.0,
            event_probability: 0.0,
            ..Self::default()
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] for out-of-range values.
    pub fn validate(&self) -> MecResult<()> {
        if !(0.0..1.0).contains(&self.drift_amplitude) {
            return Err(MecError::InvalidParameter {
                reason: format!(
                    "drift amplitude must lie in [0, 1), got {}",
                    self.drift_amplitude
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.event_probability) {
            return Err(MecError::InvalidParameter {
                reason: format!(
                    "event probability must lie in [0, 1], got {}",
                    self.event_probability
                ),
            });
        }
        if self.min_clients == 0 || self.min_clients > self.max_clients {
            return Err(MecError::InvalidParameter {
                reason: format!(
                    "need 1 <= min_clients <= max_clients, got {}..{}",
                    self.min_clients, self.max_clients
                ),
            });
        }
        Ok(())
    }
}

/// One step of a trace: the events of the step and the world after them.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceStep {
    /// Events applied at this step, in application order.
    pub events: Vec<ScenarioEvent>,
    /// The world after the events.
    pub world: DynamicWorld,
}

/// A seed-deterministic T-step timeline over a starting world.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EventTrace {
    initial: DynamicWorld,
    steps: Vec<TraceStep>,
}

impl EventTrace {
    /// Generates a trace from `initial` with the given seed and knobs.
    ///
    /// Each step applies one [`ScenarioEvent::ChannelDrift`] (skipped when
    /// the amplitude is zero) and, with `event_probability`, one discrete
    /// event whose kind is drawn uniformly among the applicable ones (joins
    /// respect `max_clients`, leaves respect `min_clients`). Joining clients
    /// are placed like the paper's world: area-uniform in a 1 km disk with
    /// the Section VI-A workload and privacy weights cycling through the
    /// paper's values.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] for invalid knobs, or when the
    /// initial world's population already lies outside the configured
    /// `min_clients..=max_clients` band.
    pub fn generate(initial: MecScenario, seed: u64, config: &EventTraceConfig) -> MecResult<Self> {
        config.validate()?;
        // The band is an invariant of the whole trace, so a starting world
        // outside it is a configuration error, not something churn can fix
        // (joins/leaves are suppressed at the boundary, never forced).
        let population = initial.num_clients();
        if !(config.min_clients..=config.max_clients).contains(&population) {
            return Err(MecError::InvalidParameter {
                reason: format!(
                    "the initial world has {population} clients, outside the configured \
                     population band {}..={}",
                    config.min_clients, config.max_clients
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let channel = ChannelModel::default();
        let initial = DynamicWorld::new(initial);
        let mut world = initial.clone();
        let mut joined = 0usize;
        let mut steps = Vec::with_capacity(config.steps);
        for _ in 0..config.steps {
            let mut events = Vec::new();
            if config.drift_amplitude > 0.0 {
                let factors = (0..world.scenario.num_clients())
                    .map(|_| 1.0 + config.drift_amplitude * rng.gen_range(-1.0f64..1.0))
                    .collect();
                events.push(ScenarioEvent::ChannelDrift { factors });
            }
            if config.event_probability > 0.0
                && rng.gen_range(0.0f64..1.0) < config.event_probability
            {
                let population = world.scenario.num_clients();
                let mut kinds = vec!["load_burst", "deadline_tighten"];
                if population < config.max_clients {
                    kinds.push("client_join");
                }
                if population > config.min_clients {
                    kinds.push("client_leave");
                }
                let kind = kinds[rng.gen_range(0..kinds.len())];
                events.push(match kind {
                    "client_join" => {
                        joined += 1;
                        ScenarioEvent::ClientJoin {
                            client: sample_joining_client(&mut rng, &channel, population + joined),
                        }
                    }
                    "client_leave" => ScenarioEvent::ClientLeave {
                        index: rng.gen_range(0..population),
                    },
                    "load_burst" => ScenarioEvent::LoadBurst {
                        index: rng.gen_range(0..population),
                        factor: rng.gen_range(1.5f64..4.0),
                    },
                    _ => ScenarioEvent::DeadlineTighten {
                        factor: rng.gen_range(1.05f64..1.3),
                    },
                });
            }
            for event in &events {
                world = world.apply(event)?;
            }
            steps.push(TraceStep {
                events,
                world: world.clone(),
            });
        }
        Ok(Self { initial, steps })
    }

    /// The world before any step.
    pub fn initial(&self) -> &DynamicWorld {
        &self.initial
    }

    /// The trace steps, in time order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of steps after the initial world.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of events across all steps.
    pub fn num_events(&self) -> usize {
        self.steps.iter().map(|s| s.events.len()).sum()
    }
}

/// Samples the profile of a joining client: placed like the paper's world,
/// running the paper's NLP workload, with the privacy weight cycling through
/// the paper's values by arrival order.
fn sample_joining_client(
    rng: &mut StdRng,
    channel: &ChannelModel,
    ordinal: usize,
) -> ClientProfile {
    let radius = 1000.0 * rng.gen_range(0.0f64..1.0).sqrt().max(0.05);
    let gain = channel
        .sample_gain(radius, rng)
        .expect("radius is positive");
    ClientProfile {
        distance_m: radius,
        channel_gain: gain,
        upload_bits: 3e9,
        tokens: 160.0,
        tokens_per_sample: 10.0,
        encryption_cycles: 1e6,
        client_capacitance: 1e-28,
        max_client_frequency_hz: 3e9,
        max_power_w: 0.2,
        privacy_weight: MecScenario::PAPER_PRIVACY_WEIGHTS
            [ordinal % MecScenario::PAPER_PRIVACY_WEIGHTS.len()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> DynamicWorld {
        DynamicWorld::new(MecScenario::paper_default(1))
    }

    #[test]
    fn join_and_leave_change_the_population() {
        let base = world();
        let joined = base
            .apply(&ScenarioEvent::ClientJoin {
                client: base.scenario.clients()[0],
            })
            .unwrap();
        assert_eq!(joined.scenario.num_clients(), 7);
        let left = joined
            .apply(&ScenarioEvent::ClientLeave { index: 3 })
            .unwrap();
        assert_eq!(left.scenario.num_clients(), 6);
        // Budgets are unchanged: churn shifts per-client shares, not totals.
        assert_eq!(
            left.scenario.total_bandwidth_hz(),
            base.scenario.total_bandwidth_hz()
        );
    }

    #[test]
    fn drift_scales_gains_only() {
        let base = world();
        let factors = vec![1.1, 0.9, 1.0, 1.05, 0.95, 1.02];
        let drifted = base
            .apply(&ScenarioEvent::ChannelDrift {
                factors: factors.clone(),
            })
            .unwrap();
        for ((before, after), factor) in base
            .scenario
            .clients()
            .iter()
            .zip(drifted.scenario.clients())
            .zip(&factors)
        {
            assert_eq!(after.channel_gain, before.channel_gain * factor);
            assert_eq!(after.upload_bits, before.upload_bits);
        }
    }

    #[test]
    fn burst_scales_load_and_tighten_scales_priority() {
        let base = world();
        let burst = base
            .apply(&ScenarioEvent::LoadBurst {
                index: 2,
                factor: 2.0,
            })
            .unwrap();
        assert_eq!(burst.scenario.clients()[2].upload_bits, 6e9);
        assert_eq!(burst.scenario.clients()[2].tokens, 320.0);
        assert_eq!(burst.scenario.clients()[0].upload_bits, 3e9);
        let tightened = burst
            .apply(&ScenarioEvent::DeadlineTighten { factor: 1.2 })
            .unwrap();
        assert!((tightened.delay_weight_factor - 1.2).abs() < 1e-12);
    }

    #[test]
    fn invalid_events_are_rejected_with_reasons() {
        let base = world();
        assert!(base
            .apply(&ScenarioEvent::ClientLeave { index: 9 })
            .is_err());
        assert!(base
            .apply(&ScenarioEvent::ChannelDrift {
                factors: vec![1.0; 3]
            })
            .is_err());
        assert!(base
            .apply(&ScenarioEvent::LoadBurst {
                index: 0,
                factor: 0.0
            })
            .is_err());
        assert!(base
            .apply(&ScenarioEvent::DeadlineTighten { factor: f64::NAN })
            .is_err());
        // A one-client cell cannot lose its last client.
        let mut single = base.clone();
        while single.scenario.num_clients() > 1 {
            single = single
                .apply(&ScenarioEvent::ClientLeave { index: 0 })
                .unwrap();
        }
        assert!(single
            .apply(&ScenarioEvent::ClientLeave { index: 0 })
            .is_err());
    }

    #[test]
    fn event_kinds_are_stable_and_complete() {
        let events = [
            ScenarioEvent::ClientJoin {
                client: world().scenario.clients()[0],
            },
            ScenarioEvent::ClientLeave { index: 0 },
            ScenarioEvent::ChannelDrift { factors: vec![] },
            ScenarioEvent::LoadBurst {
                index: 0,
                factor: 2.0,
            },
            ScenarioEvent::DeadlineTighten { factor: 1.1 },
        ];
        let kinds: Vec<&str> = events.iter().map(ScenarioEvent::kind).collect();
        assert_eq!(kinds, ScenarioEvent::KINDS);
        assert!(events[0].is_structural());
        assert!(events[1].is_structural());
        assert!(!events[2].is_structural());
    }

    #[test]
    fn traces_are_seed_deterministic() {
        let config = EventTraceConfig {
            steps: 12,
            event_probability: 0.8,
            ..EventTraceConfig::default()
        };
        let a = EventTrace::generate(MecScenario::paper_default(5), 9, &config).unwrap();
        let b = EventTrace::generate(MecScenario::paper_default(5), 9, &config).unwrap();
        assert_eq!(a, b);
        let c = EventTrace::generate(MecScenario::paper_default(5), 10, &config).unwrap();
        assert_ne!(a, c, "traces must vary with the seed");
        assert_eq!(a.len(), 12);
        assert!(a.num_events() >= 12, "every step drifts");
    }

    #[test]
    fn frozen_traces_have_no_events_and_identical_worlds() {
        let initial = MecScenario::paper_default(3);
        let trace = EventTrace::generate(initial.clone(), 7, &EventTraceConfig::frozen(5)).unwrap();
        assert_eq!(trace.num_events(), 0);
        for step in trace.steps() {
            assert_eq!(step.world.scenario, initial);
            assert_eq!(step.world.delay_weight_factor, 1.0);
        }
    }

    #[test]
    fn drift_only_traces_never_change_the_population() {
        let trace = EventTrace::generate(
            MecScenario::paper_default(3),
            7,
            &EventTraceConfig::drift_only(10),
        )
        .unwrap();
        for step in trace.steps() {
            assert_eq!(step.world.scenario.num_clients(), 6);
            assert_eq!(step.events.len(), 1);
            assert_eq!(step.events[0].kind(), "channel_drift");
        }
    }

    #[test]
    fn population_stays_inside_the_configured_band() {
        let config = EventTraceConfig {
            steps: 40,
            event_probability: 1.0,
            min_clients: 4,
            max_clients: 8,
            ..EventTraceConfig::default()
        };
        let trace = EventTrace::generate(MecScenario::paper_default(2), 17, &config).unwrap();
        for step in trace.steps() {
            let n = step.world.scenario.num_clients();
            assert!((4..=8).contains(&n), "population {n} escaped the band");
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let initial = MecScenario::paper_default(1);
        for config in [
            EventTraceConfig {
                drift_amplitude: 1.0,
                ..EventTraceConfig::default()
            },
            EventTraceConfig {
                event_probability: 1.5,
                ..EventTraceConfig::default()
            },
            EventTraceConfig {
                min_clients: 0,
                ..EventTraceConfig::default()
            },
            EventTraceConfig {
                min_clients: 10,
                max_clients: 5,
                ..EventTraceConfig::default()
            },
        ] {
            assert!(EventTrace::generate(initial.clone(), 1, &config).is_err());
        }
    }

    #[test]
    fn initial_world_outside_the_population_band_is_rejected() {
        // The six-client paper world cannot start a trace whose band caps the
        // population at four — churn never forces a world into the band.
        let err = EventTrace::generate(
            MecScenario::paper_default(1),
            1,
            &EventTraceConfig {
                min_clients: 2,
                max_clients: 4,
                ..EventTraceConfig::default()
            },
        )
        .unwrap_err();
        assert!(err.to_string().contains("outside the configured"), "{err}");
    }
}
