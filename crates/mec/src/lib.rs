//! # quhe-mec — mobile edge computing substrate for the QuHE system
//!
//! Models the classical (non-quantum) side of the QuHE system: the wireless
//! uplink between client nodes and the edge server, and the computation costs
//! on both sides. Concretely, Sections III-C to III-F of the paper:
//!
//! * [`channel`] — 3GPP-style large-scale path loss plus Rayleigh small-scale
//!   fading, giving the channel attenuation `g_n`,
//! * [`shannon`] — the FDMA uplink rate `r_n = b_n log2(1 + p_n g_n / (N0 b_n))`
//!   (Eq. 10),
//! * [`transmission`] — uplink delay and energy (Eqs. 11–12),
//! * [`compute`] — client-side encryption delay/energy (Eqs. 7–8) and
//!   server-side computation delay/energy (Eqs. 13–14, using the CKKS cost
//!   models from `quhe-crypto`),
//! * [`cost`] — the system-level aggregates `T_total` (max over clients) and
//!   `E_total` (sum over clients and the server) (Eqs. 15–16),
//! * [`fdma`] — bandwidth-budget accounting for constraint (17f),
//! * [`scenario`] — the Section VI-A evaluation scenario: six clients placed
//!   uniformly in a 1 km disk, with the paper's workload sizes, CPU budgets
//!   and weights,
//! * [`generator`] — seed-deterministic scenario generators beyond the
//!   paper's world (dense cells, heterogeneous fleets, far-edge deployments,
//!   bursty workloads) and the named [`generator::ScenarioRegistry`],
//! * [`dynamic`] — dynamic worlds: discrete scenario events (client churn,
//!   channel drift, load bursts, deadline tightening) and seed-deterministic
//!   event traces for the online engine in `quhe-core`.
//!
//! # Example
//!
//! ```
//! use quhe_mec::scenario::MecScenario;
//!
//! let scenario = MecScenario::paper_default(42);
//! assert_eq!(scenario.clients().len(), 6);
//! // Equal-split resources are always feasible.
//! let b = scenario.equal_bandwidth_split();
//! assert!((b.iter().sum::<f64>() - scenario.total_bandwidth_hz()).abs() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod compute;
pub mod cost;
pub mod dynamic;
pub mod error;
pub mod fdma;
pub mod generator;
pub mod scenario;
pub mod shannon;
pub mod transmission;

pub use error::{MecError, MecResult};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::channel::{path_loss_db, rayleigh_gain, ChannelModel};
    pub use crate::compute::{
        client_encryption_cost, server_computation_cost, ClientComputeParams, ServerComputeParams,
    };
    pub use crate::cost::{ClientCostBreakdown, SystemCost};
    pub use crate::dynamic::{
        DynamicWorld, EventTrace, EventTraceConfig, ScenarioEvent, TraceStep,
    };
    pub use crate::error::{MecError, MecResult};
    pub use crate::fdma::BandwidthBudget;
    pub use crate::generator::{
        BurstyWorkload, DenseCell, FarEdge, HeterogeneousDevices, PaperDefault, ScenarioGenerator,
        ScenarioRegistry,
    };
    pub use crate::scenario::{ClientProfile, MecScenario};
    pub use crate::shannon::{uplink_rate, RatePoint};
    pub use crate::transmission::{transmission_cost, TransmissionCost};
}
