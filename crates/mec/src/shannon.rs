//! Shannon-capacity uplink rate under FDMA (Eq. 10 of the paper).

use crate::error::{MecError, MecResult};

/// The uplink rate `r_n = b log2(1 + p g / (N0 b))` in bit/s.
///
/// # Errors
/// Returns [`MecError::InvalidParameter`] if bandwidth, power, gain or noise
/// PSD are non-positive or non-finite.
pub fn uplink_rate(bandwidth_hz: f64, power_w: f64, gain: f64, noise_psd: f64) -> MecResult<f64> {
    for (name, value) in [
        ("bandwidth", bandwidth_hz),
        ("power", power_w),
        ("gain", gain),
        ("noise PSD", noise_psd),
    ] {
        if !(value > 0.0 && value.is_finite()) {
            return Err(MecError::InvalidParameter {
                reason: format!("{name} must be positive, got {value}"),
            });
        }
    }
    let snr = power_w * gain / (noise_psd * bandwidth_hz);
    Ok(bandwidth_hz * (1.0 + snr).log2())
}

/// A fully specified rate operating point, convenient for passing around and
/// for reporting.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RatePoint {
    /// Allocated bandwidth `b_n` in Hz.
    pub bandwidth_hz: f64,
    /// Transmit power `p_n` in W.
    pub power_w: f64,
    /// Channel power gain `g_n` (dimensionless).
    pub gain: f64,
    /// Noise power spectral density `N0` in W/Hz.
    pub noise_psd: f64,
}

impl RatePoint {
    /// The achievable uplink rate at this operating point.
    ///
    /// # Errors
    /// Same conditions as [`uplink_rate`].
    pub fn rate(&self) -> MecResult<f64> {
        uplink_rate(self.bandwidth_hz, self.power_w, self.gain, self.noise_psd)
    }

    /// The receive signal-to-noise ratio `p g / (N0 b)`.
    pub fn snr(&self) -> f64 {
        self.power_w * self.gain / (self.noise_psd * self.bandwidth_hz)
    }

    /// Spectral efficiency in bit/s/Hz.
    ///
    /// # Errors
    /// Same conditions as [`uplink_rate`].
    pub fn spectral_efficiency(&self) -> MecResult<f64> {
        Ok(self.rate()? / self.bandwidth_hz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_matches_hand_computation() {
        // b = 1 MHz, SNR = 3 => r = 1e6 * log2(4) = 2e6 bit/s.
        let noise_psd = 1e-15;
        let bandwidth = 1e6;
        let gain = 1e-6;
        let power = 3.0 * noise_psd * bandwidth / gain;
        let r = uplink_rate(bandwidth, power, gain, noise_psd).unwrap();
        assert!((r - 2e6).abs() < 1e-3);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(uplink_rate(0.0, 1.0, 1.0, 1.0).is_err());
        assert!(uplink_rate(1.0, -1.0, 1.0, 1.0).is_err());
        assert!(uplink_rate(1.0, 1.0, 0.0, 1.0).is_err());
        assert!(uplink_rate(1.0, 1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn rate_point_consistency() {
        let point = RatePoint {
            bandwidth_hz: 2e6,
            power_w: 0.1,
            gain: 1e-11,
            noise_psd: 10f64.powf(-20.4),
        };
        let rate = point.rate().unwrap();
        assert!((point.spectral_efficiency().unwrap() - rate / 2e6).abs() < 1e-9);
        assert!(point.snr() > 0.0);
        assert!((rate - point.bandwidth_hz * (1.0 + point.snr()).log2()).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn rate_is_increasing_in_power(
            b in 1e5f64..1e7, g in 1e-13f64..1e-9, p1 in 0.01f64..0.5, p2 in 0.01f64..0.5
        ) {
            let n0 = 10f64.powf(-20.4);
            let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
            let r_lo = uplink_rate(b, lo, g, n0).unwrap();
            let r_hi = uplink_rate(b, hi, g, n0).unwrap();
            prop_assert!(r_hi >= r_lo);
        }

        #[test]
        fn rate_is_increasing_in_bandwidth(
            b1 in 1e5f64..1e7, b2 in 1e5f64..1e7, g in 1e-13f64..1e-9, p in 0.01f64..0.5
        ) {
            // For fixed power the rate b log2(1 + snr/b) is increasing in b.
            let n0 = 10f64.powf(-20.4);
            let (lo, hi) = if b1 < b2 { (b1, b2) } else { (b2, b1) };
            let r_lo = uplink_rate(lo, p, g, n0).unwrap();
            let r_hi = uplink_rate(hi, p, g, n0).unwrap();
            prop_assert!(r_hi >= r_lo - 1e-9);
        }

        #[test]
        fn rate_is_jointly_concave_along_segments(
            b1 in 1e5f64..1e7, b2 in 1e5f64..1e7,
            p1 in 0.01f64..0.5, p2 in 0.01f64..0.5,
            t in 0.0f64..1.0,
        ) {
            // The paper relies on r(b, p) being jointly concave; check the
            // defining inequality along random segments.
            let g = 1e-11;
            let n0 = 10f64.powf(-20.4);
            let bm = t * b1 + (1.0 - t) * b2;
            let pm = t * p1 + (1.0 - t) * p2;
            let lhs = uplink_rate(bm, pm, g, n0).unwrap();
            let rhs = t * uplink_rate(b1, p1, g, n0).unwrap()
                + (1.0 - t) * uplink_rate(b2, p2, g, n0).unwrap();
            prop_assert!(lhs >= rhs - 1e-3);
        }
    }
}
