//! The MEC evaluation scenario of the paper (Section VI-A).
//!
//! Six client nodes are placed uniformly at random in a circular cell of
//! radius 1000 m around the server; each runs the paper's NLP workload
//! (160 tokens per request, 10 tokens per sample, `3 x 10^9` encrypted bits
//! to upload, `10^6` cycles of symmetric/HE-key encryption work) and has a
//! 3 GHz CPU, a 0.2 W power amplifier and a `10^-28` switched capacitance.
//! The server offers 20 GHz of compute and 10 MHz of FDMA bandwidth.

use rand::Rng;
use rand::SeedableRng;

use crate::channel::ChannelModel;
use crate::compute::{ClientComputeParams, ServerComputeParams};
use crate::error::{MecError, MecResult};
use crate::fdma::BandwidthBudget;

/// Static description of one client node.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClientProfile {
    /// Distance from the server in metres.
    pub distance_m: f64,
    /// Composite channel power gain `g_n` (path loss times Rayleigh fade).
    pub channel_gain: f64,
    /// Encrypted uplink payload `d^(tr)` in bits.
    pub upload_bits: f64,
    /// Number of tokens `d^(cmp)` in the server workload.
    pub tokens: f64,
    /// Tokens per sample `rho_n`.
    pub tokens_per_sample: f64,
    /// Client encryption cycles `f^(se)`.
    pub encryption_cycles: f64,
    /// Client switched capacitance `kappa^(c)`.
    pub client_capacitance: f64,
    /// Maximum client CPU frequency `f^(max)` in Hz.
    pub max_client_frequency_hz: f64,
    /// Maximum transmit power `p^(max)` in W.
    pub max_power_w: f64,
    /// Privacy-importance weight `varsigma_n`.
    pub privacy_weight: f64,
}

impl ClientProfile {
    /// The client-compute parameter block for [`crate::compute`].
    pub fn client_compute_params(&self) -> ClientComputeParams {
        ClientComputeParams {
            encryption_cycles: self.encryption_cycles,
            switched_capacitance: self.client_capacitance,
        }
    }
}

/// The full MEC-side scenario: per-client profiles plus shared budgets.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MecScenario {
    clients: Vec<ClientProfile>,
    /// Total FDMA bandwidth `B_total` in Hz.
    total_bandwidth_hz: f64,
    /// Total server compute `f_total` in Hz.
    total_server_frequency_hz: f64,
    /// Server switched capacitance `kappa^(s)`.
    server_capacitance: f64,
    /// Noise power spectral density `N0` in W/Hz.
    noise_psd: f64,
}

impl MecScenario {
    /// The paper's default privacy weights for the six clients.
    pub const PAPER_PRIVACY_WEIGHTS: [f64; 6] = [0.1, 0.1, 0.1, 0.2, 0.2, 0.3];

    /// Builds a scenario from explicit parts.
    ///
    /// # Errors
    /// Returns [`MecError::InvalidParameter`] for an empty client list or a
    /// non-positive budget.
    pub fn new(
        clients: Vec<ClientProfile>,
        total_bandwidth_hz: f64,
        total_server_frequency_hz: f64,
        server_capacitance: f64,
        noise_psd: f64,
    ) -> MecResult<Self> {
        if clients.is_empty() {
            return Err(MecError::InvalidParameter {
                reason: "a scenario requires at least one client".to_string(),
            });
        }
        for (name, value) in [
            ("total bandwidth", total_bandwidth_hz),
            ("total server frequency", total_server_frequency_hz),
            ("server capacitance", server_capacitance),
            ("noise PSD", noise_psd),
        ] {
            if !(value > 0.0 && value.is_finite()) {
                return Err(MecError::InvalidParameter {
                    reason: format!("{name} must be positive, got {value}"),
                });
            }
        }
        Ok(Self {
            clients,
            total_bandwidth_hz,
            total_server_frequency_hz,
            server_capacitance,
            noise_psd,
        })
    }

    /// Builds the Section VI-A scenario with the paper's parameter values.
    /// Client positions and Rayleigh fades are drawn from a deterministic RNG
    /// seeded with `seed`, so experiments are reproducible.
    pub fn paper_default(seed: u64) -> Self {
        Self::paper_with_num_clients(6, seed)
    }

    /// Same as [`MecScenario::paper_default`] but with an arbitrary number of
    /// clients (useful for scaling studies). Privacy weights cycle through
    /// the paper's values.
    ///
    /// # Panics
    /// Panics if `num_clients` is zero.
    pub fn paper_with_num_clients(num_clients: usize, seed: u64) -> Self {
        assert!(num_clients > 0, "scenario requires at least one client");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let channel = ChannelModel::default();
        let clients = (0..num_clients)
            .map(|i| {
                // Uniform placement in a disk of radius 1000 m (area-uniform).
                let radius = 1000.0 * rng.gen_range(0.0f64..1.0).sqrt().max(0.05);
                let gain = channel
                    .sample_gain(radius, &mut rng)
                    .expect("radius is positive");
                ClientProfile {
                    distance_m: radius,
                    channel_gain: gain,
                    upload_bits: 3e9,
                    tokens: 160.0,
                    tokens_per_sample: 10.0,
                    encryption_cycles: 1e6,
                    client_capacitance: 1e-28,
                    max_client_frequency_hz: 3e9,
                    max_power_w: 0.2,
                    privacy_weight: Self::PAPER_PRIVACY_WEIGHTS
                        [i % Self::PAPER_PRIVACY_WEIGHTS.len()],
                }
            })
            .collect();
        Self {
            clients,
            total_bandwidth_hz: 10e6,
            total_server_frequency_hz: 20e9,
            server_capacitance: 1e-28,
            noise_psd: ChannelModel::default().noise_psd,
        }
    }

    /// The client profiles.
    pub fn clients(&self) -> &[ClientProfile] {
        &self.clients
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The total FDMA bandwidth in Hz.
    pub fn total_bandwidth_hz(&self) -> f64 {
        self.total_bandwidth_hz
    }

    /// The total server compute in Hz.
    pub fn total_server_frequency_hz(&self) -> f64 {
        self.total_server_frequency_hz
    }

    /// The server's effective switched capacitance.
    pub fn server_capacitance(&self) -> f64 {
        self.server_capacitance
    }

    /// The noise power spectral density in W/Hz.
    pub fn noise_psd(&self) -> f64 {
        self.noise_psd
    }

    /// Overrides the total bandwidth (used by the Fig. 6(a) sweep).
    #[must_use]
    pub fn with_total_bandwidth(mut self, total_bandwidth_hz: f64) -> Self {
        self.total_bandwidth_hz = total_bandwidth_hz;
        self
    }

    /// Overrides the total server compute (used by the Fig. 6(d) sweep).
    #[must_use]
    pub fn with_total_server_frequency(mut self, total_server_frequency_hz: f64) -> Self {
        self.total_server_frequency_hz = total_server_frequency_hz;
        self
    }

    /// Overrides every client's maximum transmit power (Fig. 6(b) sweep).
    #[must_use]
    pub fn with_max_power(mut self, max_power_w: f64) -> Self {
        for client in &mut self.clients {
            client.max_power_w = max_power_w;
        }
        self
    }

    /// Overrides every client's maximum CPU frequency (Fig. 6(c) sweep).
    #[must_use]
    pub fn with_max_client_frequency(mut self, max_client_frequency_hz: f64) -> Self {
        for client in &mut self.clients {
            client.max_client_frequency_hz = max_client_frequency_hz;
        }
        self
    }

    /// The bandwidth budget object for constraint checking.
    pub fn bandwidth_budget(&self) -> BandwidthBudget {
        BandwidthBudget::new(self.total_bandwidth_hz).expect("validated at construction")
    }

    /// Equal split of the bandwidth budget (the AA baseline allocation).
    pub fn equal_bandwidth_split(&self) -> Vec<f64> {
        self.bandwidth_budget()
            .equal_split(self.num_clients())
            .expect("scenario has at least one client")
    }

    /// Equal split of the server compute budget (the AA baseline allocation).
    pub fn equal_server_split(&self) -> Vec<f64> {
        vec![self.total_server_frequency_hz / self.num_clients() as f64; self.num_clients()]
    }

    /// The server-compute parameter block for client `n`.
    ///
    /// # Panics
    /// Panics when `n` is out of range.
    pub fn server_compute_params(&self, n: usize) -> ServerComputeParams {
        let client = &self.clients[n];
        ServerComputeParams {
            tokens: client.tokens,
            tokens_per_sample: client.tokens_per_sample,
            switched_capacitance: self.server_capacitance,
        }
    }

    /// The per-client privacy weights `varsigma`.
    pub fn privacy_weights(&self) -> Vec<f64> {
        self.clients.iter().map(|c| c.privacy_weight).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vi_a() {
        let s = MecScenario::paper_default(1);
        assert_eq!(s.num_clients(), 6);
        assert_eq!(s.total_bandwidth_hz(), 10e6);
        assert_eq!(s.total_server_frequency_hz(), 20e9);
        assert_eq!(s.privacy_weights(), vec![0.1, 0.1, 0.1, 0.2, 0.2, 0.3]);
        for c in s.clients() {
            assert_eq!(c.upload_bits, 3e9);
            assert_eq!(c.tokens, 160.0);
            assert_eq!(c.tokens_per_sample, 10.0);
            assert_eq!(c.max_power_w, 0.2);
            assert_eq!(c.max_client_frequency_hz, 3e9);
            assert!(c.distance_m > 0.0 && c.distance_m <= 1000.0);
            assert!(c.channel_gain > 0.0);
        }
    }

    #[test]
    fn scenario_is_deterministic_per_seed() {
        assert_eq!(MecScenario::paper_default(7), MecScenario::paper_default(7));
        assert_ne!(MecScenario::paper_default(7), MecScenario::paper_default(8));
    }

    #[test]
    fn builders_override_budgets() {
        let s = MecScenario::paper_default(1)
            .with_total_bandwidth(5e6)
            .with_total_server_frequency(30e9)
            .with_max_power(0.6)
            .with_max_client_frequency(9e9);
        assert_eq!(s.total_bandwidth_hz(), 5e6);
        assert_eq!(s.total_server_frequency_hz(), 30e9);
        assert!(s.clients().iter().all(|c| c.max_power_w == 0.6));
        assert!(s.clients().iter().all(|c| c.max_client_frequency_hz == 9e9));
    }

    #[test]
    fn equal_splits_are_budget_feasible() {
        let s = MecScenario::paper_default(3);
        let b = s.equal_bandwidth_split();
        s.bandwidth_budget().check(&b).unwrap();
        let f: f64 = s.equal_server_split().iter().sum();
        assert!((f - s.total_server_frequency_hz()).abs() < 1.0);
    }

    #[test]
    fn custom_scenario_validation() {
        assert!(MecScenario::new(vec![], 1e6, 1e9, 1e-28, 1e-20).is_err());
        let client = MecScenario::paper_default(1).clients()[0];
        assert!(MecScenario::new(vec![client], 0.0, 1e9, 1e-28, 1e-20).is_err());
        assert!(MecScenario::new(vec![client], 1e6, 1e9, 1e-28, 1e-20).is_ok());
    }

    #[test]
    fn scaled_scenario_cycles_privacy_weights() {
        let s = MecScenario::paper_with_num_clients(8, 2);
        assert_eq!(s.num_clients(), 8);
        assert_eq!(s.privacy_weights()[6], 0.1);
        assert_eq!(s.privacy_weights()[7], 0.1);
    }
}
