//! Emits a machine-readable benchmark record of the QuHE algorithm on the
//! paper-default scenario, so successive PRs have a performance trajectory to
//! compare against.
//!
//! ```bash
//! # writes BENCH_seed.json at the workspace root (or the path in $1):
//! cargo run --release -p quhe-bench --bin bench_seed
//! cargo run --release -p quhe-bench --bin bench_seed -- /tmp/bench.json
//! ```
//!
//! The JSON contains the final objective, per-stage and end-to-end wall-clock
//! timings (median over `QUHE_BENCH_RUNS` runs, default 5), stage call
//! counts, and the breakdown metrics at the solution. It is written by hand
//! (no serde runtime in the offline build) with a stable key order.

use std::time::Instant;

use quhe_bench::{default_scenario, env_usize, experiment_config};
use quhe_core::prelude::*;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .filter(|a| a != "--quick")
        .unwrap_or_else(|| "BENCH_seed.json".to_string());
    let runs = env_usize("QUHE_BENCH_RUNS", 5).max(1);
    let scenario = default_scenario();
    let config = experiment_config();
    let algorithm = QuheAlgorithm::new(config);

    // Stage timings are measured as standalone solves from the problem's
    // deterministic initial point, not taken from the algorithm outcome: the
    // outcome only records the *last* call per stage, which for stage 3 is
    // the cheap warm-start-only path once the outer loop has cached the
    // lambda surface — a poor regression signal.
    let problem = Problem::new(scenario.clone(), config)
        .unwrap_or_else(|e| panic!("problem construction failed: {e}"));
    let initial = problem
        .initial_point()
        .unwrap_or_else(|e| panic!("initial point failed: {e}"));

    let mut total_s = Vec::with_capacity(runs);
    let mut stage1_s = Vec::with_capacity(runs);
    let mut stage2_s = Vec::with_capacity(runs);
    let mut stage3_s = Vec::with_capacity(runs);
    let mut outcome = None;
    for _ in 0..runs {
        let wall = Instant::now();
        let result = algorithm
            .solve(&scenario)
            .unwrap_or_else(|e| panic!("QuHE solve failed: {e}"));
        total_s.push(wall.elapsed().as_secs_f64());
        outcome = Some(result);

        let stage1 = Stage1Solver::new()
            .solve(&problem)
            .unwrap_or_else(|e| panic!("stage 1 failed: {e}"));
        stage1_s.push(stage1.runtime_s);
        let stage2 = Stage2Solver::new()
            .solve(&problem, &initial)
            .unwrap_or_else(|e| panic!("stage 2 failed: {e}"));
        stage2_s.push(stage2.runtime_s);
        let stage3 = Stage3Solver::new(config.max_stage3_iterations, config.tolerance * 1e-2)
            .solve(&problem, &initial)
            .unwrap_or_else(|e| panic!("stage 3 failed: {e}"));
        stage3_s.push(stage3.runtime_s);
    }
    let outcome = outcome.expect("at least one run");

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"quhe-bench/v1\",\n",
            "  \"scenario\": \"paper_default\",\n",
            "  \"runs\": {runs},\n",
            "  \"objective\": {objective},\n",
            "  \"qkd_utility\": {qkd_utility},\n",
            "  \"security_utility\": {security_utility},\n",
            "  \"delay_s\": {delay_s},\n",
            "  \"energy_j\": {energy_j},\n",
            "  \"outer_iterations\": {outer_iterations},\n",
            "  \"converged\": {converged},\n",
            "  \"stage_calls\": [{calls1}, {calls2}, {calls3}],\n",
            "  \"timings_s\": {{\n",
            "    \"total_median\": {total},\n",
            "    \"stage1_median\": {stage1},\n",
            "    \"stage2_median\": {stage2},\n",
            "    \"stage3_median\": {stage3}\n",
            "  }}\n",
            "}}\n"
        ),
        runs = runs,
        objective = outcome.objective,
        qkd_utility = outcome.metrics.qkd_utility,
        security_utility = outcome.metrics.security_utility,
        delay_s = outcome.metrics.delay_s,
        energy_j = outcome.metrics.energy_j,
        outer_iterations = outcome.outer_iterations,
        converged = outcome.converged,
        calls1 = outcome.stage_calls[0],
        calls2 = outcome.stage_calls[1],
        calls3 = outcome.stage_calls[2],
        total = median(&mut total_s),
        stage1 = median(&mut stage1_s),
        stage2 = median(&mut stage2_s),
        stage3 = median(&mut stage3_s),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
    eprintln!("wrote {out_path}");
}
