//! Emits a machine-readable benchmark record of the selected registry solver
//! (default `quhe`) on the paper-default scenario, so successive PRs have a
//! performance trajectory to compare against.
//!
//! ```bash
//! # writes BENCH_seed.json at the workspace root (or the path in $1):
//! cargo run --release -p quhe-bench --bin bench_seed
//! cargo run --release -p quhe-bench --bin bench_seed -- /tmp/bench.json
//! ```
//!
//! The JSON contains the final objective, per-stage and end-to-end wall-clock
//! timings (median over `QUHE_BENCH_RUNS` runs, default 5), stage call
//! counts, and the breakdown metrics at the solution, written through the
//! shared report writer.

use std::time::Instant;

use quhe_bench::report::write;
use quhe_bench::{default_scenario, env_usize, output_path, selected_solver_name, solver_registry};
use quhe_core::prelude::*;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let solver_name = selected_solver_name(&args);
    let out_path = output_path(&args, "BENCH_seed.json");
    let runs = env_usize("QUHE_BENCH_RUNS", 5).max(1);
    let scenario = default_scenario();
    let registry = solver_registry();
    let solver = registry
        .resolve(&solver_name)
        .unwrap_or_else(|e| panic!("{e}"));
    let config = *solver.config();
    let spec = SolveSpec::cold();

    // Stage timings are measured as standalone solves from the problem's
    // deterministic initial point, not taken from the report telemetry: the
    // report only records the *last* call per stage, which for stage 3 is
    // the cheap warm-start-only path once the outer loop has cached the
    // lambda surface — a poor regression signal. They describe the staged
    // QuHE pipeline, so for any other selected solver they are skipped and
    // written as null rather than attributing QuHE's stage costs to it.
    let measure_stages = solver.name() == "quhe";
    let problem = Problem::new(scenario.clone(), config)
        .unwrap_or_else(|e| panic!("problem construction failed: {e}"));
    let initial = problem
        .initial_point()
        .unwrap_or_else(|e| panic!("initial point failed: {e}"));

    let mut total_s = Vec::with_capacity(runs);
    let mut stage1_s = Vec::with_capacity(runs);
    let mut stage2_s = Vec::with_capacity(runs);
    let mut stage3_s = Vec::with_capacity(runs);
    let mut report = None;
    for _ in 0..runs {
        let wall = Instant::now();
        let result = solver
            .solve(&scenario, &spec)
            .unwrap_or_else(|e| panic!("{} solve failed: {e}", solver.name()));
        total_s.push(wall.elapsed().as_secs_f64());
        report = Some(result);

        if !measure_stages {
            continue;
        }
        let stage1 = Stage1Solver::new()
            .solve(&problem)
            .unwrap_or_else(|e| panic!("stage 1 failed: {e}"));
        stage1_s.push(stage1.runtime_s);
        let stage2 = Stage2Solver::new()
            .solve(&problem, &initial)
            .unwrap_or_else(|e| panic!("stage 2 failed: {e}"));
        stage2_s.push(stage2.runtime_s);
        let stage3 = Stage3Solver::new(config.max_stage3_iterations, config.tolerance * 1e-2)
            .solve(&problem, &initial)
            .unwrap_or_else(|e| panic!("stage 3 failed: {e}"));
        stage3_s.push(stage3.runtime_s);
    }
    let report = report.expect("at least one run");

    let stage_median = |samples: &mut Vec<f64>| {
        if samples.is_empty() {
            JsonValue::Null
        } else {
            JsonValue::from_f64(median(samples))
        }
    };
    let timings = JsonValue::object()
        .with("total_median", JsonValue::from_f64(median(&mut total_s)))
        .with("stage1_median", stage_median(&mut stage1_s))
        .with("stage2_median", stage_median(&mut stage2_s))
        .with("stage3_median", stage_median(&mut stage3_s));
    let document = JsonValue::object()
        .with("schema", JsonValue::String("quhe-bench/v2".to_string()))
        .with("scenario", JsonValue::String("paper_default".to_string()))
        .with("solver", JsonValue::String(solver.name().to_string()))
        .with("runs", JsonValue::from_usize(runs))
        .with("objective", JsonValue::from_f64(report.objective))
        .with(
            "qkd_utility",
            JsonValue::from_f64(report.metrics.qkd_utility),
        )
        .with(
            "security_utility",
            JsonValue::from_f64(report.metrics.security_utility),
        )
        .with("delay_s", JsonValue::from_f64(report.metrics.delay_s))
        .with("energy_j", JsonValue::from_f64(report.metrics.energy_j))
        .with(
            "outer_iterations",
            JsonValue::from_usize(report.outer_iterations),
        )
        .with("converged", JsonValue::Bool(report.converged))
        .with(
            "stage_calls",
            JsonValue::Array(
                report
                    .stage_calls
                    .iter()
                    .map(|&c| JsonValue::from_usize(c))
                    .collect(),
            ),
        )
        .with("timings_s", timings);
    write(&out_path, &document);
}
