//! Online dynamic-world evaluation: warm-started tracking vs per-step cold
//! solves.
//!
//! For every world of [`ScenarioCatalog::builtin`] across a seed grid, the
//! binary generates a drift-only [`SystemTrace`] (channels and key rates
//! drift, the client set stays fixed), tracks it with the `quhe` registry
//! solver through [`solve_online_with`] and re-solves every step cold as the
//! baseline (a [`SolveSpec::cold`] solve of the same step world), then emits
//! `BENCH_online.json` through the shared report writer: per-step objective,
//! solve kind, warm-vs-cold outer iterations and wall-clock, and the
//! fraction of steps where the warm start reproduced the cold optimum. In
//! `--full` mode a second, mixed trace per world (client churn, load bursts,
//! deadline tightening) exercises the structural-fallback path.
//!
//! ```bash
//! cargo run --release -p quhe-bench --bin online_eval            # full grid
//! cargo run --release -p quhe-bench --bin online_eval -- --quick # CI budgets
//! cargo run --release -p quhe-bench --bin online_eval -- out.json
//! ```
//!
//! Environment: `QUHE_SEED` (base seed, default 42), `QUHE_ONLINE_SEEDS`
//! (seeds per scenario, default 3), `QUHE_ONLINE_STEPS` (trace length,
//! default 6 full / 3 quick). The run fails loudly if, on a drift-only
//! trace, any warm-started step used at least as many outer iterations as
//! its cold baseline or fell below the cold objective — the standing
//! invariants of the online engine.

use std::time::Instant;

use quhe_bench::report::{grid_envelope, job_identity, write};
use quhe_bench::{env_u64, env_usize, output_path};
use quhe_core::online::step_config;
use quhe_core::prelude::*;

/// One evaluated step: the online record paired with its cold baselines —
/// the multi-start solve (the work a warm re-solve replaces) and the
/// single-start solve (the objective floor of the fallback guarantee).
struct StepComparison {
    step: usize,
    kind: &'static str,
    events: Vec<String>,
    objective: f64,
    cold_objective: f64,
    cold_single_objective: f64,
    outer_iterations: usize,
    cold_outer_iterations: usize,
    guard_outer_iterations: usize,
    wall_s: f64,
    guard_wall_s: f64,
    cold_wall_s: f64,
    matched_cold: bool,
}

/// One (world, seed, trace kind) job of the grid.
struct JobResult {
    name: String,
    seed: u64,
    trace_kind: &'static str,
    clients: usize,
    steps: Vec<StepComparison>,
    warm_steps: usize,
    fallback_steps: usize,
    cold_steps: usize,
}

fn run_job(
    catalog: &ScenarioCatalog,
    solver: &dyn Solver,
    name: &str,
    seed: u64,
    trace_kind: &'static str,
    trace_config: &OnlineTraceConfig,
) -> JobResult {
    let trace = SystemTrace::generate(catalog, name, seed, trace_config)
        .unwrap_or_else(|e| panic!("{name} seed {seed}: trace generation failed: {e}"));
    let online = solve_online_with(solver, &trace)
        .unwrap_or_else(|e| panic!("{name} seed {seed}: online solve failed: {e}"));

    let steps: Vec<StepComparison> = online
        .records
        .iter()
        .zip(trace.steps())
        .map(|(record, step)| {
            let step_solver = solver.with_config(step_config(solver.config(), step));
            let cold_wall = Instant::now();
            let cold = step_solver
                .solve(&step.scenario, &SolveSpec::cold())
                .unwrap_or_else(|e| {
                    panic!(
                        "{name} seed {seed} step {}: cold solve failed: {e}",
                        record.step
                    )
                });
            let cold_wall_s = cold_wall.elapsed().as_secs_f64();
            // Warm-eligible steps already solved the single-start floor as
            // their guard; only guard-less steps (the anchor, structural
            // re-solves) need it computed here.
            let cold_single_objective = record.guard_objective.unwrap_or_else(|| {
                step_solver
                    .solve(&step.scenario, &SolveSpec::single_start())
                    .unwrap_or_else(|e| {
                        panic!(
                            "{name} seed {seed} step {}: single-start solve failed: {e}",
                            record.step
                        )
                    })
                    .objective
            });
            StepComparison {
                step: record.step,
                kind: record.kind.tag(),
                events: record.event_kinds.clone(),
                objective: record.objective,
                cold_objective: cold.objective,
                cold_single_objective,
                outer_iterations: record.outer_iterations,
                cold_outer_iterations: cold.outer_iterations,
                guard_outer_iterations: record.guard_outer_iterations,
                wall_s: record.runtime_s,
                guard_wall_s: record.guard_runtime_s,
                cold_wall_s,
                matched_cold: (record.objective - cold.objective).abs()
                    <= 1e-6 * (1.0 + cold.objective.abs()),
            }
        })
        .collect();
    JobResult {
        name: name.to_string(),
        seed,
        trace_kind,
        clients: trace.steps()[0].scenario.num_clients(),
        steps,
        warm_steps: online.count(SolveKind::Warm),
        fallback_steps: online.count(SolveKind::WarmFallback),
        cold_steps: online.count(SolveKind::Cold),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = output_path(&args, "BENCH_online.json");

    let base_seed = env_u64("QUHE_SEED", 42);
    let num_seeds = env_usize("QUHE_ONLINE_SEEDS", 3).max(1);
    let steps = env_usize("QUHE_ONLINE_STEPS", if quick { 3 } else { 6 }).max(1);
    let seeds: Vec<u64> = (0..num_seeds as u64).map(|i| base_seed + i).collect();
    // A coarser outer tolerance than the offline default: an online tracker
    // only needs to follow the drifting optimum to drift precision, and the
    // coarser stop is what lets a warm start converge within one outer
    // iteration. The Stage-3 budget stays large even in quick mode — a
    // truncated fractional-programming loop lands at a budget-determined
    // point instead of an optimum, which would turn the warm-vs-cold
    // comparison into noise. Both the engine and the cold baseline use this
    // config, so the comparison is budget-fair.
    let config = QuheConfig {
        max_outer_iterations: if quick { 4 } else { 6 },
        max_stage3_iterations: if quick { 30 } else { 40 },
        tolerance: 1e-3,
        solver_threads: 1,
        ..QuheConfig::default()
    };
    let registry = SolverRegistry::builtin_with(config);
    // Warm tracking is the point of this benchmark, so the job is pinned to
    // the warm-capable `quhe` solver; the engine itself takes any solver.
    let solver = registry.resolve("quhe").expect("quhe is a built-in");
    // Per-step drift of ±1 %: one trace step models ~1 s of wall clock, and
    // fading/key-rate drift on that horizon is gentle. The re-optimization
    // gain per step is then second-order (~1e-4), safely inside the 1e-3
    // tracking stop, while the cold baseline always pays its full descent.
    let drift_config = OnlineTraceConfig {
        drift_amplitude: 0.01,
        key_rate_drift: 0.01,
        ..OnlineTraceConfig::drift_only(steps)
    };
    let mixed_config = OnlineTraceConfig {
        steps,
        event_probability: 0.35,
        ..OnlineTraceConfig::default()
    };

    let catalog = ScenarioCatalog::builtin();
    eprintln!(
        "online_eval: solver '{}', {} scenarios x {} seeds, {} steps{}{}",
        solver.name(),
        catalog.names().len(),
        seeds.len(),
        steps,
        if quick { " (quick budgets)" } else { "" },
        if quick {
            ""
        } else {
            ", drift-only + mixed traces"
        },
    );

    let mut jobs = Vec::new();
    for name in catalog.names() {
        for &seed in &seeds {
            jobs.push(run_job(
                &catalog,
                solver,
                name,
                seed,
                "drift_only",
                &drift_config,
            ));
            if !quick {
                jobs.push(run_job(
                    &catalog,
                    solver,
                    name,
                    seed,
                    "mixed",
                    &mixed_config,
                ));
            }
        }
    }

    // Aggregates over the warm-started steps of the drift-only traces — the
    // headline numbers of the warm-start optimization. The tracking wall is
    // the warm re-solve alone; the guard wall is the independent floor check
    // (deployable on an idle core), reported separately so both the latency
    // and the total-compute pictures are visible.
    let mut warm_iters = 0usize;
    let mut cold_iters = 0usize;
    let mut tracking_wall = 0.0f64;
    let mut guard_wall = 0.0f64;
    let mut cold_wall = 0.0f64;
    let mut matched = 0usize;
    let mut warm_total = 0usize;
    let mut pure_warm = 0usize;
    for job in jobs.iter().filter(|j| j.trace_kind == "drift_only") {
        for step in job.steps.iter().skip(1) {
            warm_total += 1;
            pure_warm += usize::from(step.kind == "warm");
            warm_iters += step.outer_iterations;
            cold_iters += step.cold_outer_iterations;
            tracking_wall += step.wall_s - step.guard_wall_s;
            guard_wall += step.guard_wall_s;
            cold_wall += step.cold_wall_s;
            matched += usize::from(step.matched_cold);
        }
    }

    let job_values: Vec<JsonValue> = jobs
        .iter()
        .map(|job| {
            let step_values: Vec<JsonValue> = job
                .steps
                .iter()
                .map(|s| {
                    JsonValue::object()
                        .with("step", JsonValue::from_usize(s.step))
                        .with("kind", JsonValue::String(s.kind.to_string()))
                        .with("events", JsonValue::from_str_slice(&s.events))
                        .with("objective", JsonValue::from_f64(s.objective))
                        .with("cold_objective", JsonValue::from_f64(s.cold_objective))
                        .with(
                            "cold_single_objective",
                            JsonValue::from_f64(s.cold_single_objective),
                        )
                        .with(
                            "outer_iterations",
                            JsonValue::from_usize(s.outer_iterations),
                        )
                        .with(
                            "cold_outer_iterations",
                            JsonValue::from_usize(s.cold_outer_iterations),
                        )
                        .with(
                            "guard_outer_iterations",
                            JsonValue::from_usize(s.guard_outer_iterations),
                        )
                        .with("wall_s", JsonValue::from_f64(s.wall_s))
                        .with("guard_wall_s", JsonValue::from_f64(s.guard_wall_s))
                        .with("cold_wall_s", JsonValue::from_f64(s.cold_wall_s))
                        .with("matched_cold", JsonValue::Bool(s.matched_cold))
                })
                .collect();
            job_identity(&job.name, job.seed, job.clients)
                .with("trace_kind", JsonValue::String(job.trace_kind.to_string()))
                .with("warm_steps", JsonValue::from_usize(job.warm_steps))
                .with("fallback_steps", JsonValue::from_usize(job.fallback_steps))
                .with("cold_steps", JsonValue::from_usize(job.cold_steps))
                .with("steps", JsonValue::Array(step_values))
        })
        .collect();

    let aggregate = JsonValue::object()
        .with("warm_steps", JsonValue::from_usize(warm_total))
        .with("pure_warm_steps", JsonValue::from_usize(pure_warm))
        .with("warm_outer_iterations", JsonValue::from_usize(warm_iters))
        .with("cold_outer_iterations", JsonValue::from_usize(cold_iters))
        .with(
            "iteration_saving_fraction",
            JsonValue::from_f64(1.0 - warm_iters as f64 / cold_iters as f64),
        )
        .with("tracking_wall_s", JsonValue::from_f64(tracking_wall))
        .with("guard_wall_s", JsonValue::from_f64(guard_wall))
        .with("cold_wall_s", JsonValue::from_f64(cold_wall))
        .with(
            "wall_saving_fraction",
            JsonValue::from_f64(1.0 - tracking_wall / cold_wall),
        )
        .with(
            "matched_cold_fraction",
            JsonValue::from_f64(matched as f64 / warm_total as f64),
        );

    let document = grid_envelope(
        "quhe-online/v2",
        if quick { "quick" } else { "full" },
        solver.name(),
        &catalog.names(),
        &seeds,
    )
    .with("steps_per_trace", JsonValue::from_usize(steps))
    .with("jobs", JsonValue::Array(job_values))
    .with("drift_only_aggregate", aggregate);
    write(&out_path, &document);

    // Standing invariants of the online engine, enforced on every run: on a
    // drift-only trace every non-initial step is warm-started; each purely
    // warm step uses strictly fewer outer iterations than its cold baseline;
    // and no step — warm or fallback — ever reports an objective below the
    // cold single-start floor (the engine's fallback guarantee).
    for job in jobs.iter().filter(|j| j.trace_kind == "drift_only") {
        for step in job.steps.iter().skip(1) {
            assert!(
                step.kind == "warm" || step.kind == "warm_fallback",
                "{} seed {} step {}: drift step solved {}",
                job.name,
                job.seed,
                step.step,
                step.kind
            );
            if step.kind == "warm" {
                assert!(
                    step.outer_iterations < step.cold_outer_iterations,
                    "{} seed {} step {}: warm used {} outer iterations, cold {}",
                    job.name,
                    job.seed,
                    step.step,
                    step.outer_iterations,
                    step.cold_outer_iterations
                );
            }
            assert!(
                step.objective
                    >= step.cold_single_objective - 1e-6 * (1.0 + step.cold_single_objective.abs()),
                "{} seed {} step {}: warm objective {} below the cold single-start floor {}",
                job.name,
                job.seed,
                step.step,
                step.objective,
                step.cold_single_objective
            );
        }
    }
    // Grid-wide, warm tracking must dominate: most drift steps stay purely
    // warm (fallbacks are the exception, not the rule) and the total
    // iteration bill is strictly below the cold baseline's.
    assert!(
        2 * pure_warm >= warm_total,
        "warm tracking fell back on {} of {} drift steps",
        warm_total - pure_warm,
        warm_total
    );
    assert!(
        warm_iters < cold_iters,
        "online tracking spent {warm_iters} outer iterations, cold re-solving {cold_iters}"
    );
    eprintln!(
        "drift-only: {warm_total} warm steps ({pure_warm} pure warm), \
         {warm_iters} vs {cold_iters} outer iterations ({:.0}% saved), \
         tracking wall {tracking_wall:.3}s + guard {guard_wall:.3}s vs cold {cold_wall:.3}s, \
         {:.0}% matched the cold optimum",
        100.0 * (1.0 - warm_iters as f64 / cold_iters as f64),
        100.0 * matched as f64 / warm_total as f64,
    );
}
