//! Per-stage and per-primitive micro-benchmark of the cold-solve fast path.
//!
//! ```bash
//! # writes BENCH_stage.json at the workspace root (or the path in $1):
//! cargo run --release -p quhe-bench --bin stage_bench
//! cargo run --release -p quhe-bench --bin stage_bench -- --quick /tmp/stage.json
//! ```
//!
//! Two layers are measured on the paper-default scenario:
//!
//! * **Primitives** — the inner-loop operations the cold path is built from:
//!   a Cholesky factorization, a triangular re-solve against an existing
//!   factor, one damped-Newton step, and the simplex-cap projection in both
//!   its cheap (budget slack) and expensive (budget violated, bisection)
//!   regimes. Reported as nanoseconds per call.
//! * **Stages** — standalone Stage 1/2/3 solves from the deterministic
//!   initial point, exactly as `bench_seed` measures them. Reported as
//!   median seconds per solve plus their sum, the cold-solve stage total the
//!   CI regression gate compares against the committed artifact.
//!
//! `--quick` shrinks the repetition counts for CI smoke runs; the JSON
//! schema is identical in both modes.

use std::time::Instant;

use quhe_bench::report::write;
use quhe_bench::{default_scenario, env_usize, experiment_config, output_path};
use quhe_core::prelude::*;
use quhe_opt::linalg::{CholeskyFactor, DenseMatrix};
use quhe_opt::newton::{DampedNewton, NewtonConfig, NewtonWorkspace};
use quhe_opt::projection::{Projection, SimplexCapProjection};

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Median nanoseconds per call of `op` over `reps` batches of `batch` calls.
fn per_call_ns<F: FnMut()>(reps: usize, batch: usize, mut op: F) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let wall = Instant::now();
        for _ in 0..batch {
            op();
        }
        samples.push(wall.elapsed().as_secs_f64() * 1e9 / batch as f64);
    }
    median(&mut samples)
}

/// A small SPD test matrix (diagonally dominant), sized like the packed
/// Stage-3 decision vector of the paper-default scenario.
fn spd_matrix(n: usize) -> DenseMatrix {
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let off = 1.0 / (1.0 + (i as f64 - j as f64).abs());
            a.set(i, j, if i == j { n as f64 + 1.0 } else { off });
        }
    }
    a
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = output_path(&args, "BENCH_stage.json");
    let runs = env_usize("QUHE_BENCH_RUNS", if quick { 3 } else { 7 }).max(1);
    let (reps, batch) = if quick { (5, 200) } else { (15, 2000) };

    // --- Primitives -------------------------------------------------------
    let dim = 24; // 4 blocks x 6 clients, the paper-default Stage-3 packing
    let a = spd_matrix(dim);
    let rhs: Vec<f64> = (0..dim).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut chol = CholeskyFactor::new();
    let mut solution = Vec::new();

    let factor_ns = per_call_ns(reps, batch, || {
        chol.refresh(std::hint::black_box(&a)).expect("SPD");
    });
    let solve_ns = per_call_ns(reps, batch, || {
        chol.solve_into(std::hint::black_box(&rhs), &mut solution)
            .expect("factored");
        std::hint::black_box(&solution);
    });

    // One damped-Newton step (FD gradient + Hessian, factorization, line
    // search) on a shifted quadratic bowl of the Stage-1 dimension.
    let newton = DampedNewton::new(NewtonConfig {
        max_iterations: 1,
        ..NewtonConfig::default()
    });
    let bowl = |x: &[f64]| -> f64 {
        x.iter()
            .enumerate()
            .map(|(i, &v)| (1.0 + i as f64 * 0.5) * (v - 0.3).powi(2))
            .sum()
    };
    let mut newton_ws = NewtonWorkspace::new();
    let start = vec![1.0; 6];
    let newton_step_ns = per_call_ns(reps, batch / 10 + 1, || {
        let result = newton
            .minimize_with(
                &bowl,
                &|_: &[f64]| true,
                std::hint::black_box(&start),
                &mut newton_ws,
            )
            .expect("newton step");
        std::hint::black_box(result.objective);
    });

    // The simplex-cap projection in both regimes: inside the budget (early
    // return) and outside (bisection for the common shift).
    let simplex = SimplexCapProjection::uniform(6, 0.1, 3.0).expect("feasible set");
    let inside: Vec<f64> = vec![0.3; 6];
    let outside: Vec<f64> = vec![1.7; 6];
    let mut point = Vec::new();
    let project_slack_ns = per_call_ns(reps, batch, || {
        point.clear();
        point.extend_from_slice(std::hint::black_box(&inside));
        simplex.project(&mut point);
        std::hint::black_box(&point);
    });
    let project_bisect_ns = per_call_ns(reps, batch, || {
        point.clear();
        point.extend_from_slice(std::hint::black_box(&outside));
        simplex.project(&mut point);
        std::hint::black_box(&point);
    });

    // --- Stages -----------------------------------------------------------
    let scenario = default_scenario();
    let config = experiment_config();
    let problem = Problem::new(scenario, config)
        .unwrap_or_else(|e| panic!("problem construction failed: {e}"));
    let initial = problem
        .initial_point()
        .unwrap_or_else(|e| panic!("initial point failed: {e}"));

    let mut stage1_s = Vec::with_capacity(runs);
    let mut stage2_s = Vec::with_capacity(runs);
    let mut stage3_s = Vec::with_capacity(runs);
    for _ in 0..runs {
        let stage1 = Stage1Solver::new()
            .solve(&problem)
            .unwrap_or_else(|e| panic!("stage 1 failed: {e}"));
        stage1_s.push(stage1.runtime_s);
        let stage2 = Stage2Solver::new()
            .solve(&problem, &initial)
            .unwrap_or_else(|e| panic!("stage 2 failed: {e}"));
        stage2_s.push(stage2.runtime_s);
        let stage3 = Stage3Solver::new(config.max_stage3_iterations, config.tolerance * 1e-2)
            .solve(&problem, &initial)
            .unwrap_or_else(|e| panic!("stage 3 failed: {e}"));
        stage3_s.push(stage3.runtime_s);
    }
    let stage1_median = median(&mut stage1_s);
    let stage2_median = median(&mut stage2_s);
    let stage3_median = median(&mut stage3_s);

    let primitives = JsonValue::object()
        .with("cholesky_factor_ns", JsonValue::from_f64(factor_ns))
        .with("cholesky_solve_ns", JsonValue::from_f64(solve_ns))
        .with("newton_step_ns", JsonValue::from_f64(newton_step_ns))
        .with(
            "project_simplex_slack_ns",
            JsonValue::from_f64(project_slack_ns),
        )
        .with(
            "project_simplex_bisect_ns",
            JsonValue::from_f64(project_bisect_ns),
        );
    let stages = JsonValue::object()
        .with("stage1_median", JsonValue::from_f64(stage1_median))
        .with("stage2_median", JsonValue::from_f64(stage2_median))
        .with("stage3_median", JsonValue::from_f64(stage3_median))
        .with(
            "stage_sum",
            JsonValue::from_f64(stage1_median + stage2_median + stage3_median),
        );
    let document = JsonValue::object()
        .with(
            "schema",
            JsonValue::String("quhe-stage-bench/v1".to_string()),
        )
        .with("scenario", JsonValue::String("paper_default".to_string()))
        .with("quick", JsonValue::Bool(quick))
        .with("runs", JsonValue::from_usize(runs))
        .with("primitives_ns", primitives)
        .with("stages_s", stages);
    write(&out_path, &document);
}
