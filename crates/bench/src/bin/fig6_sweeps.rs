//! Regenerates Fig. 6 of the paper: the objective achieved by every
//! registered solver under varying resource budgets —
//! (a) total bandwidth, (b) maximum transmit power, (c) client CPU budget,
//! (d) server CPU budget.
//!
//! The sweep iterates [`SolverRegistry::iter`], so the table columns are the
//! registry (`QuHE`, `AA`, `OLAA`, `OCCR` by default) and a custom
//! registered solver would appear as an extra column.
//!
//! ```bash
//! # quick run (4 points per sweep):
//! cargo run --release -p quhe-bench --bin fig6_sweeps
//! # denser sweep:
//! QUHE_POINTS=7 cargo run --release -p quhe-bench --bin fig6_sweeps
//! ```

use quhe_bench::{
    default_scenario, display_name, env_usize, print_header, print_row, solver_registry,
};
use quhe_core::prelude::*;
use quhe_mec::scenario::MecScenario;

struct SweepPoint {
    label: String,
    scenario: SystemScenario,
}

fn linspace(lo: f64, hi: f64, points: usize) -> Vec<f64> {
    if points <= 1 {
        return vec![lo];
    }
    (0..points)
        .map(|i| lo + (hi - lo) * i as f64 / (points - 1) as f64)
        .collect()
}

fn run_sweep(title: &str, points: Vec<SweepPoint>, registry: &SolverRegistry) {
    println!("{title}\n");
    let mut header = vec!["Setting".to_string()];
    header.extend(registry.names().iter().map(|n| display_name(n).to_string()));
    let widths: Vec<usize> = std::iter::once(14)
        .chain(std::iter::repeat_n(10, registry.len()))
        .collect();
    print_header(
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
        &widths,
    );
    for point in points {
        let mut cells = vec![point.label];
        for solver in registry.iter() {
            let report = solver
                .solve(&point.scenario, &SolveSpec::cold())
                .unwrap_or_else(|e| panic!("{} runs: {e}", solver.name()));
            cells.push(format!("{:.4}", report.objective));
        }
        print_row(&cells, &widths);
    }
    println!();
}

fn main() {
    let base = default_scenario();
    let registry = solver_registry();
    let points = env_usize("QUHE_POINTS", 4);
    let with_mec = |mec: MecScenario| -> SystemScenario {
        base.with_mec(mec).expect("client count unchanged")
    };

    // Fig. 6(a): total bandwidth 0.5e7 .. 1.5e7 Hz.
    run_sweep(
        "Fig. 6(a): objective vs. total bandwidth B_total",
        linspace(0.5e7, 1.5e7, points)
            .into_iter()
            .map(|b| SweepPoint {
                label: format!("{:.1} MHz", b / 1e6),
                scenario: with_mec(base.mec().clone().with_total_bandwidth(b)),
            })
            .collect(),
        &registry,
    );

    // Fig. 6(b): maximum transmit power 0.2 .. 1.0 W.
    run_sweep(
        "Fig. 6(b): objective vs. maximum transmit power p_max",
        linspace(0.2, 1.0, points)
            .into_iter()
            .map(|p| SweepPoint {
                label: format!("{p:.2} W"),
                scenario: with_mec(base.mec().clone().with_max_power(p)),
            })
            .collect(),
        &registry,
    );

    // Fig. 6(c): client CPU budget 0.5e10 .. 1.5e10 Hz (the paper sweeps
    // f^(c)_max over this range).
    run_sweep(
        "Fig. 6(c): objective vs. client CPU budget f^(c)_max",
        linspace(0.5e10, 1.5e10, points)
            .into_iter()
            .map(|f| SweepPoint {
                label: format!("{:.1} GHz", f / 1e9),
                scenario: with_mec(base.mec().clone().with_max_client_frequency(f)),
            })
            .collect(),
        &registry,
    );

    // Fig. 6(d): server CPU budget 2e10 .. 3e10 Hz.
    run_sweep(
        "Fig. 6(d): objective vs. server CPU budget f_total",
        linspace(2e10, 3e10, points)
            .into_iter()
            .map(|f| SweepPoint {
                label: format!("{:.1} GHz", f / 1e9),
                scenario: with_mec(base.mec().clone().with_total_server_frequency(f)),
            })
            .collect(),
        &registry,
    );

    println!("(paper shape: QuHE dominates at every point; OCCR tracks QuHE on the bandwidth");
    println!(" and server-CPU sweeps; AA and OLAA benefit little from larger budgets)");
}
