//! Regenerates Fig. 5 of the paper:
//!
//! * (a) number of calls to each stage and the total running time of QuHE,
//! * (b) running time of the Stage-1 methods (QuHE, gradient descent,
//!   simulated annealing, random selection),
//! * (c) Stage-1 objective value achieved by each method,
//! * (d) whole-procedure comparison of AA / OLAA / OCCR / QuHE on energy,
//!   delay, the security utility and the overall objective.
//!
//! Every whole-procedure method is a registered [`Solver`]; (d) simply
//! iterates the registry, so a custom registered solver would appear as an
//! extra row.
//!
//! ```bash
//! cargo run --release -p quhe-bench --bin fig5_comparison
//! ```

use quhe_bench::{
    default_scenario, display_name, env_u64, experiment_config, fmt, fmt_sci, print_header,
    print_row, solver_registry,
};
use quhe_core::prelude::*;
use rand::SeedableRng;

fn main() {
    let scenario = default_scenario();
    let config = experiment_config();
    let registry = solver_registry();
    let problem = Problem::new(scenario.clone(), config).expect("valid configuration");
    let mut rng = rand::rngs::StdRng::seed_from_u64(env_u64("QUHE_SEED", 42));

    // ------------------------------------------------------------ Fig 5(a) --
    let quhe = registry
        .solve("quhe", &scenario, &SolveSpec::cold())
        .expect("QuHE solves");
    println!("Fig. 5(a): stage calls and running time of the QuHE method\n");
    let widths = [10, 10];
    print_header(&["Quantity", "Value"], &widths);
    print_row(
        &["S1 calls".to_string(), quhe.stage_calls[0].to_string()],
        &widths,
    );
    print_row(
        &["S2 calls".to_string(), quhe.stage_calls[1].to_string()],
        &widths,
    );
    print_row(
        &["S3 calls".to_string(), quhe.stage_calls[2].to_string()],
        &widths,
    );
    print_row(
        &["Runtime".to_string(), format!("{:.2} s", quhe.runtime_s)],
        &widths,
    );
    println!("(paper: one call per stage, 1.5 s total)\n");

    // ------------------------------------------------- Fig 5(b) and 5(c) --
    let stage1 = Stage1Solver::new().solve(&problem).expect("stage 1 solves");
    let gd = stage1_gradient_descent(&problem).expect("gradient descent runs");
    let sa = stage1_simulated_annealing(&problem, &mut rng).expect("simulated annealing runs");
    let rs = stage1_random_selection(&problem, &mut rng).expect("random selection runs");

    println!("Fig. 5(b)/(c): Stage-1 methods — running time and objective value\n");
    let widths = [22, 12, 18];
    print_header(&["Method", "Time (s)", "P3 objective"], &widths);
    print_row(
        &[
            "QuHE Stage 1".to_string(),
            fmt(stage1.runtime_s, 3),
            fmt(stage1.objective, 4),
        ],
        &widths,
    );
    for report in [&gd, &sa, &rs] {
        let telemetry = report.stage1.as_ref().expect("stage-1 telemetry");
        print_row(
            &[
                report.solver.clone(),
                fmt(telemetry.runtime_s, 3),
                fmt(telemetry.objective, 4),
            ],
            &widths,
        );
    }
    println!("(paper: QuHE 0.09 s, GD 5.84 s, SA 4.17 s, RS 0.05 s; QuHE and GD reach the same optimum)\n");

    // ------------------------------------------------------------ Fig 5(d) --
    println!("Fig. 5(d): whole-procedure comparison (energy, delay, U_msl, objective)\n");
    let widths = [6, 14, 14, 10, 12];
    print_header(
        &["Method", "Energy (J)", "Delay (s)", "U_msl", "Objective"],
        &widths,
    );
    for solver in registry.iter() {
        let report = if solver.name() == "quhe" {
            quhe.clone()
        } else {
            solver
                .solve(&scenario, &SolveSpec::cold())
                .unwrap_or_else(|e| panic!("{} runs: {e}", solver.name()))
        };
        print_row(
            &[
                display_name(solver.name()).to_string(),
                fmt_sci(report.metrics.energy_j),
                fmt_sci(report.metrics.delay_s),
                fmt(report.metrics.security_utility, 3),
                fmt(report.metrics.objective, 4),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper shape: QuHE/OCCR best on energy, QuHE/OLAA best on U_msl, QuHE best objective)"
    );

    // -------------------------------------------- security-weight ablation --
    // With the paper's stated constants the computation-energy penalty of a
    // larger polynomial degree always outweighs the (alpha_msl = 1e-2)
    // security gain, so every method settles on lambda = 2^15 and QuHE ties
    // OCCR (see EXPERIMENTS.md). Raising the security weight moves the
    // crossover and recovers the full Fig. 5(d) ordering, which this ablation
    // demonstrates.
    let mut emphasized = config;
    emphasized.weights.security = 0.1;
    println!("\nAblation: same comparison with alpha_msl raised to 0.1\n");
    let widths = [6, 14, 14, 10, 12, 16];
    print_header(
        &[
            "Method",
            "Energy (J)",
            "Delay (s)",
            "U_msl",
            "Objective",
            "lambda choices",
        ],
        &widths,
    );
    for solver in registry.iter() {
        let report = solver
            .with_config(emphasized)
            .solve(&scenario, &SolveSpec::cold())
            .unwrap_or_else(|e| panic!("{} runs: {e}", solver.name()));
        let degrees: Vec<u32> = report
            .variables
            .lambda
            .iter()
            .map(|l| l.trailing_zeros())
            .collect();
        print_row(
            &[
                display_name(solver.name()).to_string(),
                fmt_sci(report.metrics.energy_j),
                fmt_sci(report.metrics.delay_s),
                fmt(report.metrics.security_utility, 3),
                fmt(report.metrics.objective, 4),
                format!("2^{degrees:?}"),
            ],
            &widths,
        );
    }
}
