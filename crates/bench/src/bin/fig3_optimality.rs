//! Regenerates Fig. 3 of the paper: the distribution of final objective
//! values when the QuHE algorithm is started from uniformly sampled initial
//! configurations of bandwidth, power and CPU frequencies.
//!
//! ```bash
//! # paper-scale run (100 samples):
//! QUHE_SAMPLES=100 cargo run --release -p quhe-bench --bin fig3_optimality
//! # default run (20 samples):
//! cargo run --release -p quhe-bench --bin fig3_optimality
//! # CI smoke run (3 samples):
//! cargo run --release -p quhe-bench --bin fig3_optimality -- --quick
//! ```

use quhe_bench::{
    default_scenario, env_u64, env_usize, experiment_config, fmt, print_header, print_row,
};
use quhe_core::prelude::*;
use rand::SeedableRng;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scenario = default_scenario();
    let config = experiment_config();
    let samples = if quick {
        3
    } else {
        env_usize("QUHE_SAMPLES", 20)
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(env_u64("QUHE_SEED", 42));

    println!("Fig. 3: optimality analysis over {samples} random initial configurations\n");

    // Bucket the objectives relative to the observed range, mirroring the
    // paper's fixed buckets ([-25,-10), [-10,-5), [-5,0), [0,5), [5,10),
    // [10,15]); absolute values differ between the paper's testbed and this
    // reproduction, so the buckets are derived from the data.
    let study = OptimalityStudy::run(
        &scenario,
        &config,
        samples,
        Vec::new(), // placeholder, replaced below once the range is known
        &mut rng,
    )
    .unwrap_or_else(|e| panic!("optimality study failed: {e}"));

    let min = study.min();
    let max = study.max();
    let span = (max - min).max(1e-9);
    let edges: Vec<f64> = (0..=6).map(|i| min + span * i as f64 / 6.0).collect();
    let counts = quhe_core::sampling::histogram(&study.objectives, &edges);

    println!("Fig. 3(a): objective value across samples");
    let widths = [7, 14];
    print_header(&["Sample", "Objective"], &widths);
    for (i, value) in study.objectives.iter().enumerate() {
        print_row(&[(i + 1).to_string(), fmt(*value, 4)], &widths);
    }
    println!(
        "\nMax: {:.2}   Min: {:.2}   Mean: {:.2}",
        max,
        min,
        study.mean()
    );

    println!("\nFig. 3(b): distribution of the function values");
    let widths = [22, 6];
    print_header(&["Value range", "Count"], &widths);
    for (i, count) in counts.iter().enumerate() {
        print_row(
            &[
                format!("[{:.2}, {:.2})", edges[i], edges[i + 1]),
                count.to_string(),
            ],
            &widths,
        );
    }

    // The paper's headline statistics: "very good" solutions (top bucket)
    // and "at least good" (top two buckets).
    let top = study.fraction_within(1.0 / 6.0);
    let top_two = study.fraction_within(2.0 / 6.0);
    println!(
        "\n\"very good\" (top sixth of the range)  : {:.0}% of runs",
        top * 100.0
    );
    println!(
        "\"good or better\" (top third of range) : {:.0}% of runs",
        top_two * 100.0
    );
    println!("(paper: 56% very good, 88% good or better, on its absolute buckets)");
}
