//! Sustained-load harness for the framed TCP front end → `BENCH_load.json`.
//!
//! The harness starts a real [`TcpServer`] on a loopback socket and drives
//! it with Zipf-distributed traffic over the scenario catalogue — the
//! serving regime the cache-and-coalesce design targets: a hot head of
//! popular worlds, a long tail, and drift-step near misses that exercise the
//! warm-start path. Three phases, each measured separately:
//!
//! 1. **flash** — every client concurrently requests the *same* never-seen
//!    world: the flash-crowd pattern the singleflight table exists for. The
//!    world must be solved exactly once however the burst interleaves.
//! 2. **closed** — a closed loop: each client sends, waits for the reply,
//!    repeats. Measures per-request latency and the sustainable throughput
//!    at the offered concurrency.
//! 3. **open** — an open loop: clients send at a fixed aggregate rate
//!    without waiting, pipelined on their connections. When the rate
//!    exceeds capacity the bounded admission queue sheds with `overloaded`
//!    envelopes — the shed rate and the p50/p95/p99 of what *was* served are
//!    the headline numbers.
//!
//! ```bash
//! cargo run --release --bin load_bench            # full run
//! cargo run --release --bin load_bench -- --quick # CI smoke
//! ```
//!
//! Knobs (environment): `QUHE_SEED`, `QUHE_LOAD_CLIENTS`,
//! `QUHE_LOAD_REQUESTS` (closed-loop requests per client),
//! `QUHE_LOAD_RATE` (open-loop aggregate requests/s), `QUHE_LOAD_SECONDS`
//! (open-loop duration), `QUHE_LOAD_ZIPF` (popularity exponent),
//! `QUHE_LOAD_SEEDS` (catalogue seeds per world), `QUHE_LOAD_DRIFT_PCT`,
//! `QUHE_LOAD_FRESH_PCT`, `QUHE_LOAD_WORKERS`, `QUHE_LOAD_QUEUE`.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use quhe_bench::report::{grid_envelope, percentile, write};
use quhe_bench::{env_f64, env_u64, env_usize, output_path};
use quhe_core::json::JsonValue;
use quhe_core::params::QuheConfig;
use quhe_serve::wire::{self, read_frame, PROTOCOL_V2};
use quhe_serve::{ServiceConfig, ServiceStats, SolveRequest, TcpServer, WireReply};
use rand::{Rng, SeedableRng};

/// One measured reply, however it came back.
struct Sample {
    /// Seconds from frame write to reply frame.
    latency_s: f64,
    /// The response's cache tag, or the error kind for error envelopes.
    tag: String,
    ok: bool,
}

/// The Zipf request population: catalogue worlds × seeds ranked by
/// popularity, sampled by cumulative weight.
struct Population {
    items: Vec<(String, u64)>,
    cumulative: Vec<f64>,
}

impl Population {
    fn new(worlds: &[String], seeds: &[u64], exponent: f64, rng: &mut impl Rng) -> Self {
        let mut items: Vec<(String, u64)> = worlds
            .iter()
            .flat_map(|w| seeds.iter().map(|&s| (w.clone(), s)))
            .collect();
        // Shuffle so the hot head is not always the first catalogue entry;
        // deterministic under the run seed.
        for i in (1..items.len()).rev() {
            items.swap(i, rng.gen_range(0..=i));
        }
        let mut total = 0.0;
        let cumulative = (0..items.len())
            .map(|rank| {
                total += 1.0 / ((rank + 1) as f64).powf(exponent);
                total
            })
            .collect();
        Self { items, cumulative }
    }

    fn sample(&self, rng: &mut impl Rng) -> &(String, u64) {
        let total = *self.cumulative.last().expect("non-empty population");
        let u = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= u);
        &self.items[idx.min(self.items.len() - 1)]
    }
}

/// Draws the next request of the Zipf mix: mostly popular catalogue worlds,
/// `drift_pct` drift-step near misses, `fresh_pct` never-seen seeds.
fn draw_request(
    population: &Population,
    drift_pct: usize,
    fresh_pct: usize,
    fresh_counter: &mut u64,
    base_seed: u64,
    rng: &mut impl Rng,
) -> SolveRequest {
    let (world, seed) = population.sample(rng).clone();
    let roll = rng.gen_range(0..100);
    if roll < fresh_pct {
        *fresh_counter += 1;
        SolveRequest::catalog(&world, base_seed + 500_000 + *fresh_counter)
    } else if roll < fresh_pct + drift_pct {
        SolveRequest::drifted(&world, seed, rng.gen_range(1..=3))
    } else {
        SolveRequest::catalog(&world, seed)
    }
}

fn connect(server: &TcpServer) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connecting to the loopback");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    stream
}

/// Synchronous roundtrip of one request; panics on transport errors (the
/// harness fails loudly, like every experiment binary).
fn roundtrip(stream: &mut TcpStream, request: &SolveRequest) -> Sample {
    let body = request.to_json();
    let started = Instant::now();
    wire::write_frame(stream, body.as_bytes()).expect("writing a request frame");
    let frame = read_frame(stream)
        .expect("reading a reply frame")
        .expect("the server must answer");
    let latency_s = started.elapsed().as_secs_f64();
    match WireReply::from_json(std::str::from_utf8(&frame).unwrap()).expect("parsing the reply") {
        WireReply::Ok(response) => Sample {
            latency_s,
            tag: response.cache.tag().to_string(),
            ok: true,
        },
        WireReply::Err { kind, .. } => Sample {
            latency_s,
            tag: kind,
            ok: false,
        },
    }
}

/// Aggregates one phase's samples into the report's phase block.
struct PhaseOutcome {
    samples: Vec<Sample>,
    wall_s: f64,
    stats_delta: StatsDelta,
    max_queue_depth: usize,
}

struct StatsDelta {
    exact_hits: usize,
    warm: usize,
    cold_solves: usize,
    coalesced: usize,
}

fn stats_delta(before: &ServiceStats, after: &ServiceStats) -> StatsDelta {
    StatsDelta {
        exact_hits: after.exact_hits - before.exact_hits,
        warm: (after.warm_hits + after.warm_fallbacks) - (before.warm_hits + before.warm_fallbacks),
        cold_solves: after.cold_solves - before.cold_solves,
        coalesced: after.coalesced - before.coalesced,
    }
}

fn phase_json(name: &str, outcome: &PhaseOutcome, offered: usize) -> JsonValue {
    let served: Vec<&Sample> = outcome.samples.iter().filter(|s| s.ok).collect();
    let shed = outcome
        .samples
        .iter()
        .filter(|s| !s.ok && s.tag == "overloaded")
        .count();
    let other_errors = outcome.samples.len() - served.len() - shed;
    let mut latencies: Vec<f64> = served.iter().map(|s| s.latency_s).collect();
    latencies.sort_by(f64::total_cmp);
    let mut split: HashMap<&str, usize> = HashMap::new();
    for sample in &served {
        *split.entry(sample.tag.as_str()).or_default() += 1;
    }
    let split_count = |tag: &str| JsonValue::from_usize(split.get(tag).copied().unwrap_or(0));
    JsonValue::object()
        .with("phase", JsonValue::String(name.to_string()))
        .with("offered", JsonValue::from_usize(offered))
        .with("served", JsonValue::from_usize(served.len()))
        .with("shed", JsonValue::from_usize(shed))
        .with("other_errors", JsonValue::from_usize(other_errors))
        .with(
            "shed_rate",
            JsonValue::from_f64(shed as f64 / offered.max(1) as f64),
        )
        .with("wall_s", JsonValue::from_f64(outcome.wall_s))
        .with(
            "sustained_rps",
            JsonValue::from_f64(served.len() as f64 / outcome.wall_s),
        )
        .with(
            "offered_rps",
            JsonValue::from_f64(offered as f64 / outcome.wall_s),
        )
        .with(
            "cache_split",
            JsonValue::object()
                .with("hit", split_count("hit"))
                .with("warm", split_count("warm"))
                .with("warm_fallback", split_count("warm_fallback"))
                .with("cold", split_count("cold"))
                .with("coalesced", split_count("coalesced")),
        )
        .with(
            "service_counters",
            JsonValue::object()
                .with(
                    "exact_hits",
                    JsonValue::from_usize(outcome.stats_delta.exact_hits),
                )
                .with("warm", JsonValue::from_usize(outcome.stats_delta.warm))
                .with(
                    "cold_solves",
                    JsonValue::from_usize(outcome.stats_delta.cold_solves),
                )
                .with(
                    "coalesced",
                    JsonValue::from_usize(outcome.stats_delta.coalesced),
                ),
        )
        .with(
            "max_queue_depth",
            JsonValue::from_usize(outcome.max_queue_depth),
        )
        .with(
            "latency_s",
            JsonValue::object()
                .with("p50", JsonValue::from_f64(percentile(&latencies, 0.50)))
                .with("p95", JsonValue::from_f64(percentile(&latencies, 0.95)))
                .with("p99", JsonValue::from_f64(percentile(&latencies, 0.99)))
                .with(
                    "mean",
                    JsonValue::from_f64(if latencies.is_empty() {
                        f64::NAN
                    } else {
                        latencies.iter().sum::<f64>() / latencies.len() as f64
                    }),
                )
                .with(
                    "max",
                    JsonValue::from_f64(latencies.last().copied().unwrap_or(f64::NAN)),
                ),
        )
}

/// Runs `body` while a monitor thread tracks the queue's high-water mark
/// over the phase.
fn measured_phase(server: &TcpServer, body: impl FnOnce() -> Vec<Sample>) -> PhaseOutcome {
    let before = server.service().stats();
    let high_before = server.stats().max_queue_depth;
    let stop = AtomicBool::new(false);
    let (samples, wall_s, sampled_depth) = std::thread::scope(|scope| {
        let monitor = scope.spawn(|| {
            let mut max_depth = 0usize;
            while !stop.load(Ordering::SeqCst) {
                max_depth = max_depth.max(server.stats().queue_depth);
                std::thread::sleep(Duration::from_millis(2));
            }
            max_depth
        });
        let wall = Instant::now();
        let samples = body();
        let wall_s = wall.elapsed().as_secs_f64();
        stop.store(true, Ordering::SeqCst);
        (samples, wall_s, monitor.join().expect("queue monitor"))
    });
    // The server's high-water mark is exact but global; it attributes to
    // this phase only when it moved. The 2ms sampler catches the rest.
    let high_after = server.stats().max_queue_depth;
    let max_queue_depth = if high_after > high_before {
        sampled_depth.max(high_after)
    } else {
        sampled_depth
    };
    PhaseOutcome {
        samples,
        wall_s,
        stats_delta: stats_delta(&before, &server.service().stats()),
        max_queue_depth,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = output_path(&args, "BENCH_load.json");

    let base_seed = env_u64("QUHE_SEED", 42);
    let clients = env_usize("QUHE_LOAD_CLIENTS", if quick { 4 } else { 8 }).max(1);
    let closed_requests = env_usize("QUHE_LOAD_REQUESTS", if quick { 6 } else { 25 }).max(1);
    let open_rate = env_f64("QUHE_LOAD_RATE", if quick { 120.0 } else { 150.0 }).max(1.0);
    let open_seconds = env_f64("QUHE_LOAD_SECONDS", if quick { 1.5 } else { 8.0 }).max(0.1);
    let zipf = env_f64("QUHE_LOAD_ZIPF", 1.1);
    let num_seeds = env_usize("QUHE_LOAD_SEEDS", 3).max(1);
    let drift_pct = env_usize("QUHE_LOAD_DRIFT_PCT", 25).min(100);
    let fresh_pct = env_usize("QUHE_LOAD_FRESH_PCT", 10).min(100 - drift_pct);
    // More workers than cores is deliberate: workers blocked on a coalesced
    // flight cost nothing, and extra workers keep hits flowing while a cold
    // solve occupies a core.
    let workers = env_usize("QUHE_LOAD_WORKERS", 4).max(1);
    let queue_bound = env_usize("QUHE_LOAD_QUEUE", if quick { 8 } else { 16 }).max(1);

    let config = QuheConfig {
        max_outer_iterations: if quick { 2 } else { 4 },
        max_stage3_iterations: if quick { 8 } else { 30 },
        tolerance: 1e-3,
        solver_threads: 1,
        ..QuheConfig::default()
    };
    let service = Arc::new(
        ServiceConfig::new(config)
            .with_worker_threads(workers)
            .with_queue_bound(queue_bound)
            .build(),
    );
    let catalog_names: Vec<String> = service
        .catalog()
        .names()
        .iter()
        .map(ToString::to_string)
        .collect();
    let seeds: Vec<u64> = (0..num_seeds as u64).map(|i| base_seed + i).collect();
    let server = TcpServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    eprintln!(
        "load_bench: {} on {} workers, queue bound {queue_bound}, {clients} clients \
         (zipf s={zipf}, {drift_pct}% drift, {fresh_pct}% fresh{})",
        server.local_addr(),
        workers,
        if quick { ", quick budgets" } else { "" }
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed ^ 0x10ad_be7c_0ffe_e000);
    let population = Population::new(&catalog_names, &seeds, zipf, &mut rng);

    // Phase 1: flash crowd. Every client asks for the same never-seen world
    // at the same moment; the singleflight table must collapse the burst to
    // one solve.
    eprintln!("load_bench: flash phase ({clients} identical concurrent requests)");
    let flash = measured_phase(&server, || {
        let barrier = Arc::new(Barrier::new(clients));
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let barrier = Arc::clone(&barrier);
                    let server = &server;
                    scope.spawn(move || {
                        let mut stream = connect(server);
                        let request = SolveRequest::catalog("paper_default", base_seed + 900_001)
                            .with_id(&format!("flash-{c}"));
                        barrier.wait();
                        roundtrip(&mut stream, &request)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    });
    assert_eq!(
        flash.stats_delta.cold_solves, 1,
        "a flash crowd must collapse to exactly one solve"
    );

    // Phase 2: closed loop over the Zipf mix.
    eprintln!("load_bench: closed phase ({clients} clients x {closed_requests} requests)");
    let closed_offered = clients * closed_requests;
    // Per-client deterministic streams, drawn up front so the timed loop is
    // pure send/receive.
    let mut fresh_counter = 0u64;
    let closed_streams: Vec<Vec<SolveRequest>> = (0..clients)
        .map(|_| {
            (0..closed_requests)
                .map(|_| {
                    draw_request(
                        &population,
                        drift_pct,
                        fresh_pct,
                        &mut fresh_counter,
                        base_seed,
                        &mut rng,
                    )
                })
                .collect()
        })
        .collect();
    let closed = measured_phase(&server, || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = closed_streams
                .iter()
                .map(|requests| {
                    let server = &server;
                    scope.spawn(move || {
                        let mut stream = connect(server);
                        requests
                            .iter()
                            .map(|request| roundtrip(&mut stream, request))
                            .collect::<Vec<Sample>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    });

    // Phase 3: open loop at a fixed aggregate rate — requests are pipelined
    // without waiting, so the admission queue, not the client, is the
    // backpressure point.
    let open_per_client = ((open_rate * open_seconds / clients as f64).ceil() as usize).max(1);
    let open_offered = open_per_client * clients;
    let interval = Duration::from_secs_f64(clients as f64 / open_rate);
    eprintln!(
        "load_bench: open phase ({open_offered} requests at {open_rate:.0} rps over \
         ~{open_seconds:.1}s)"
    );
    let open_streams: Vec<Vec<SolveRequest>> = (0..clients)
        .map(|client| {
            (0..open_per_client)
                .map(|seq| {
                    draw_request(
                        &population,
                        drift_pct,
                        fresh_pct,
                        &mut fresh_counter,
                        base_seed,
                        &mut rng,
                    )
                    .with_id(&format!("o{client}-{seq}"))
                })
                .collect()
        })
        .collect();
    let open = measured_phase(&server, || {
        std::thread::scope(|scope| {
            let handles: Vec<_> = open_streams
                .iter()
                .enumerate()
                .map(|(client, requests)| {
                    let server = &server;
                    scope.spawn(move || {
                        let mut stream = connect(server);
                        let mut reader = stream.try_clone().expect("cloning the socket");
                        let send_times: Arc<Mutex<Vec<Instant>>> =
                            Arc::new(Mutex::new(Vec::with_capacity(requests.len())));
                        let expected = requests.len();
                        let reader_times = Arc::clone(&send_times);
                        let reader_handle = scope.spawn(move || {
                            let mut samples = Vec::with_capacity(expected);
                            while samples.len() < expected {
                                let frame = read_frame(&mut reader)
                                    .expect("reading a reply frame")
                                    .expect("a reply per request");
                                let now = Instant::now();
                                let reply =
                                    WireReply::from_json(std::str::from_utf8(&frame).unwrap())
                                        .expect("parsing the reply");
                                let (id, tag, ok) = match &reply {
                                    WireReply::Ok(response) => (
                                        response.id.clone(),
                                        response.cache.tag().to_string(),
                                        true,
                                    ),
                                    WireReply::Err { id, kind, .. } => {
                                        (id.clone(), kind.clone(), false)
                                    }
                                };
                                let seq: usize = id
                                    .as_deref()
                                    .and_then(|i| i.rsplit('-').next())
                                    .and_then(|s| s.parse().ok())
                                    .expect("replies echo the sequenced id");
                                let sent = reader_times.lock().unwrap()[seq];
                                samples.push(Sample {
                                    latency_s: now.duration_since(sent).as_secs_f64(),
                                    tag,
                                    ok,
                                });
                            }
                            samples
                        });
                        // Paced, staggered sends: client k fires at
                        // (k/C + n) * interval.
                        let start =
                            Instant::now() + interval.mul_f64(client as f64 / clients as f64);
                        for (seq, request) in requests.iter().enumerate() {
                            let due = start + interval.mul_f64(seq as f64);
                            let now = Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                            let body = request.to_json();
                            send_times.lock().unwrap().push(Instant::now());
                            wire::write_frame(&mut stream, body.as_bytes())
                                .expect("writing a paced frame");
                        }
                        reader_handle.join().unwrap()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        })
    });

    // Every reply that was not served must be the structured shed envelope:
    // the server's own shed counter corroborates the client-observed count.
    let observed_shed = open
        .samples
        .iter()
        .filter(|s| s.tag == "overloaded")
        .count()
        + closed
            .samples
            .iter()
            .filter(|s| s.tag == "overloaded")
            .count();
    let net = server.stats();
    assert_eq!(
        net.shed, observed_shed,
        "every shed request must be answered with the overloaded envelope"
    );
    assert!(
        open.samples.iter().all(|s| s.ok || s.tag == "overloaded"),
        "open-loop errors must all be shed envelopes"
    );

    let totals = service.stats();
    let document = grid_envelope(
        "quhe-load/v1",
        if quick { "quick" } else { "full" },
        "quhe",
        &catalog_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &seeds,
    )
    .with("wire_proto", JsonValue::String(PROTOCOL_V2.to_string()))
    .with("clients", JsonValue::from_usize(clients))
    .with("workers", JsonValue::from_usize(workers))
    .with("queue_bound", JsonValue::from_usize(queue_bound))
    .with("zipf_exponent", JsonValue::from_f64(zipf))
    .with("drift_pct", JsonValue::from_usize(drift_pct))
    .with("fresh_pct", JsonValue::from_usize(fresh_pct))
    .with(
        "phases",
        JsonValue::Array(vec![
            phase_json("flash", &flash, clients),
            phase_json("closed", &closed, closed_offered),
            phase_json("open", &open, open_offered),
        ]),
    )
    .with(
        "service_totals",
        JsonValue::object()
            .with("exact_hits", JsonValue::from_usize(totals.exact_hits))
            .with("warm_hits", JsonValue::from_usize(totals.warm_hits))
            .with(
                "warm_fallbacks",
                JsonValue::from_usize(totals.warm_fallbacks),
            )
            .with("cold_solves", JsonValue::from_usize(totals.cold_solves))
            .with("coalesced", JsonValue::from_usize(totals.coalesced))
            .with(
                "cached_reports",
                JsonValue::from_usize(totals.cached_reports),
            ),
    )
    // The cache's own telemetry, one consistent snapshot under the cache
    // lock: hits + misses equals lookups, insertions - evictions equals
    // entries, even while the worker pool is mid-flight.
    .with("cache", totals.cache.to_json_value())
    .with(
        "net",
        JsonValue::object()
            .with("connections", JsonValue::from_usize(net.connections))
            .with("frames", JsonValue::from_usize(net.frames))
            .with("responses", JsonValue::from_usize(net.responses))
            .with("shed", JsonValue::from_usize(net.shed))
            .with(
                "rejected_frames",
                JsonValue::from_usize(net.rejected_frames),
            )
            .with(
                "max_queue_depth",
                JsonValue::from_usize(net.max_queue_depth),
            ),
    )
    .with("shed_envelopes_match", JsonValue::Bool(true));

    server.shutdown();
    write(&out_path, &document);
}
