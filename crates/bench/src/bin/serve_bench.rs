//! Serve-layer benchmark: replays a catalogue-derived request stream through
//! the `quhe-serve` [`SolveService`] and measures what the cache buys.
//!
//! The stream mixes three request kinds over every world of
//! [`ScenarioCatalog::builtin`] across a seed grid:
//!
//! * **duplicates** — exact repeats of a base request (the content-addressed
//!   exact-hit path: zero solver work, bit-identical responses);
//! * **drifted** — the same worlds after 1–3 steps of the serve protocol's
//!   fixed ±1 % drift model (the shape-fingerprint warm-start path, guarded
//!   by the cold single-start floor);
//! * **fresh** — previously unseen seeds (the cold path).
//!
//! The service is warmed with one cold solve per (world, seed) base request,
//! then the stream is replayed on the worker pool and `BENCH_serve.json`
//! (schema `quhe-serve/v1`) is emitted through the shared report writer:
//! cache split, throughput, p50/p95/mean per-request latency, and the
//! warm-vs-cold outer-iteration saving measured against from-scratch
//! reference solves of every warm-served scenario. The warm bill is the
//! response's *path* iterations (warm solve plus any cold fallback); the
//! floor guard's iterations are reported separately, mirroring the online
//! engine's accounting. The run fails loudly if any exact hit is not
//! bit-identical to a solved response for the same request, or if warm
//! serving did not save latency-path iterations.
//!
//! After the replay the bench **restarts** the service from a cache
//! snapshot: the warmed cache is serialized through its JSON disk format
//! (`quhe-cache-snapshot/v1`), parsed back, and handed to a fresh
//! [`ServiceConfig`] via `with_cache_snapshot`. The restarted service must
//! answer the entire working set — every unique request the original
//! service solved — as exact hits with **zero cold solves**, bit-identical
//! to the pre-restart responses; the artifact's `restart` block records the
//! snapshot size and the replay. The cache's own telemetry (lookups, hits,
//! evictions, anchor promotions) lands in the artifact's `cache` block.
//!
//! ```bash
//! cargo run --release -p quhe-bench --bin serve_bench            # full stream
//! cargo run --release -p quhe-bench --bin serve_bench -- --quick # CI budgets
//! cargo run --release -p quhe-bench --bin serve_bench -- out.json
//! ```
//!
//! Environment: `QUHE_SEED` (base seed, default 42), `QUHE_SERVE_REQUESTS`
//! (stream length, default 150 full / 40 quick), `QUHE_SERVE_THREADS`
//! (worker count, default 0 = machine parallelism), `QUHE_SERVE_SEEDS`
//! (base seeds per scenario, default 2), `QUHE_SERVE_DUP_PCT` /
//! `QUHE_SERVE_DRIFT_PCT` (stream mix in percent, defaults 40 / 40; the
//! remainder is fresh).

use std::collections::HashMap;
use std::time::Instant;

use quhe_bench::report::{grid_envelope, percentile, write};
use quhe_bench::{env_u64, env_usize, output_path};
use quhe_core::fingerprint::{DRIFT_DIST_FMT, SCENARIO_FMT};
use quhe_core::prelude::*;
use quhe_serve::cache::SNAPSHOT_SCHEMA;
use quhe_serve::prelude::*;
use rand::{Rng, SeedableRng};

/// Percentile over a sorted slice (nearest-rank).
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = output_path(&args, "BENCH_serve.json");

    let base_seed = env_u64("QUHE_SEED", 42);
    let num_seeds = env_usize("QUHE_SERVE_SEEDS", 2).max(1);
    let requests_len = env_usize("QUHE_SERVE_REQUESTS", if quick { 40 } else { 150 }).max(1);
    let threads = env_usize("QUHE_SERVE_THREADS", 0);
    let dup_pct = env_usize("QUHE_SERVE_DUP_PCT", 40).min(100);
    let drift_pct = env_usize("QUHE_SERVE_DRIFT_PCT", 40).min(100 - dup_pct);
    let seeds: Vec<u64> = (0..num_seeds as u64).map(|i| base_seed + i).collect();

    // The online_eval configuration: coarse tracking-friendly tolerance,
    // full Stage-3 budgets, serial per-solve (concurrency comes from the
    // request shards, not from inside one solve).
    let config = QuheConfig {
        max_outer_iterations: if quick { 4 } else { 6 },
        max_stage3_iterations: if quick { 30 } else { 40 },
        tolerance: 1e-3,
        solver_threads: 1,
        ..QuheConfig::default()
    };
    let service = ServiceConfig::new(config).build();
    let catalog_names: Vec<String> = service
        .catalog()
        .names()
        .iter()
        .map(ToString::to_string)
        .collect();

    // Base requests: one per (world, seed). They are served once, serially,
    // before the timed replay, so the stream measures a warmed service —
    // duplicates are provable exact hits and drifted requests always find a
    // same-shape anchor.
    let base: Vec<SolveRequest> = catalog_names
        .iter()
        .flat_map(|name| seeds.iter().map(|&seed| SolveRequest::catalog(name, seed)))
        .collect();
    eprintln!(
        "serve_bench: warming {} base requests ({} worlds x {} seeds)",
        base.len(),
        catalog_names.len(),
        seeds.len()
    );
    let warmup_wall = Instant::now();
    let warmup_responses: Vec<SolveResponse> = base
        .iter()
        .map(|request| {
            service
                .handle(request)
                .unwrap_or_else(|e| panic!("warm-up solve failed: {e}"))
        })
        .collect();
    let warmup_s = warmup_wall.elapsed().as_secs_f64();

    // The replay stream: duplicate / drifted / fresh slots drawn from a
    // seed-deterministic RNG.
    let mut rng = rand::rngs::StdRng::seed_from_u64(base_seed ^ 0x5e7e_b19c_0ffe_e000);
    let mut fresh_counter = 0u64;
    let stream: Vec<(&'static str, SolveRequest)> = (0..requests_len)
        .map(|_| {
            let world = &catalog_names[rng.gen_range(0..catalog_names.len())];
            let seed = seeds[rng.gen_range(0..seeds.len())];
            let roll = rng.gen_range(0..100);
            if roll < dup_pct {
                ("duplicate", SolveRequest::catalog(world, seed))
            } else if roll < dup_pct + drift_pct {
                let step = rng.gen_range(1..=3);
                ("drifted", SolveRequest::drifted(world, seed, step))
            } else {
                fresh_counter += 1;
                (
                    "fresh",
                    SolveRequest::catalog(world, base_seed + 1000 + fresh_counter),
                )
            }
        })
        .collect();
    let requests: Vec<SolveRequest> = stream.iter().map(|(_, r)| r.clone()).collect();
    eprintln!(
        "serve_bench: replaying {requests_len} requests ({dup_pct}% duplicate, {drift_pct}% \
         drifted) on {} threads{}",
        if threads == 0 {
            threadpool::available_parallelism()
        } else {
            threads
        },
        if quick { " (quick budgets)" } else { "" }
    );

    let replay_wall = Instant::now();
    let responses = service.handle_batch(&requests, threads);
    let replay_s = replay_wall.elapsed().as_secs_f64();
    let responses: Vec<SolveResponse> = responses
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("serve failed: {e}")))
        .collect();

    // Exact-hit verification: a hit returns a cached report, and every
    // cached report was first returned by the (warm-up or replay) response
    // that solved and inserted it. So each hit must be bit-identical —
    // including the producing solve's runtime_s, which the cache never
    // rewrites — to *some* solved (non-hit) response for the same request.
    // Under the concurrent replay, racing duplicates can produce more than
    // one solved response per request (the cache keeps the first insert),
    // which is why the check is membership, not first-in-request-order.
    let mut solved_by_request: HashMap<String, Vec<&SolveResponse>> = HashMap::new();
    for (request, response) in base.iter().zip(&warmup_responses) {
        solved_by_request
            .entry(request.to_json())
            .or_default()
            .push(response);
    }
    for (request, response) in requests.iter().zip(&responses) {
        if response.cache != CacheOutcome::Hit {
            solved_by_request
                .entry(request.to_json())
                .or_default()
                .push(response);
        }
    }
    let mut hits_verified = 0usize;
    for (request, response) in requests.iter().zip(&responses) {
        if response.cache != CacheOutcome::Hit {
            continue;
        }
        let key = request.to_json();
        let producers = solved_by_request.get(&key).map_or(&[][..], Vec::as_slice);
        assert!(
            producers.iter().any(|p| {
                p.report == response.report
                    && p.report.runtime_s.to_bits() == response.report.runtime_s.to_bits()
            }),
            "exact hit for {key} matches no solved response (the cache rewrote a report?)"
        );
        hits_verified += 1;
    }

    // Warm-vs-cold iteration saving: re-solve every warm-served scenario
    // from scratch (outside the timed replay), deduplicated by fingerprint.
    // The warm bill uses the response's *path* iterations — the warm solve
    // plus any cold fallback, the same accounting as the online engine —
    // and the floor guard's iterations are summed separately (the guard is
    // an independent single-start solve a deployment can run off the
    // latency path).
    let solver = service.registry().resolve("quhe").expect("built-in");
    let mut cold_reference: HashMap<u128, SolveReport> = HashMap::new();
    let mut warm_iters = 0usize;
    let mut guard_iters = 0usize;
    let mut cold_iters = 0usize;
    let mut warm_responses = 0usize;
    for (request, response) in requests.iter().zip(&responses) {
        if !matches!(
            response.cache,
            CacheOutcome::Warm | CacheOutcome::WarmFallback
        ) {
            continue;
        }
        warm_responses += 1;
        warm_iters += response.path_outer_iterations;
        guard_iters += response.guard_outer_iterations;
        if let std::collections::hash_map::Entry::Vacant(slot) =
            cold_reference.entry(response.fingerprint.as_u128())
        {
            let scenario = service
                .resolve_scenario(&request.scenario)
                .expect("already resolved once");
            let cold = solver
                .solve(&scenario, &request.spec)
                .unwrap_or_else(|e| panic!("cold reference solve failed: {e}"));
            slot.insert(cold);
        }
    }
    // Every occurrence of a warm-served scenario counts its reference once,
    // mirroring how the warm responses are counted.
    for response in &responses {
        if matches!(
            response.cache,
            CacheOutcome::Warm | CacheOutcome::WarmFallback
        ) {
            cold_iters += cold_reference[&response.fingerprint.as_u128()].outer_iterations;
        }
    }

    // Restart demonstration: snapshot the warmed cache, push it through its
    // JSON disk format (serialize + re-parse, exactly what a deployment
    // writing the snapshot to disk would do), and boot a fresh service from
    // the parsed text. The restarted service must answer the full working
    // set — every unique request the original service solved — as exact
    // hits with zero solver work, bit-identical to the pre-restart
    // responses.
    let snapshot_text = service.cache().snapshot().to_compact_string();
    let snapshot_entries = service.cache().len();
    let restarted = ServiceConfig::new(config)
        .with_cache_snapshot(JsonValue::parse(&snapshot_text).expect("snapshot text re-parses"))
        .build();
    let mut seen_requests = std::collections::HashSet::new();
    let working_set: Vec<&SolveRequest> = base
        .iter()
        .chain(&requests)
        .filter(|request| seen_requests.insert(request.to_json()))
        .collect();
    eprintln!(
        "serve_bench: restart replay of {} unique requests from a {}-entry snapshot ({} bytes)",
        working_set.len(),
        snapshot_entries,
        snapshot_text.len()
    );
    let restart_wall = Instant::now();
    for request in &working_set {
        let response = restarted
            .handle(request)
            .unwrap_or_else(|e| panic!("restart replay failed: {e}"));
        assert_eq!(
            response.cache,
            CacheOutcome::Hit,
            "restarted service did not answer {} from the snapshot",
            request.to_json()
        );
        let producers = solved_by_request
            .get(&request.to_json())
            .map_or(&[][..], Vec::as_slice);
        assert!(
            producers.iter().any(|p| {
                p.report == response.report
                    && p.report.runtime_s.to_bits() == response.report.runtime_s.to_bits()
            }),
            "restart hit for {} is not bit-identical to a pre-restart response",
            request.to_json()
        );
    }
    let restart_replay_s = restart_wall.elapsed().as_secs_f64();
    let restart_stats = restarted.stats();
    assert_eq!(
        restart_stats.cold_solves, 0,
        "the snapshot-restored service cold-solved part of its working set"
    );
    assert_eq!(
        restart_stats.warm_hits + restart_stats.warm_fallbacks,
        0,
        "the snapshot-restored service warm-solved part of its working set"
    );
    assert_eq!(restart_stats.exact_hits, working_set.len());

    let stats = service.stats();
    let count = |outcome: CacheOutcome| responses.iter().filter(|r| r.cache == outcome).count();
    let (hits, warm, fallback, cold, coalesced) = (
        count(CacheOutcome::Hit),
        count(CacheOutcome::Warm),
        count(CacheOutcome::WarmFallback),
        count(CacheOutcome::Cold),
        count(CacheOutcome::Coalesced),
    );

    let mut latencies: Vec<f64> = responses.iter().map(|r| r.service_wall_s).collect();
    latencies.sort_by(f64::total_cmp);
    let mean_latency = latencies.iter().sum::<f64>() / latencies.len() as f64;
    let kind_mean = |outcome: CacheOutcome| {
        let walls: Vec<f64> = responses
            .iter()
            .filter(|r| r.cache == outcome)
            .map(|r| r.service_wall_s)
            .collect();
        if walls.is_empty() {
            f64::NAN
        } else {
            walls.iter().sum::<f64>() / walls.len() as f64
        }
    };

    let request_values: Vec<JsonValue> = stream
        .iter()
        .zip(&responses)
        .map(|((kind, request), response)| {
            let mut value = JsonValue::object()
                .with("requested", JsonValue::String((*kind).to_string()))
                .with("request", request.scenario.to_json_value())
                .with("cache", JsonValue::String(response.cache.tag().to_string()))
                .with("wall_s", JsonValue::from_f64(response.service_wall_s))
                .with(
                    "outer_iterations",
                    JsonValue::from_usize(response.path_outer_iterations),
                )
                .with(
                    "guard_outer_iterations",
                    JsonValue::from_usize(response.guard_outer_iterations),
                )
                .with("objective", JsonValue::from_f64(response.report.objective));
            if matches!(
                response.cache,
                CacheOutcome::Warm | CacheOutcome::WarmFallback
            ) {
                value.set(
                    "cold_outer_iterations",
                    JsonValue::from_usize(
                        cold_reference[&response.fingerprint.as_u128()].outer_iterations,
                    ),
                );
            }
            value
        })
        .collect();

    let document = grid_envelope(
        "quhe-serve/v1",
        if quick { "quick" } else { "full" },
        "quhe",
        &catalog_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &seeds,
    )
    .with(
        "fingerprint_fmt",
        JsonValue::String(SCENARIO_FMT.to_string()),
    )
    .with(
        "drift_dist_fmt",
        JsonValue::String(DRIFT_DIST_FMT.to_string()),
    )
    .with(
        "snapshot_schema",
        JsonValue::String(SNAPSHOT_SCHEMA.to_string()),
    )
    .with("threads", JsonValue::from_usize(threads))
    .with("requests", JsonValue::from_usize(requests_len))
    .with("duplicate_pct", JsonValue::from_usize(dup_pct))
    .with("drift_pct", JsonValue::from_usize(drift_pct))
    .with("warmup_solves", JsonValue::from_usize(base.len()))
    .with("warmup_wall_s", JsonValue::from_f64(warmup_s))
    .with("replay_wall_s", JsonValue::from_f64(replay_s))
    .with(
        "throughput_rps",
        JsonValue::from_f64(requests_len as f64 / replay_s),
    )
    .with(
        "cache_split",
        JsonValue::object()
            .with("hit", JsonValue::from_usize(hits))
            .with("warm", JsonValue::from_usize(warm))
            .with("warm_fallback", JsonValue::from_usize(fallback))
            .with("cold", JsonValue::from_usize(cold))
            .with("coalesced", JsonValue::from_usize(coalesced)),
    )
    .with(
        "hit_fraction",
        JsonValue::from_f64(hits as f64 / requests_len as f64),
    )
    .with(
        "warm_fraction",
        JsonValue::from_f64((warm + fallback) as f64 / requests_len as f64),
    )
    .with(
        "latency_s",
        JsonValue::object()
            .with("p50", JsonValue::from_f64(percentile(&latencies, 0.50)))
            .with("p95", JsonValue::from_f64(percentile(&latencies, 0.95)))
            .with("mean", JsonValue::from_f64(mean_latency))
            .with("max", JsonValue::from_f64(*latencies.last().unwrap()))
            .with(
                "hit_mean",
                JsonValue::from_f64(kind_mean(CacheOutcome::Hit)),
            )
            .with(
                "warm_mean",
                JsonValue::from_f64(kind_mean(CacheOutcome::Warm)),
            )
            .with(
                "cold_mean",
                JsonValue::from_f64(kind_mean(CacheOutcome::Cold)),
            ),
    )
    .with(
        "warm_vs_cold",
        JsonValue::object()
            .with("warm_responses", JsonValue::from_usize(warm_responses))
            // Path iterations: the warm solve plus any cold fallback — the
            // full latency-path bill of warm serving.
            .with("warm_outer_iterations", JsonValue::from_usize(warm_iters))
            // Floor-guard iterations, billed separately: an independent
            // single-start solve per warm-served request, deployable off
            // the latency path.
            .with("guard_outer_iterations", JsonValue::from_usize(guard_iters))
            .with("cold_outer_iterations", JsonValue::from_usize(cold_iters))
            .with(
                "iteration_saving_fraction",
                JsonValue::from_f64(if cold_iters > 0 {
                    1.0 - warm_iters as f64 / cold_iters as f64
                } else {
                    f64::NAN
                }),
            ),
    )
    .with(
        "hits_verified_bit_identical",
        JsonValue::from_usize(hits_verified),
    )
    .with(
        "cached_reports",
        JsonValue::from_usize(stats.cached_reports),
    )
    // The cache's own telemetry, one consistent snapshot: hits + misses
    // equals lookups exactly, insertions - evictions equals entries.
    .with("cache", stats.cache.to_json_value())
    .with(
        "restart",
        JsonValue::object()
            .with("snapshot_entries", JsonValue::from_usize(snapshot_entries))
            .with("snapshot_bytes", JsonValue::from_usize(snapshot_text.len()))
            .with(
                "replayed_requests",
                JsonValue::from_usize(working_set.len()),
            )
            .with("hits", JsonValue::from_usize(restart_stats.exact_hits))
            .with(
                "cold_solves",
                JsonValue::from_usize(restart_stats.cold_solves),
            )
            .with(
                "warm_solves",
                JsonValue::from_usize(restart_stats.warm_hits + restart_stats.warm_fallbacks),
            )
            .with("replay_wall_s", JsonValue::from_f64(restart_replay_s))
            .with("cache", restart_stats.cache.to_json_value()),
    )
    .with("requests_log", JsonValue::Array(request_values));
    write(&out_path, &document);

    // Standing invariants of the serve layer, enforced on every run: the
    // stream must exercise the exact-hit path (verified bit-identical above)
    // and the warm path, and warm serving must save outer iterations over
    // from-scratch solves of the same scenarios.
    assert!(hits >= 1, "the stream produced no exact cache hits");
    assert!(
        warm + fallback >= 1,
        "the stream produced no warm-served responses"
    );
    assert!(
        warm_iters < cold_iters,
        "warm serving spent {warm_iters} path outer iterations, cold references {cold_iters}"
    );
    eprintln!(
        "serve_bench: {requests_len} requests in {replay_s:.3}s ({:.1} req/s) — \
         {hits} hit / {warm} warm / {fallback} fallback / {cold} cold; \
         p50 {:.4}s p95 {:.4}s; warm path {warm_iters} (+{guard_iters} guard) vs cold \
         {cold_iters} outer iterations ({:.0}% saved on the latency path); \
         restart answered {} requests as hits with 0 cold solves in {restart_replay_s:.3}s",
        requests_len as f64 / replay_s,
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        100.0 * (1.0 - warm_iters as f64 / cold_iters.max(1) as f64),
        working_set.len(),
    );
}
