//! Regenerates Tables V and VI of the paper: the optimal entanglement rates
//! `phi` and Werner parameters `w` obtained by QuHE Stage 1, gradient
//! descent, simulated annealing and random selection.
//!
//! ```bash
//! cargo run --release -p quhe-bench --bin tables_5_6
//! ```

use quhe_bench::{default_scenario, env_u64, experiment_config, fmt, print_header, print_row};
use quhe_core::prelude::*;
use rand::SeedableRng;

fn main() {
    let scenario = default_scenario();
    let config = experiment_config();
    let problem = Problem::new(scenario, config).expect("valid configuration");
    let mut rng = rand::rngs::StdRng::seed_from_u64(env_u64("QUHE_SEED", 42));

    let quhe = Stage1Solver::new().solve(&problem).expect("stage 1 solves");
    // The Stage-1 baselines report through the unified `SolveReport` shape;
    // the found rates and Werner parameters live in the Stage-1 telemetry
    // slot.
    let stage1_of = |report: SolveReport| report.stage1.expect("stage-1 telemetry");
    let gd = stage1_of(stage1_gradient_descent(&problem).expect("gradient descent runs"));
    let sa = stage1_of(stage1_simulated_annealing(&problem, &mut rng).expect("annealing runs"));
    let rs = stage1_of(stage1_random_selection(&problem, &mut rng).expect("random selection runs"));

    println!("Table V: phi values of different methods\n");
    let widths = [8, 14, 18, 16, 14];
    print_header(
        &[
            "phi_n",
            "QuHE Stage 1",
            "Gradient descent",
            "Sim. annealing",
            "Random select",
        ],
        &widths,
    );
    for n in 0..quhe.phi.len() {
        print_row(
            &[
                format!("phi_{}", n + 1),
                fmt(quhe.phi[n], 4),
                fmt(gd.phi[n], 4),
                fmt(sa.phi[n], 4),
                fmt(rs.phi[n], 4),
            ],
            &widths,
        );
    }

    println!("\nTable VI: w values of different methods\n");
    print_header(
        &[
            "w_l",
            "QuHE Stage 1",
            "Gradient descent",
            "Sim. annealing",
            "Random select",
        ],
        &widths,
    );
    for l in 0..quhe.w.len() {
        print_row(
            &[
                format!("w_{}", l + 1),
                fmt(quhe.w[l], 4),
                fmt(gd.w[l], 4),
                fmt(sa.w[l], 4),
                fmt(rs.w[l], 4),
            ],
            &widths,
        );
    }

    println!(
        "\nP3 objective values: QuHE {:.4}, GD {:.4}, SA {:.4}, RS {:.4}",
        quhe.objective, gd.objective, sa.objective, rs.objective
    );
    println!("(paper shape: QuHE and GD coincide; RS picks larger phi but a worse objective;");
    println!(" unused link 6 keeps w = 1 for every method)");
}
