//! Regenerates Fig. 4 of the paper: convergence of each stage of the QuHE
//! algorithm — the Stage-1 and Stage-2 objective traces, the Stage-3 primal
//! objective ("POBJ") trace, and the Stage-3 duality-gap trace from the
//! interior-point polish.
//!
//! The whole figure comes out of a single [`Solver::solve`] call: the `quhe`
//! registry solver runs one outer iteration under
//! [`InstrumentationLevel::Full`], and the per-stage telemetry of the
//! returned [`SolveReport`] carries all four traces (the first outer
//! iteration's stage solves start from the deterministic initial point,
//! which is exactly what the paper's figure shows).
//!
//! ```bash
//! cargo run --release -p quhe-bench --bin fig4_convergence
//! ```

use quhe_bench::{default_scenario, fmt, fmt_sci, print_header, print_row, solver_registry};
use quhe_core::prelude::*;

fn main() {
    let scenario = default_scenario();
    let registry = solver_registry();
    // One outer iteration: the final per-stage telemetry is then the
    // first-iteration telemetry the figure plots.
    let mut config = *registry
        .resolve("quhe")
        .expect("quhe is a built-in")
        .config();
    config.max_outer_iterations = 1;
    let report = QuheSolver::new(config)
        .solve(
            &scenario,
            &SolveSpec::cold().with_instrumentation(InstrumentationLevel::Full),
        )
        .expect("QuHE solves");
    let stage1 = report.stage1.as_ref().expect("full instrumentation");
    let stage2 = report.stage2.as_ref().expect("full instrumentation");
    let stage3 = report.stage3.as_ref().expect("full instrumentation");

    // Stage 1 (Fig. 4(a)): P3 objective across interior-point iterations.
    println!("Fig. 4(a): objective function value in Stage 1 per iteration");
    let widths = [9, 16];
    print_header(&["Iteration", "P3 objective"], &widths);
    for (i, value) in stage1.trace.iter().enumerate() {
        print_row(&[i.to_string(), fmt(*value, 6)], &widths);
    }
    println!(
        "converged in {} iterations, {:.3} s\n",
        stage1.iterations, stage1.runtime_s
    );

    // Stage 2 (Fig. 4(b)): incumbent objective across branch-and-bound
    // improvements, starting from the Stage-1 rates.
    println!("Fig. 4(b): objective function value in Stage 2 (incumbent trace)");
    print_header(&["Step", "F_s2 incumbent"], &widths);
    for (i, value) in stage2.trace.iter().enumerate() {
        print_row(&[i.to_string(), fmt(*value, 6)], &widths);
    }
    println!(
        "optimal lambda = {:?}, {} nodes expanded, {} leaves evaluated\n",
        stage2.lambda, stage2.nodes_expanded, stage2.leaves_evaluated
    );

    // Stage 3 (Fig. 4(c)/(d)): POBJ trace of the fractional-programming loop
    // and the duality gap of the final interior-point polish.
    println!("Fig. 4(c): primal objective (POBJ) in Stage 3 per outer iteration");
    print_header(&["Iteration", "POBJ"], &widths);
    for (i, value) in stage3.trace.iter().enumerate() {
        print_row(&[i.to_string(), fmt_sci(*value)], &widths);
    }
    println!();
    println!("Fig. 4(d): duality gap in Stage 3 (interior-point polish)");
    print_header(&["Iteration", "Duality gap"], &widths);
    for (i, value) in stage3.gap_trace.iter().enumerate() {
        print_row(&[i.to_string(), fmt_sci(*value)], &widths);
    }
    println!(
        "\nStage 3 converged in {} outer iterations, {:.3} s; final gap {:.1e}",
        stage3.iterations,
        stage3.runtime_s,
        stage3.gap_trace.last().copied().unwrap_or(f64::NAN)
    );
    println!(
        "(paper: Stage 1 converges in 12 steps, Stage 2 in 26, Stage 3 in 34; gap reaches 1e-5)"
    );
}
