//! Parallel batch evaluation of the full scenario catalogue.
//!
//! Runs the selected registry solver (default `quhe`) on every scenario of
//! [`ScenarioCatalog::builtin`] across a seed grid, once serially and once on
//! the scoped worker pool via [`Solver::solve_batch`], and emits
//! `BENCH_batch.json` through the shared report writer: per-job objective,
//! gap over the `aa` registry baseline and wall-clock, plus the aggregate
//! serial/parallel walls and the measured speedup. The file is the standing
//! performance-trajectory artifact for the batch pipeline, the companion of
//! `BENCH_seed.json` for the single-scenario path.
//!
//! ```bash
//! cargo run --release -p quhe-bench --bin batch_eval            # full grid
//! cargo run --release -p quhe-bench --bin batch_eval -- --quick # CI budgets
//! cargo run --release -p quhe-bench --bin batch_eval -- --serial # no pool
//! cargo run --release -p quhe-bench --bin batch_eval -- --solver occr
//! cargo run --release -p quhe-bench --bin batch_eval -- out.json
//! ```
//!
//! Environment: `QUHE_SEED` (base seed, default 42), `QUHE_BATCH_SEEDS`
//! (seeds per scenario, default 3), `QUHE_THREADS` (pool size, default 0 =
//! available parallelism), `QUHE_SOLVER` (registry name). Both passes solve
//! the identical job list with Stage-3 multi-start forced serial
//! (`solver_threads = 1`), so the measured speedup isolates the batch-level
//! parallelism.

use std::time::Instant;

use quhe_bench::report::{grid_envelope, job_identity, solve_measurement, write};
use quhe_bench::{env_u64, env_usize, output_path, selected_solver_name};
use quhe_core::prelude::*;

/// One (scenario, seed) cell of the evaluation grid.
struct Job {
    name: String,
    seed: u64,
    scenario: SystemScenario,
}

/// The measured result of one job.
struct JobResult {
    report: SolveReport,
    aa_objective: f64,
    wall_s: f64,
}

fn run_job(job: &Job, solver: &dyn Solver, aa: &dyn Solver, spec: &SolveSpec) -> JobResult {
    // `wall_s` times the selected solve alone — it is the perf-trajectory
    // metric, so the AA baseline and the feasibility audit stay outside the
    // clock.
    let wall = Instant::now();
    let report = solver
        .solve(&job.scenario, spec)
        .unwrap_or_else(|e| panic!("{} seed {}: solve failed: {e}", job.name, job.seed));
    let wall_s = wall.elapsed().as_secs_f64();
    let aa = aa
        .solve(&job.scenario, &SolveSpec::cold())
        .unwrap_or_else(|e| panic!("{} seed {}: AA baseline failed: {e}", job.name, job.seed));
    let problem = Problem::new(job.scenario.clone(), *solver.config()).unwrap_or_else(|e| {
        panic!(
            "{} seed {}: problem construction failed: {e}",
            job.name, job.seed
        )
    });
    problem
        .check_feasible(&report.variables)
        .unwrap_or_else(|e| panic!("{} seed {}: infeasible solution: {e}", job.name, job.seed));
    JobResult {
        report,
        aa_objective: aa.objective,
        wall_s,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let serial_only = args.iter().any(|a| a == "--serial");
    let solver_name = selected_solver_name(&args);
    let out_path = output_path(&args, "BENCH_batch.json");

    let base_seed = env_u64("QUHE_SEED", 42);
    let num_seeds = env_usize("QUHE_BATCH_SEEDS", 3).max(1);
    let threads = env_usize("QUHE_THREADS", 0);
    let seeds: Vec<u64> = (0..num_seeds as u64).map(|i| base_seed + i).collect();
    // Stage-3 multi-start stays serial inside each solve: the batch is the
    // parallel axis, and nesting both pools would oversubscribe the cores.
    let config = QuheConfig {
        max_outer_iterations: if quick { 2 } else { 5 },
        max_stage3_iterations: if quick { 8 } else { 20 },
        solver_threads: 1,
        ..QuheConfig::default()
    };
    let registry = SolverRegistry::builtin_with(config);
    let solver = registry
        .resolve(&solver_name)
        .unwrap_or_else(|e| panic!("{e}"));
    let aa = registry.resolve("aa").expect("aa is a built-in");
    // The jobs only read the top-level report fields, so the lean
    // instrumentation level keeps the grid's memory flat.
    let spec = SolveSpec::cold().with_instrumentation(InstrumentationLevel::Minimal);

    let catalog = ScenarioCatalog::builtin();
    let mut jobs = Vec::new();
    for name in catalog.names() {
        for &seed in &seeds {
            let scenario = catalog
                .generate(name, seed)
                .unwrap_or_else(|e| panic!("generating {name} seed {seed}: {e}"));
            jobs.push(Job {
                name: name.to_string(),
                seed,
                scenario,
            });
        }
    }

    let pool = threadpool::ThreadPool::new(threads);
    eprintln!(
        "batch_eval: solver '{}', {} scenarios x {} seeds = {} jobs, pool of {} threads{}",
        solver.name(),
        catalog.names().len(),
        seeds.len(),
        jobs.len(),
        pool.threads(),
        if quick { " (quick budgets)" } else { "" },
    );

    let serial_results: Vec<JobResult> = jobs
        .iter()
        .map(|job| run_job(job, solver, aa, &spec))
        .collect();
    // The serial wall is the sum of the per-job solve walls (baseline and
    // feasibility audits excluded), so it measures the same work the
    // parallel pass below re-runs on the pool.
    let serial_wall_s: f64 = serial_results.iter().map(|r| r.wall_s).sum();

    let (parallel_wall_s, speedup) = if serial_only {
        (None, None)
    } else {
        let parallel_wall = Instant::now();
        let scenarios: Vec<SystemScenario> = jobs.iter().map(|j| j.scenario.clone()).collect();
        let parallel_results = solver.solve_batch(&scenarios, &spec, threads);
        let parallel_wall_s = parallel_wall.elapsed().as_secs_f64();
        // Parallel and serial passes must agree bit-for-bit: the solves share
        // no mutable state, so any divergence is a bug worth failing on.
        for ((job, serial), parallel) in jobs.iter().zip(&serial_results).zip(&parallel_results) {
            let parallel = parallel.as_ref().unwrap_or_else(|e| {
                panic!("{} seed {}: parallel solve failed: {e}", job.name, job.seed)
            });
            assert_eq!(
                serial.report.objective, parallel.objective,
                "{} seed {}: serial and parallel objectives diverged",
                job.name, job.seed
            );
        }
        (Some(parallel_wall_s), Some(serial_wall_s / parallel_wall_s))
    };

    let job_values: Vec<JsonValue> = jobs
        .iter()
        .zip(&serial_results)
        .map(|(job, result)| {
            let mut value = job_identity(&job.name, job.seed, job.scenario.num_clients());
            solve_measurement(&mut value, &result.report, result.wall_s);
            value.set("aa_objective", JsonValue::from_f64(result.aa_objective));
            value.set(
                "gap_over_aa",
                JsonValue::from_f64(result.report.objective - result.aa_objective),
            );
            value
        })
        .collect();

    let opt_f64 = |v: Option<f64>| v.map_or(JsonValue::Null, JsonValue::from_f64);
    let document = grid_envelope(
        "quhe-batch/v2",
        if quick { "quick" } else { "full" },
        solver.name(),
        &catalog.names(),
        &seeds,
    )
    .with("threads", JsonValue::from_usize(pool.threads()))
    .with("jobs", JsonValue::Array(job_values))
    .with("serial_wall_s", JsonValue::from_f64(serial_wall_s))
    .with("parallel_wall_s", opt_f64(parallel_wall_s))
    .with("speedup", opt_f64(speedup));
    write(&out_path, &document);

    // Standing invariant of the batch pipeline: no built-in solver loses to
    // the average-allocation baseline on any scenario of the grid (AA itself
    // ties it by definition).
    for (job, result) in jobs.iter().zip(&serial_results) {
        assert!(
            result.report.objective >= result.aa_objective - 1e-6,
            "{} seed {}: {} ({}) lost to AA ({})",
            job.name,
            job.seed,
            solver.name(),
            result.report.objective,
            result.aa_objective
        );
    }
    if let Some(speedup) = speedup {
        eprintln!("parallel speedup over serial: {speedup:.2}x");
    }
}
