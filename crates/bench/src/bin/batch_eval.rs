//! Parallel batch evaluation of the full scenario catalogue.
//!
//! Runs every scenario of [`ScenarioCatalog::builtin`] across a seed grid,
//! once serially and once on the scoped worker pool, and emits
//! `BENCH_batch.json`: per-job objective, QuHE-vs-AA gap and wall-clock, plus
//! the aggregate serial/parallel walls and the measured speedup. The file is
//! the standing performance-trajectory artifact for the batch pipeline, the
//! companion of `BENCH_seed.json` for the single-scenario path.
//!
//! ```bash
//! cargo run --release -p quhe-bench --bin batch_eval            # full grid
//! cargo run --release -p quhe-bench --bin batch_eval -- --quick # CI budgets
//! cargo run --release -p quhe-bench --bin batch_eval -- --serial # no pool
//! cargo run --release -p quhe-bench --bin batch_eval -- out.json
//! ```
//!
//! Environment: `QUHE_SEED` (base seed, default 42), `QUHE_BATCH_SEEDS`
//! (seeds per scenario, default 3), `QUHE_THREADS` (pool size, default 0 =
//! available parallelism). Both passes solve the identical job list with
//! Stage-3 multi-start forced serial (`solver_threads = 1`), so the measured
//! speedup isolates the batch-level parallelism.

use std::time::Instant;

use quhe_bench::{env_u64, env_usize};
use quhe_core::prelude::*;

/// One (scenario, seed) cell of the evaluation grid.
struct Job {
    name: String,
    seed: u64,
    scenario: SystemScenario,
}

/// The measured result of one job.
struct JobResult {
    objective: f64,
    aa_objective: f64,
    outer_iterations: usize,
    converged: bool,
    wall_s: f64,
}

fn run_job(job: &Job, config: &QuheConfig) -> JobResult {
    // `wall_s` times the QuHE solve alone — it is the perf-trajectory metric,
    // so the AA baseline and the feasibility audit stay outside the clock.
    let wall = Instant::now();
    let outcome = QuheAlgorithm::new(*config)
        .solve(&job.scenario)
        .unwrap_or_else(|e| panic!("{} seed {}: QuHE solve failed: {e}", job.name, job.seed));
    let wall_s = wall.elapsed().as_secs_f64();
    let aa = average_allocation(&job.scenario, config)
        .unwrap_or_else(|e| panic!("{} seed {}: AA baseline failed: {e}", job.name, job.seed));
    let problem = Problem::new(job.scenario.clone(), *config).unwrap_or_else(|e| {
        panic!(
            "{} seed {}: problem construction failed: {e}",
            job.name, job.seed
        )
    });
    problem
        .check_feasible(&outcome.variables)
        .unwrap_or_else(|e| {
            panic!(
                "{} seed {}: infeasible QuHE solution: {e}",
                job.name, job.seed
            )
        });
    JobResult {
        objective: outcome.objective,
        aa_objective: aa.metrics.objective,
        outer_iterations: outcome.outer_iterations,
        converged: outcome.converged,
        wall_s,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let serial_only = args.iter().any(|a| a == "--serial");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_batch.json".to_string());

    let base_seed = env_u64("QUHE_SEED", 42);
    let num_seeds = env_usize("QUHE_BATCH_SEEDS", 3).max(1);
    let threads = env_usize("QUHE_THREADS", 0);
    let seeds: Vec<u64> = (0..num_seeds as u64).map(|i| base_seed + i).collect();
    // Stage-3 multi-start stays serial inside each solve: the batch is the
    // parallel axis, and nesting both pools would oversubscribe the cores.
    let config = QuheConfig {
        max_outer_iterations: if quick { 2 } else { 5 },
        max_stage3_iterations: if quick { 8 } else { 20 },
        solver_threads: 1,
        ..QuheConfig::default()
    };

    let catalog = ScenarioCatalog::builtin();
    let mut jobs = Vec::new();
    for name in catalog.names() {
        for &seed in &seeds {
            let scenario = catalog
                .generate(name, seed)
                .unwrap_or_else(|e| panic!("generating {name} seed {seed}: {e}"));
            jobs.push(Job {
                name: name.to_string(),
                seed,
                scenario,
            });
        }
    }

    let pool = threadpool::ThreadPool::new(threads);
    eprintln!(
        "batch_eval: {} scenarios x {} seeds = {} jobs, pool of {} threads{}",
        catalog.names().len(),
        seeds.len(),
        jobs.len(),
        pool.threads(),
        if quick { " (quick budgets)" } else { "" },
    );

    let serial_wall = Instant::now();
    let serial_results: Vec<JobResult> = jobs.iter().map(|job| run_job(job, &config)).collect();
    let serial_wall_s = serial_wall.elapsed().as_secs_f64();

    let (parallel_wall_s, speedup) = if serial_only {
        (None, None)
    } else {
        let parallel_wall = Instant::now();
        let parallel_results = pool.par_map(&jobs, |job| run_job(job, &config));
        let parallel_wall_s = parallel_wall.elapsed().as_secs_f64();
        // Parallel and serial passes must agree bit-for-bit: the solves share
        // no mutable state, so any divergence is a bug worth failing on.
        for ((job, serial), parallel) in jobs.iter().zip(&serial_results).zip(&parallel_results) {
            assert_eq!(
                serial.objective, parallel.objective,
                "{} seed {}: serial and parallel objectives diverged",
                job.name, job.seed
            );
        }
        (Some(parallel_wall_s), Some(serial_wall_s / parallel_wall_s))
    };

    let job_lines: Vec<String> = jobs
        .iter()
        .zip(&serial_results)
        .map(|(job, result)| {
            format!(
                concat!(
                    "    {{\"scenario\": \"{name}\", \"seed\": {seed}, \"clients\": {clients}, ",
                    "\"objective\": {objective}, \"aa_objective\": {aa}, ",
                    "\"gap_over_aa\": {gap}, \"outer_iterations\": {iters}, ",
                    "\"converged\": {converged}, \"wall_s\": {wall}}}"
                ),
                name = job.name,
                seed = job.seed,
                clients = job.scenario.num_clients(),
                objective = result.objective,
                aa = result.aa_objective,
                gap = result.objective - result.aa_objective,
                iters = result.outer_iterations,
                converged = result.converged,
                wall = result.wall_s,
            )
        })
        .collect();

    let fmt_opt = |v: Option<f64>| v.map_or("null".to_string(), |v| v.to_string());
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"quhe-batch/v1\",\n",
            "  \"mode\": \"{mode}\",\n",
            "  \"scenarios\": [{scenarios}],\n",
            "  \"seeds\": [{seeds}],\n",
            "  \"threads\": {threads},\n",
            "  \"jobs\": [\n{jobs}\n  ],\n",
            "  \"serial_wall_s\": {serial},\n",
            "  \"parallel_wall_s\": {parallel},\n",
            "  \"speedup\": {speedup}\n",
            "}}\n"
        ),
        mode = if quick { "quick" } else { "full" },
        scenarios = catalog
            .names()
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", "),
        seeds = seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
        threads = pool.threads(),
        jobs = job_lines.join(",\n"),
        serial = serial_wall_s,
        parallel = fmt_opt(parallel_wall_s),
        speedup = fmt_opt(speedup),
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{json}");
    eprintln!("wrote {out_path}");

    // Standing invariant of the batch pipeline: QuHE never loses to the
    // average-allocation baseline on any scenario of the grid.
    for (job, result) in jobs.iter().zip(&serial_results) {
        assert!(
            result.objective >= result.aa_objective - 1e-6,
            "{} seed {}: QuHE ({}) lost to AA ({})",
            job.name,
            job.seed,
            result.objective,
            result.aa_objective
        );
    }
    if let Some(speedup) = speedup {
        eprintln!("parallel speedup over serial: {speedup:.2}x");
    }
}
