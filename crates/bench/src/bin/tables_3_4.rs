//! Regenerates the scenario-input tables of the paper: Table III (routes with
//! end nodes and links) and Table IV (link lengths and rate coefficients
//! `beta_l`), plus the derived link-route incidence summary.
//!
//! ```bash
//! cargo run -p quhe-bench --bin tables_3_4
//! ```

use quhe_bench::{fmt, print_header, print_row};
use quhe_qkd::topology::surfnet_scenario;

fn main() {
    let network = surfnet_scenario();

    println!(
        "Table III: routes with end nodes and links (key center: {})\n",
        network.key_center()
    );
    let widths = [8, 26, 24];
    print_header(&["Route ID", "End nodes", "Links"], &widths);
    for route in network.routes() {
        print_row(
            &[
                route.id.to_string(),
                format!("({}, {})", route.source, route.destination),
                format!("{:?}", route.link_ids),
            ],
            &widths,
        );
    }

    println!("\nTable IV: link lengths and beta_j for various links\n");
    let widths = [7, 12, 8];
    print_header(&["Link ID", "Length (km)", "beta_j"], &widths);
    for link in network.links() {
        print_row(
            &[
                link.id.to_string(),
                fmt(link.length_km, 1),
                fmt(link.beta, 2),
            ],
            &widths,
        );
    }

    println!("\nDerived link-route incidence (routes using each link):\n");
    let widths = [7, 20];
    print_header(&["Link ID", "Routes"], &widths);
    for l in 0..network.num_links() {
        let routes: Vec<usize> = network
            .incidence()
            .routes_using_link(l)
            .into_iter()
            .map(|r| r + 1)
            .collect();
        print_row(&[(l + 1).to_string(), format!("{routes:?}")], &widths);
    }
}
