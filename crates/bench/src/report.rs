//! The shared report writer of the experiment harness.
//!
//! Every JSON-emitting binary (`bench_seed`, `batch_eval`, `online_eval`)
//! builds a [`JsonValue`] document through the helpers here and hands it to
//! [`write()`], so the `BENCH_*.json` artifacts share one envelope (schema
//! tag, mode, solver name, scenario and seed grids) and one field
//! vocabulary: a job is always identified by `scenario` / `seed` /
//! `clients`, a measured solve always reports `objective` /
//! `outer_iterations` / `converged` / `wall_s`, and full solver output is
//! embedded as a [`SolveReport`] JSON tree. Before this module each binary
//! hand-rolled its own `format!` JSON with drifting field names — that is
//! exactly the duplication the unified solver surface exists to remove.

use quhe_core::prelude::*;

/// The common envelope of a grid artifact: schema tag, run mode, the solver
/// that produced it, and the scenario × seed grid.
pub fn grid_envelope(
    schema: &str,
    mode: &str,
    solver: &str,
    scenarios: &[&str],
    seeds: &[u64],
) -> JsonValue {
    JsonValue::object()
        .with("schema", JsonValue::String(schema.to_string()))
        .with("mode", JsonValue::String(mode.to_string()))
        .with("solver", JsonValue::String(solver.to_string()))
        .with("scenarios", JsonValue::from_str_slice(scenarios))
        .with(
            "seeds",
            JsonValue::Array(seeds.iter().map(|&s| JsonValue::from_u64(s)).collect()),
        )
}

/// The common identity fields of one job of a grid: which world, which seed,
/// how many clients.
pub fn job_identity(scenario: &str, seed: u64, clients: usize) -> JsonValue {
    JsonValue::object()
        .with("scenario", JsonValue::String(scenario.to_string()))
        .with("seed", JsonValue::from_u64(seed))
        .with("clients", JsonValue::from_usize(clients))
}

/// The common measurement fields of one solve: objective, iteration count,
/// convergence flag and wall clock.
pub fn solve_measurement(object: &mut JsonValue, report: &SolveReport, wall_s: f64) {
    object.set("objective", JsonValue::from_f64(report.objective));
    object.set(
        "outer_iterations",
        JsonValue::from_usize(report.outer_iterations),
    );
    object.set("converged", JsonValue::Bool(report.converged));
    object.set("wall_s", JsonValue::from_f64(wall_s));
}

/// The `p`-th percentile of an ascending-sorted sample (nearest-rank), `NaN`
/// when empty — the convention every latency block of a `BENCH_*.json`
/// report uses.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Serializes the document, writes it to `out_path`, echoes it to stdout and
/// notes the path on stderr — the uniform tail of every report-emitting
/// binary.
///
/// # Panics
/// Panics when the file cannot be written (experiment binaries fail loudly).
pub fn write(out_path: &str, document: &JsonValue) {
    let text = document.to_pretty_string();
    std::fs::write(out_path, &text).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    print!("{text}");
    eprintln!("wrote {out_path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_and_identity_share_the_field_vocabulary() {
        let envelope = grid_envelope("quhe-batch/v2", "quick", "quhe", &["paper_default"], &[42]);
        assert_eq!(
            envelope.get("schema").and_then(JsonValue::as_str),
            Some("quhe-batch/v2")
        );
        assert_eq!(
            envelope.get("solver").and_then(JsonValue::as_str),
            Some("quhe")
        );
        let job = job_identity("far_edge", 7, 8);
        assert_eq!(job.get("seed").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(job.get("clients").and_then(JsonValue::as_usize), Some(8));
        // The document round-trips through the parser.
        let text = envelope.to_pretty_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), envelope);
    }

    #[test]
    fn measurements_embed_the_report_fields() {
        let scenario = SystemScenario::paper_default(1);
        let config = QuheConfig {
            max_outer_iterations: 1,
            max_stage3_iterations: 4,
            solver_threads: 1,
            ..QuheConfig::default()
        };
        let report = AaSolver::new(config)
            .solve(&scenario, &SolveSpec::cold())
            .unwrap();
        let mut job = job_identity("paper_default", 1, 6);
        solve_measurement(&mut job, &report, 0.25);
        assert_eq!(
            job.get("objective").and_then(JsonValue::as_f64),
            Some(report.objective)
        );
        assert_eq!(
            job.get("converged").and_then(JsonValue::as_bool),
            Some(true)
        );
        assert_eq!(job.get("wall_s").and_then(JsonValue::as_f64), Some(0.25));
    }
}
