//! # quhe-bench — experiment harness for the QuHE reproduction
//!
//! One binary per table/figure of the paper's evaluation section
//! (Section VI), plus Criterion micro-benchmarks of the stages and the
//! substrates. See EXPERIMENTS.md at the workspace root for the experiment
//! index and the measured-vs-paper comparison.
//!
//! | Binary | Regenerates |
//! |---|---|
//! | `tables_3_4` | Tables III and IV (scenario inputs) |
//! | `fig3_optimality` | Fig. 3(a)(b): optimality over random initializations |
//! | `fig4_convergence` | Fig. 4(a)–(d): per-stage convergence and duality gap |
//! | `fig5_comparison` | Fig. 5(a)–(d): stage calls/runtime, Stage-1 methods, whole-procedure comparison |
//! | `tables_5_6` | Tables V and VI: per-method `phi` and `w` values |
//! | `fig6_sweeps` | Fig. 6(a)–(d): objective vs. resource budgets |
//! | `bench_seed` | `BENCH_seed.json`: single-scenario perf record |
//! | `stage_bench` | `BENCH_stage.json`: per-stage + per-primitive cold-path timings |
//! | `batch_eval` | `BENCH_batch.json`: scenario-catalogue grid, serial vs parallel |
//! | `online_eval` | `BENCH_online.json`: dynamic traces, warm-started tracking vs cold re-solving |
//! | `serve_bench` | `BENCH_serve.json`: solve-service request streams, cache hit/warm/cold split, latency percentiles |
//!
//! Every binary accepts the environment variables `QUHE_SEED` (default 42)
//! and, where relevant, `QUHE_SAMPLES` / `QUHE_POINTS`, so that quick smoke
//! runs and full paper-scale runs use the same code path. Every solving
//! binary routes through the unified [`Solver`] surface: the solver under
//! test is looked up in [`SolverRegistry`] (select it with `--solver NAME`
//! or `QUHE_SOLVER`, default `quhe`) and all JSON artifacts flow through the
//! shared [`report`] writer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

use quhe_core::prelude::*;

/// Reads an environment variable as `usize`, with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an environment variable as `f64`, with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads an environment variable as `u64`, with a default.
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The default scenario every experiment binary starts from (seed taken from
/// `QUHE_SEED`, default 42).
pub fn default_scenario() -> SystemScenario {
    SystemScenario::paper_default(env_u64("QUHE_SEED", 42))
}

/// The configuration used by the experiment binaries: the paper's weights and
/// tolerance, with iteration budgets suited to repeated full runs.
pub fn experiment_config() -> QuheConfig {
    QuheConfig {
        max_outer_iterations: env_usize("QUHE_OUTER_ITERS", 5),
        max_stage3_iterations: env_usize("QUHE_STAGE3_ITERS", 20),
        ..QuheConfig::default()
    }
}

/// The built-in solver registry under [`experiment_config`] — the solvers
/// every experiment binary draws from.
pub fn solver_registry() -> SolverRegistry {
    SolverRegistry::builtin_with(experiment_config())
}

/// The solver name selected for this run: the value after a `--solver` flag,
/// else `QUHE_SOLVER`, else `"quhe"`.
pub fn selected_solver_name(args: &[String]) -> String {
    args.iter()
        .position(|a| a == "--solver")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| std::env::var("QUHE_SOLVER").ok())
        .unwrap_or_else(|| "quhe".to_string())
}

/// The output path of a report-emitting binary: the first free argument —
/// skipping flags and the value consumed by `--solver` — or `default`.
pub fn output_path(args: &[String], default: &str) -> String {
    args.iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && (*i == 0 || args[*i - 1] != "--solver"))
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| default.to_string())
}

/// The human-facing label of a built-in solver name (the paper's method
/// names); unknown names pass through unchanged.
pub fn display_name(solver: &str) -> &str {
    match solver {
        "quhe" => "QuHE",
        "aa" => "AA",
        "olaa" => "OLAA",
        "occr" => "OCCR",
        other => other,
    }
}

/// Prints a Markdown-style table row.
pub fn print_row(cells: &[String], widths: &[usize]) {
    let formatted: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("| {} |", formatted.join(" | "));
}

/// Prints a table header followed by a separator row.
pub fn print_header(cells: &[&str], widths: &[usize]) {
    print_row(
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let separator: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    print_row(&separator, widths);
}

/// Formats a float with the given number of significant decimals.
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a float in scientific notation.
pub fn fmt_sci(value: f64) -> String {
    format!("{value:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_falls_back_to_defaults() {
        assert_eq!(env_usize("QUHE_THIS_VARIABLE_DOES_NOT_EXIST", 7), 7);
        assert_eq!(env_u64("QUHE_THIS_VARIABLE_DOES_NOT_EXIST", 9), 9);
    }

    #[test]
    fn default_scenario_and_config_are_valid() {
        let scenario = default_scenario();
        assert_eq!(scenario.num_clients(), 6);
        assert!(experiment_config().validate().is_ok());
    }

    #[test]
    fn formatting_helpers_produce_expected_shapes() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert!(fmt_sci(12345.0).contains('e'));
    }

    #[test]
    fn solver_selection_prefers_the_flag_and_defaults_to_quhe() {
        let args: Vec<String> = ["--quick", "--solver", "olaa"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(selected_solver_name(&args), "olaa");
        assert_eq!(selected_solver_name(&[]), "quhe");
        assert_eq!(output_path(&args, "out.json"), "out.json");
        let args: Vec<String> = ["--solver", "occr", "custom.json", "--quick"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(output_path(&args, "out.json"), "custom.json");
        assert_eq!(
            solver_registry().names(),
            vec!["quhe", "aa", "olaa", "occr"]
        );
        assert_eq!(display_name("quhe"), "QuHE");
        assert_eq!(display_name("custom"), "custom");
    }
}
