//! Criterion benchmarks of the optimization toolkit on problems shaped like
//! the QuHE subproblems (ablation: projected gradient vs. Newton vs. barrier
//! on the same convex objective; branch-and-bound vs. exhaustive search).

use criterion::{criterion_group, criterion_main, Criterion};
use quhe_opt::prelude::*;
use std::hint::black_box;

/// A smooth convex bowl in six dimensions (the Stage-1 dimensionality).
fn bowl(x: &[f64]) -> f64 {
    x.iter()
        .enumerate()
        .map(|(i, v)| (v - 0.3 * (i as f64 + 1.0)).powi(2) * (1.0 + i as f64 * 0.2))
        .sum()
}

fn bench_continuous_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_solvers_6d");
    let start = vec![2.0; 6];
    let boxp = BoxProjection::uniform(6, -5.0, 5.0).unwrap();

    group.bench_function("projected_gradient", |b| {
        let solver = ProjectedGradient::default();
        b.iter(|| solver.minimize(&bowl, &boxp, black_box(&start)).unwrap())
    });
    group.bench_function("damped_newton", |b| {
        let solver = DampedNewton::default();
        b.iter(|| {
            solver
                .minimize(&bowl, &|_: &[f64]| true, black_box(&start))
                .unwrap()
        })
    });
    group.bench_function("log_barrier", |b| {
        let solver = BarrierSolver::default();
        b.iter(|| {
            let problem = quhe_opt::barrier::FnProblem::new(6, bowl, |x: &[f64]| {
                let mut g: Vec<f64> = x.iter().map(|v| -v - 5.0).collect();
                g.extend(x.iter().map(|v| v - 5.0));
                g
            })
            .with_start(vec![2.0; 6]);
            solver.solve(&problem, None).unwrap()
        })
    });
    group.finish();
}

struct Separable {
    tables: Vec<Vec<f64>>,
}

impl DiscreteProblem for Separable {
    fn num_variables(&self) -> usize {
        self.tables.len()
    }
    fn choices(&self, index: usize) -> Vec<usize> {
        (0..self.tables[index].len()).collect()
    }
    fn evaluate(&self, assignment: &[usize]) -> f64 {
        assignment
            .iter()
            .enumerate()
            .map(|(i, &c)| self.tables[i][c])
            .sum()
    }
    fn upper_bound(&self, partial: &[usize]) -> f64 {
        let assigned: f64 = partial
            .iter()
            .enumerate()
            .map(|(i, &c)| self.tables[i][c])
            .sum();
        let rest: f64 = self.tables[partial.len()..]
            .iter()
            .map(|t| t.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .sum();
        assigned + rest
    }
}

fn bench_discrete_search(c: &mut Criterion) {
    // Ten variables with three choices each: the same search-space size class
    // as Stage 2 with a larger client count.
    let tables: Vec<Vec<f64>> = (0..10)
        .map(|i| vec![i as f64, 10.0 - i as f64, 0.5 * i as f64])
        .collect();
    let problem = Separable { tables };
    let solver = BranchAndBound::default();
    let mut group = c.benchmark_group("discrete_search_3^10");
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| solver.maximize(black_box(&problem)).unwrap())
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| solver.exhaustive(black_box(&problem)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_continuous_solvers, bench_discrete_search);
criterion_main!(benches);
