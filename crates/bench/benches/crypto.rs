//! Criterion benchmarks of the cryptographic substrate: ChaCha20, the NTT,
//! CKKS operations and the transciphering step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quhe_crypto::prelude::*;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_chacha20(c: &mut Criterion) {
    let cipher = ChaCha20::new(&[7u8; 32], &[1u8; 12]).unwrap();
    let data = vec![0xABu8; 64 * 1024];
    let mut group = c.benchmark_group("chacha20");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("encrypt_64kib", |b| {
        b.iter(|| cipher.encrypt(black_box(&data)))
    });
    group.finish();
}

fn bench_ntt(c: &mut Criterion) {
    let modulus = Modulus::new(576_460_752_300_015_617).unwrap();
    let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
    let mut group = c.benchmark_group("ntt_multiply");
    for degree in [256usize, 1024] {
        let table = NttTable::new(modulus, degree).unwrap();
        let a = Polynomial::sample_uniform(degree, modulus, &mut rng).unwrap();
        let b = Polynomial::sample_uniform(degree, modulus, &mut rng).unwrap();
        group.bench_function(format!("degree_{degree}"), |bench| {
            bench.iter(|| table.multiply(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

fn bench_ckks(c: &mut Criterion) {
    let context = CkksContext::new(CkksParameters::demo_parameters()).unwrap();
    let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(2);
    let keys = context.generate_keys(&mut rng);
    let values: Vec<f64> = (0..context.slots()).map(|i| (i as f64) * 0.01).collect();
    let plaintext = context.encode(&values).unwrap();
    let ciphertext = context.encrypt(&plaintext, &keys.public, &mut rng).unwrap();

    let mut group = c.benchmark_group("ckks_degree_1024");
    group.sample_size(20);
    group.bench_function("encode", |b| {
        b.iter(|| context.encode(black_box(&values)).unwrap())
    });
    group.bench_function("encrypt", |b| {
        b.iter(|| {
            context
                .encrypt(black_box(&plaintext), &keys.public, &mut rng)
                .unwrap()
        })
    });
    group.bench_function("decrypt", |b| {
        b.iter(|| {
            context
                .decrypt(black_box(&ciphertext), &keys.secret)
                .unwrap()
        })
    });
    group.bench_function("add", |b| {
        b.iter(|| {
            context
                .add(black_box(&ciphertext), black_box(&ciphertext))
                .unwrap()
        })
    });
    group.bench_function("multiply_plain", |b| {
        b.iter(|| {
            context
                .multiply_plain(black_box(&ciphertext), black_box(&plaintext))
                .unwrap()
        })
    });
    group.bench_function("multiply_relinearize", |b| {
        b.iter(|| {
            context
                .multiply(
                    black_box(&ciphertext),
                    black_box(&ciphertext),
                    &keys.relinearization,
                )
                .unwrap()
        })
    });
    group.finish();
}

fn bench_transcipher(c: &mut Criterion) {
    let context = CkksContext::new(CkksParameters::insecure_test_parameters()).unwrap();
    let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(3);
    let keys = context.generate_keys(&mut rng);
    let session = TranscipherSession::new(&[0x42u8; 32], 0);
    let samples: Vec<f64> = (0..context.slots()).map(|i| i as f64 * 0.1).collect();
    let masked = session.mask(&samples);
    let mut group = c.benchmark_group("transcipher");
    group.sample_size(20);
    group.bench_function("server_transcipher", |b| {
        b.iter(|| {
            session
                .transcipher(&context, &keys.public, black_box(&masked), &mut rng)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_chacha20,
    bench_ntt,
    bench_ckks,
    bench_transcipher
);
criterion_main!(benches);
