//! Criterion benchmarks of the three QuHE stages and the whole procedure on
//! the paper's default scenario (the timing side of Fig. 5(a)/(b)).

use criterion::{criterion_group, criterion_main, Criterion};
use quhe_core::prelude::*;
use std::hint::black_box;

fn scenario() -> SystemScenario {
    SystemScenario::paper_default(42)
}

fn fast_config() -> QuheConfig {
    QuheConfig {
        max_outer_iterations: 2,
        max_stage3_iterations: 8,
        ..QuheConfig::default()
    }
}

fn bench_stage1(c: &mut Criterion) {
    let problem = Problem::new(scenario(), fast_config()).unwrap();
    c.bench_function("stage1_interior_point", |b| {
        b.iter(|| Stage1Solver::new().solve(black_box(&problem)).unwrap())
    });
}

fn bench_stage1_baselines(c: &mut Criterion) {
    let problem = Problem::new(scenario(), fast_config()).unwrap();
    let mut group = c.benchmark_group("stage1_baselines");
    group.sample_size(10);
    group.bench_function("gradient_descent", |b| {
        b.iter(|| stage1_gradient_descent(black_box(&problem)).unwrap())
    });
    group.bench_function("random_selection", |b| {
        use rand::SeedableRng;
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            stage1_random_selection(black_box(&problem), &mut rng).unwrap()
        })
    });
    group.finish();
}

fn bench_stage2(c: &mut Criterion) {
    let problem = Problem::new(scenario(), fast_config()).unwrap();
    let vars = problem.initial_point().unwrap();
    let mut group = c.benchmark_group("stage2");
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| {
            Stage2Solver::new()
                .solve(black_box(&problem), black_box(&vars))
                .unwrap()
        })
    });
    group.bench_function("exhaustive", |b| {
        b.iter(|| {
            Stage2Solver::new()
                .solve_exhaustive(black_box(&problem), black_box(&vars))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_stage3(c: &mut Criterion) {
    let problem = Problem::new(scenario(), fast_config()).unwrap();
    let vars = problem.initial_point().unwrap();
    let mut group = c.benchmark_group("stage3");
    group.sample_size(10);
    group.bench_function("fractional_programming", |b| {
        b.iter(|| {
            Stage3Solver::new(8, 1e-5)
                .solve(black_box(&problem), black_box(&vars))
                .unwrap()
        })
    });
    group.finish();
}

fn bench_whole_quhe(c: &mut Criterion) {
    let scenario = scenario();
    let config = fast_config();
    let mut group = c.benchmark_group("quhe_whole_procedure");
    group.sample_size(10);
    group.bench_function("algorithm4", |b| {
        b.iter(|| {
            QuheSolver::new(config)
                .solve(black_box(&scenario), &SolveSpec::cold())
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stage1,
    bench_stage1_baselines,
    bench_stage2,
    bench_stage3,
    bench_whole_quhe
);
criterion_main!(benches);
