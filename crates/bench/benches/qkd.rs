//! Criterion benchmarks of the QKD substrate: utility evaluation on the
//! SURFnet topology and the entanglement-protocol simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quhe_qkd::prelude::*;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_utility(c: &mut Criterion) {
    let network = surfnet_scenario();
    let phi = vec![1.0; network.num_clients()];
    let betas = network.betas();
    let mut group = c.benchmark_group("qkd_utility");
    group.bench_function("optimal_werner_eq18", |b| {
        b.iter(|| optimal_werner(network.incidence(), black_box(&phi), &betas).unwrap())
    });
    let w = optimal_werner(network.incidence(), &phi, &betas).unwrap();
    group.bench_function("network_utility_eq6", |b| {
        b.iter(|| network_utility(network.incidence(), black_box(&phi), black_box(&w)).unwrap())
    });
    group.bench_function("log_network_utility", |b| {
        b.iter(|| log_network_utility(network.incidence(), black_box(&phi), black_box(&w)).unwrap())
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("entanglement_protocol");
    let pairs = 50_000usize;
    group.throughput(Throughput::Elements(pairs as u64));
    group.sample_size(20);
    for hops in [1usize, 3, 6] {
        let config = ProtocolConfig::new(vec![0.98; hops], pairs).unwrap();
        let protocol = EntanglementProtocol::new(config);
        group.bench_function(format!("{hops}_hops_50k_pairs"), |b| {
            b.iter(|| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(7);
                protocol.run(black_box(&mut rng))
            })
        });
    }
    group.finish();
}

fn bench_secret_key_fraction(c: &mut Criterion) {
    c.bench_function("secret_key_fraction", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for i in 0..1000 {
                let w = 0.78 + 0.00022 * i as f64;
                total += secret_key_fraction(WernerParameter::new(w).unwrap());
            }
            black_box(total)
        })
    });
}

criterion_group!(
    benches,
    bench_utility,
    bench_protocol,
    bench_secret_key_fraction
);
criterion_main!(benches);
