//! Arithmetic in the negacyclic polynomial ring `R_q = Z_q[X]/(X^N + 1)`.
//!
//! CKKS plaintexts, ciphertext components and keys all live in this ring.
//! The [`Modulus`] type provides constant-width modular arithmetic on `u64`
//! values (products computed in `u128`), and [`Polynomial`] provides the ring
//! operations — addition, subtraction, negation, scalar multiplication and
//! negacyclic (schoolbook) multiplication. The faster NTT-based
//! multiplication lives in [`crate::ntt`] and is cross-checked against the
//! schoolbook product in tests.

use rand::Rng;

use crate::error::{CryptoError, CryptoResult};

/// A prime modulus `q` with the modular arithmetic helpers the ring needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Modulus {
    value: u64,
}

impl Modulus {
    /// Creates a modulus.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidParameter`] if `value < 2`.
    pub fn new(value: u64) -> CryptoResult<Self> {
        if value < 2 {
            return Err(CryptoError::InvalidParameter {
                reason: format!("modulus must be at least 2, got {value}"),
            });
        }
        Ok(Self { value })
    }

    /// The modulus value.
    pub fn value(self) -> u64 {
        self.value
    }

    /// `(a + b) mod q`.
    pub fn add(self, a: u64, b: u64) -> u64 {
        let sum = a as u128 + b as u128;
        (sum % self.value as u128) as u64
    }

    /// `(a - b) mod q`.
    pub fn sub(self, a: u64, b: u64) -> u64 {
        let a = a % self.value;
        let b = b % self.value;
        if a >= b {
            a - b
        } else {
            self.value - (b - a)
        }
    }

    /// `(a * b) mod q`.
    pub fn mul(self, a: u64, b: u64) -> u64 {
        ((a as u128 * b as u128) % self.value as u128) as u64
    }

    /// `(-a) mod q`.
    pub fn neg(self, a: u64) -> u64 {
        let a = a % self.value;
        if a == 0 {
            0
        } else {
            self.value - a
        }
    }

    /// `a^e mod q` by square-and-multiply.
    pub fn pow(self, a: u64, mut e: u64) -> u64 {
        let mut base = a % self.value;
        let mut acc = 1u64;
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul(acc, base);
            }
            base = self.mul(base, base);
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse of `a` modulo the (prime) modulus, via Fermat's
    /// little theorem.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidParameter`] when `a` is divisible by the
    /// modulus (no inverse exists).
    pub fn inv(self, a: u64) -> CryptoResult<u64> {
        if a % self.value == 0 {
            return Err(CryptoError::InvalidParameter {
                reason: "zero has no multiplicative inverse".to_string(),
            });
        }
        Ok(self.pow(a, self.value - 2))
    }

    /// Reduces a signed integer into `[0, q)`.
    pub fn reduce_signed(self, value: i64) -> u64 {
        let q = self.value as i128;
        let mut v = value as i128 % q;
        if v < 0 {
            v += q;
        }
        v as u64
    }

    /// Lifts a residue in `[0, q)` to the centered representative in
    /// `(-q/2, q/2]`.
    pub fn center(self, value: u64) -> i64 {
        let v = value % self.value;
        if v > self.value / 2 {
            -((self.value - v) as i64)
        } else {
            v as i64
        }
    }
}

/// An element of `R_q = Z_q[X]/(X^N + 1)` in coefficient representation.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Polynomial {
    modulus: Modulus,
    coefficients: Vec<u64>,
}

impl Polynomial {
    /// The zero polynomial of the given degree.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidParameter`] if `degree` is zero or not a
    /// power of two (the negacyclic ring requires a power-of-two degree).
    pub fn zero(degree: usize, modulus: Modulus) -> CryptoResult<Self> {
        if degree == 0 || !degree.is_power_of_two() {
            return Err(CryptoError::InvalidParameter {
                reason: format!("ring degree must be a power of two, got {degree}"),
            });
        }
        Ok(Self {
            modulus,
            coefficients: vec![0; degree],
        })
    }

    /// Builds a polynomial from residues in `[0, q)`.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidParameter`] for an invalid degree.
    pub fn from_coefficients(coefficients: Vec<u64>, modulus: Modulus) -> CryptoResult<Self> {
        let mut poly = Self::zero(coefficients.len(), modulus)?;
        for (slot, c) in poly.coefficients.iter_mut().zip(&coefficients) {
            *slot = c % modulus.value();
        }
        Ok(poly)
    }

    /// Builds a polynomial from signed coefficients (reduced modulo `q`).
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidParameter`] for an invalid degree.
    pub fn from_signed(coefficients: &[i64], modulus: Modulus) -> CryptoResult<Self> {
        let mut poly = Self::zero(coefficients.len(), modulus)?;
        for (slot, c) in poly.coefficients.iter_mut().zip(coefficients) {
            *slot = modulus.reduce_signed(*c);
        }
        Ok(poly)
    }

    /// The ring degree `N`.
    pub fn degree(&self) -> usize {
        self.coefficients.len()
    }

    /// The modulus.
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// The coefficients as residues in `[0, q)`.
    pub fn coefficients(&self) -> &[u64] {
        &self.coefficients
    }

    /// Mutable access to the coefficients (still residues in `[0, q)`).
    pub fn coefficients_mut(&mut self) -> &mut [u64] {
        &mut self.coefficients
    }

    /// The coefficients lifted to centered representatives in `(-q/2, q/2]`.
    pub fn centered_coefficients(&self) -> Vec<i64> {
        self.coefficients
            .iter()
            .map(|&c| self.modulus.center(c))
            .collect()
    }

    /// Largest absolute centered coefficient (the infinity norm).
    pub fn norm_inf(&self) -> u64 {
        self.centered_coefficients()
            .into_iter()
            .map(|c| c.unsigned_abs())
            .max()
            .unwrap_or(0)
    }

    fn check_compatible(&self, other: &Self) -> CryptoResult<()> {
        if self.degree() != other.degree() || self.modulus != other.modulus {
            return Err(CryptoError::ParameterMismatch {
                reason: format!(
                    "degree {} modulus {} vs degree {} modulus {}",
                    self.degree(),
                    self.modulus.value(),
                    other.degree(),
                    other.modulus.value()
                ),
            });
        }
        Ok(())
    }

    /// Ring addition.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for incompatible operands.
    pub fn add(&self, other: &Self) -> CryptoResult<Self> {
        self.check_compatible(other)?;
        let coefficients = self
            .coefficients
            .iter()
            .zip(&other.coefficients)
            .map(|(&a, &b)| self.modulus.add(a, b))
            .collect();
        Ok(Self {
            modulus: self.modulus,
            coefficients,
        })
    }

    /// Ring subtraction.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for incompatible operands.
    pub fn sub(&self, other: &Self) -> CryptoResult<Self> {
        self.check_compatible(other)?;
        let coefficients = self
            .coefficients
            .iter()
            .zip(&other.coefficients)
            .map(|(&a, &b)| self.modulus.sub(a, b))
            .collect();
        Ok(Self {
            modulus: self.modulus,
            coefficients,
        })
    }

    /// Ring negation.
    pub fn neg(&self) -> Self {
        Self {
            modulus: self.modulus,
            coefficients: self
                .coefficients
                .iter()
                .map(|&c| self.modulus.neg(c))
                .collect(),
        }
    }

    /// Multiplication by a scalar residue.
    pub fn scalar_mul(&self, scalar: u64) -> Self {
        Self {
            modulus: self.modulus,
            coefficients: self
                .coefficients
                .iter()
                .map(|&c| self.modulus.mul(c, scalar))
                .collect(),
        }
    }

    /// Negacyclic schoolbook multiplication (`O(N^2)`), the reference
    /// implementation the NTT product is checked against.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for incompatible operands.
    pub fn mul_schoolbook(&self, other: &Self) -> CryptoResult<Self> {
        self.check_compatible(other)?;
        let n = self.degree();
        let q = self.modulus;
        let mut result = vec![0u64; n];
        for (i, &a) in self.coefficients.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coefficients.iter().enumerate() {
                if b == 0 {
                    continue;
                }
                let prod = q.mul(a, b);
                let idx = i + j;
                if idx < n {
                    result[idx] = q.add(result[idx], prod);
                } else {
                    // X^N = -1: wrap around with a sign flip.
                    result[idx - n] = q.sub(result[idx - n], prod);
                }
            }
        }
        Ok(Self {
            modulus: self.modulus,
            coefficients: result,
        })
    }

    /// Samples a polynomial with uniformly random coefficients in `[0, q)`.
    pub fn sample_uniform<R: Rng + ?Sized>(
        degree: usize,
        modulus: Modulus,
        rng: &mut R,
    ) -> CryptoResult<Self> {
        let mut poly = Self::zero(degree, modulus)?;
        for c in poly.coefficients.iter_mut() {
            *c = rng.gen_range(0..modulus.value());
        }
        Ok(poly)
    }

    /// Samples a ternary polynomial with coefficients in `{-1, 0, 1}` (the
    /// CKKS secret-key and encryption-randomness distribution).
    pub fn sample_ternary<R: Rng + ?Sized>(
        degree: usize,
        modulus: Modulus,
        rng: &mut R,
    ) -> CryptoResult<Self> {
        let mut poly = Self::zero(degree, modulus)?;
        for c in poly.coefficients.iter_mut() {
            let v: i64 = rng.gen_range(-1..=1);
            *c = modulus.reduce_signed(v);
        }
        Ok(poly)
    }

    /// Samples an error polynomial with centered-binomial coefficients of
    /// standard deviation roughly `sigma` (sum of `2 sigma^2` fair coin
    /// differences), the usual discrete-Gaussian stand-in.
    pub fn sample_error<R: Rng + ?Sized>(
        degree: usize,
        modulus: Modulus,
        sigma: f64,
        rng: &mut R,
    ) -> CryptoResult<Self> {
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(CryptoError::InvalidParameter {
                reason: format!("error standard deviation must be positive, got {sigma}"),
            });
        }
        let k = (2.0 * sigma * sigma).ceil() as u32;
        let mut poly = Self::zero(degree, modulus)?;
        for c in poly.coefficients.iter_mut() {
            let mut value = 0i64;
            for _ in 0..k {
                value += i64::from(rng.gen::<bool>()) - i64::from(rng.gen::<bool>());
            }
            *c = modulus.reduce_signed(value);
        }
        Ok(poly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    const Q: u64 = 1_073_479_681; // 30-bit NTT-friendly prime

    fn modulus() -> Modulus {
        Modulus::new(Q).unwrap()
    }

    #[test]
    fn modulus_basics() {
        let q = modulus();
        assert_eq!(q.add(Q - 1, 5), 4);
        assert_eq!(q.sub(3, 5), Q - 2);
        assert_eq!(q.neg(0), 0);
        assert_eq!(q.neg(1), Q - 1);
        assert_eq!(q.mul(Q - 1, Q - 1), 1); // (-1)^2 = 1
        assert_eq!(q.pow(3, 0), 1);
        let inv = q.inv(12345).unwrap();
        assert_eq!(q.mul(inv, 12345), 1);
        assert!(q.inv(0).is_err());
        assert!(Modulus::new(1).is_err());
    }

    #[test]
    fn signed_reduction_and_centering_round_trip() {
        let q = modulus();
        for v in [-5i64, -1, 0, 1, 7, (Q as i64) / 2, -(Q as i64) / 2 + 1] {
            assert_eq!(q.center(q.reduce_signed(v)), v);
        }
    }

    #[test]
    fn degree_must_be_power_of_two() {
        assert!(Polynomial::zero(0, modulus()).is_err());
        assert!(Polynomial::zero(3, modulus()).is_err());
        assert!(Polynomial::zero(8, modulus()).is_ok());
    }

    #[test]
    fn add_sub_neg_are_consistent() {
        let q = modulus();
        let a = Polynomial::from_signed(&[1, -2, 3, 0], q).unwrap();
        let b = Polynomial::from_signed(&[5, 5, -5, 1], q).unwrap();
        let sum = a.add(&b).unwrap();
        assert_eq!(sum.centered_coefficients(), vec![6, 3, -2, 1]);
        let diff = sum.sub(&b).unwrap();
        assert_eq!(diff, a);
        let zero = a.add(&a.neg()).unwrap();
        assert_eq!(zero.norm_inf(), 0);
    }

    #[test]
    fn negacyclic_wraparound_flips_sign() {
        // (X^{N-1}) * X = X^N = -1 in the ring.
        let q = modulus();
        let mut x_high = Polynomial::zero(4, q).unwrap();
        x_high.coefficients_mut()[3] = 1;
        let mut x = Polynomial::zero(4, q).unwrap();
        x.coefficients_mut()[1] = 1;
        let prod = x_high.mul_schoolbook(&x).unwrap();
        assert_eq!(prod.centered_coefficients(), vec![-1, 0, 0, 0]);
    }

    #[test]
    fn schoolbook_multiplication_matches_manual_example() {
        // (1 + 2X)(3 + X) = 3 + 7X + 2X^2 in Z_q[X]/(X^4+1).
        let q = modulus();
        let a = Polynomial::from_signed(&[1, 2, 0, 0], q).unwrap();
        let b = Polynomial::from_signed(&[3, 1, 0, 0], q).unwrap();
        let prod = a.mul_schoolbook(&b).unwrap();
        assert_eq!(prod.centered_coefficients(), vec![3, 7, 2, 0]);
    }

    #[test]
    fn incompatible_operands_are_rejected() {
        let a = Polynomial::zero(4, modulus()).unwrap();
        let b = Polynomial::zero(8, modulus()).unwrap();
        assert!(a.add(&b).is_err());
        let c = Polynomial::zero(4, Modulus::new(97).unwrap()).unwrap();
        assert!(a.sub(&c).is_err());
        assert!(a.mul_schoolbook(&c).is_err());
    }

    #[test]
    fn sampling_distributions_have_expected_support() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let q = modulus();
        let ternary = Polynomial::sample_ternary(256, q, &mut rng).unwrap();
        assert!(ternary
            .centered_coefficients()
            .iter()
            .all(|c| (-1..=1).contains(c)));
        let error = Polynomial::sample_error(256, q, 3.2, &mut rng).unwrap();
        assert!(error.norm_inf() < 30, "error norm {}", error.norm_inf());
        let uniform = Polynomial::sample_uniform(256, q, &mut rng).unwrap();
        assert!(uniform.coefficients().iter().all(|&c| c < Q));
        assert!(Polynomial::sample_error(8, q, -1.0, &mut rng).is_err());
    }

    proptest! {
        #[test]
        fn multiplication_is_commutative(
            a in proptest::collection::vec(-100i64..100, 8),
            b in proptest::collection::vec(-100i64..100, 8),
        ) {
            let q = modulus();
            let pa = Polynomial::from_signed(&a, q).unwrap();
            let pb = Polynomial::from_signed(&b, q).unwrap();
            prop_assert_eq!(pa.mul_schoolbook(&pb).unwrap(), pb.mul_schoolbook(&pa).unwrap());
        }

        #[test]
        fn multiplication_distributes_over_addition(
            a in proptest::collection::vec(-50i64..50, 8),
            b in proptest::collection::vec(-50i64..50, 8),
            c in proptest::collection::vec(-50i64..50, 8),
        ) {
            let q = modulus();
            let pa = Polynomial::from_signed(&a, q).unwrap();
            let pb = Polynomial::from_signed(&b, q).unwrap();
            let pc = Polynomial::from_signed(&c, q).unwrap();
            let lhs = pa.mul_schoolbook(&pb.add(&pc).unwrap()).unwrap();
            let rhs = pa.mul_schoolbook(&pb).unwrap().add(&pa.mul_schoolbook(&pc).unwrap()).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn scalar_mul_matches_repeated_addition(
            a in proptest::collection::vec(-50i64..50, 8),
            k in 0u64..5,
        ) {
            let q = modulus();
            let pa = Polynomial::from_signed(&a, q).unwrap();
            let mut acc = Polynomial::zero(8, q).unwrap();
            for _ in 0..k {
                acc = acc.add(&pa).unwrap();
            }
            prop_assert_eq!(pa.scalar_mul(k), acc);
        }
    }
}
