//! # quhe-crypto — cryptographic substrate for the QuHE system
//!
//! The QuHE system (Section III-A of the paper) chains three cryptographic
//! components:
//!
//! 1. a **symmetric stream cipher** (ChaCha20) keyed with QKD-distributed
//!    material, used by the client to encrypt its data cheaply
//!    ([`chacha20`]),
//! 2. a **CKKS-style homomorphic encryption scheme** used by the server to
//!    compute on encrypted data ([`ckks`], built on the negacyclic polynomial
//!    ring of [`poly`] and the number-theoretic transform of [`ntt`]), and
//! 3. a **transciphering bridge** that converts the symmetric ciphertext into
//!    a homomorphic ciphertext on the server, so the client never pays the
//!    cost of HE encryption ([`transcipher`]).
//!
//! The security of the FHE configuration is summarized by its *minimum
//! security level* across the uSVP, BDD and hybrid-dual attacks; the
//! [`lwe_estimator`] module provides an analytic surrogate of the LWE
//! estimator used by the paper, and [`cost_model`] provides the fitted cost
//! and security laws (Eqs. 29–31) that the QuHE optimizer actually consumes.
//!
//! # Example: end-to-end encrypt → transcipher → evaluate
//!
//! ```
//! use quhe_crypto::ckks::{CkksContext, CkksParameters};
//! use quhe_crypto::transcipher::TranscipherSession;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(7);
//! let params = CkksParameters::insecure_test_parameters();
//! let context = CkksContext::new(params).unwrap();
//! let keys = context.generate_keys(&mut rng);
//!
//! // The client masks its samples with a QKD-derived keystream.
//! let qkd_key = [0x42u8; 32];
//! let session = TranscipherSession::new(&qkd_key, 0);
//! let samples = vec![1.5, -2.25, 3.0];
//! let masked = session.mask(&samples);
//!
//! // The server homomorphically removes the mask and evaluates on Enc(m).
//! let enc_mask = session
//!     .encrypt_keystream(&context, &keys.public, samples.len(), &mut rng)
//!     .unwrap();
//! let enc_masked = context
//!     .encrypt(&context.encode(&masked).unwrap(), &keys.public, &mut rng)
//!     .unwrap();
//! let enc_data = context.sub(&enc_masked, &enc_mask).unwrap();
//! let recovered = context
//!     .decode(&context.decrypt(&enc_data, &keys.secret).unwrap(), samples.len())
//!     .unwrap();
//! assert!((recovered[0] - 1.5).abs() < 1e-2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod ckks;
pub mod cost_model;
pub mod error;
pub mod keys;
pub mod lwe_estimator;
pub mod ntt;
pub mod poly;
pub mod transcipher;

pub use error::{CryptoError, CryptoResult};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::chacha20::ChaCha20;
    pub use crate::ckks::{Ciphertext, CkksContext, CkksParameters, Plaintext};
    pub use crate::cost_model::{
        eval_cycles_per_sample, min_security_level, server_cycles_per_sample, PolynomialDegree,
    };
    pub use crate::error::{CryptoError, CryptoResult};
    pub use crate::keys::{KeySet, PublicKey, RelinearizationKey, SecretKey};
    pub use crate::lwe_estimator::{estimate_security, AttackModel, SecurityEstimate};
    pub use crate::ntt::NttTable;
    pub use crate::poly::{Modulus, Polynomial};
    pub use crate::transcipher::TranscipherSession;
}
