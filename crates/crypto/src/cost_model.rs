//! Fitted cost and security models of the paper (Eqs. 29–31).
//!
//! The QuHE optimizer never runs CKKS at the candidate polynomial degrees
//! (`lambda in {2^15, 2^16, 2^17}`); it consumes three fitted laws the paper
//! obtained by profiling the PrivTuner CKKS workload and the LWE estimator:
//!
//! * `f_eval(lambda) = 0.012 (lambda + 64500)^2` — CPU cycles per sample for
//!   the server-side transciphering evaluation (Eq. 29),
//! * `f_msl(lambda) = 0.002 lambda + 1.4789` — the minimum security level in
//!   bits (Eq. 30),
//! * `f_cmp(lambda) = 8917959.4 lambda − 51292440000` — CPU cycles per sample
//!   for the server computation task (Eq. 31).
//!
//! This module provides those laws together with a validated
//! [`PolynomialDegree`] type for the discrete `lambda` choices.

use crate::error::{CryptoError, CryptoResult};

/// The discrete CKKS polynomial-degree choices of the paper's evaluation,
/// `{2^15, 2^16, 2^17}`.
pub const LAMBDA_CHOICES: [u64; 3] = [1 << 15, 1 << 16, 1 << 17];

/// A CKKS polynomial degree `lambda` (a power of two).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct PolynomialDegree(u64);

impl PolynomialDegree {
    /// Creates a degree, validating that it is a power of two of at least 4.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidParameter`] otherwise.
    pub fn new(value: u64) -> CryptoResult<Self> {
        if value < 4 || !value.is_power_of_two() {
            return Err(CryptoError::InvalidParameter {
                reason: format!("polynomial degree must be a power of two >= 4, got {value}"),
            });
        }
        Ok(Self(value))
    }

    /// The raw degree value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// The paper's candidate set `{2^15, 2^16, 2^17}`.
    pub fn paper_choices() -> Vec<PolynomialDegree> {
        LAMBDA_CHOICES
            .iter()
            .map(|&v| PolynomialDegree(v))
            .collect()
    }
}

impl std::fmt::Display for PolynomialDegree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "2^{}", self.0.trailing_zeros())
    }
}

/// `f_eval(lambda)`: CPU cycles per sample needed for the server
/// transciphering evaluation (Eq. 29).
pub fn eval_cycles_per_sample(lambda: f64) -> f64 {
    0.012 * (lambda + 64_500.0).powi(2)
}

/// `f_cmp(lambda)`: CPU cycles per sample needed for the server computation
/// task (encrypted prediction) (Eq. 31).
pub fn server_cycles_per_sample(lambda: f64) -> f64 {
    8_917_959.4 * lambda - 51_292_440_000.0
}

/// `f_msl(lambda)`: the minimum security level (bits) of the FHE
/// configuration at polynomial degree `lambda` (Eq. 30).
pub fn min_security_level(lambda: f64) -> f64 {
    0.002 * lambda + 1.4789
}

/// Total server-side CPU cycles per sample: evaluation (transciphering) plus
/// computation, `f_eval(lambda) + f_cmp(lambda)`. This is the quantity that
/// appears in the paper's Eq. (13)/(14).
pub fn total_server_cycles_per_sample(lambda: f64) -> f64 {
    eval_cycles_per_sample(lambda) + server_cycles_per_sample(lambda)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn degree_validation() {
        assert!(PolynomialDegree::new(0).is_err());
        assert!(PolynomialDegree::new(3).is_err());
        assert!(PolynomialDegree::new(6).is_err());
        assert_eq!(PolynomialDegree::new(1 << 15).unwrap().value(), 32_768);
        assert_eq!(PolynomialDegree::new(1 << 15).unwrap().to_string(), "2^15");
        assert_eq!(PolynomialDegree::paper_choices().len(), 3);
    }

    #[test]
    fn eval_cycles_match_equation_29() {
        // f_eval(2^15) = 0.012 * (32768 + 64500)^2.
        let lambda = 32_768.0;
        let expected = 0.012 * (lambda + 64_500.0) * (lambda + 64_500.0);
        assert!((eval_cycles_per_sample(lambda) - expected).abs() < 1.0);
        // Sanity: about 1.135e8 cycles.
        assert!((eval_cycles_per_sample(lambda) - 1.135e8).abs() / 1.135e8 < 0.01);
    }

    #[test]
    fn security_level_matches_equation_30() {
        assert!((min_security_level(32_768.0) - 67.0147).abs() < 1e-3);
        assert!((min_security_level(65_536.0) - 132.5509).abs() < 1e-3);
        assert!((min_security_level(131_072.0) - 263.6229).abs() < 1e-3);
    }

    #[test]
    fn server_cycles_match_equation_31() {
        let lambda = 65_536.0;
        let expected = 8_917_959.4 * lambda - 51_292_440_000.0;
        assert!((server_cycles_per_sample(lambda) - expected).abs() < 1.0);
        assert!(server_cycles_per_sample(lambda) > 0.0);
    }

    #[test]
    fn total_cycles_are_sum_of_parts() {
        let lambda = 131_072.0;
        assert!(
            (total_server_cycles_per_sample(lambda)
                - eval_cycles_per_sample(lambda)
                - server_cycles_per_sample(lambda))
            .abs()
                < 1e-6
        );
    }

    proptest! {
        #[test]
        fn all_laws_are_monotone_on_the_paper_range(a in 32_768.0f64..131_072.0, b in 32_768.0f64..131_072.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(eval_cycles_per_sample(lo) <= eval_cycles_per_sample(hi));
            prop_assert!(server_cycles_per_sample(lo) <= server_cycles_per_sample(hi));
            prop_assert!(min_security_level(lo) <= min_security_level(hi));
        }
    }
}
