//! Error type for the cryptographic substrate.

use std::fmt;

/// Convenient alias for `Result<T, CryptoError>`.
pub type CryptoResult<T> = Result<T, CryptoError>;

/// Errors produced by the cryptographic substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CryptoError {
    /// A scheme or cipher parameter is outside its admissible range.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// Two ring elements or ciphertexts use incompatible parameters
    /// (different degree, modulus or scale).
    ParameterMismatch {
        /// Description of the mismatch.
        reason: String,
    },
    /// The requested slot count exceeds the capacity of the ring
    /// (`N / 2` slots for degree `N`).
    TooManySlots {
        /// Slots requested.
        requested: usize,
        /// Slots available.
        capacity: usize,
    },
    /// A value to encode is too large for the scale/modulus combination and
    /// would wrap around, destroying correctness.
    EncodingOverflow {
        /// The offending magnitude.
        magnitude: f64,
    },
    /// No suitable NTT root of unity exists for the modulus/degree pair.
    NoNttRoot {
        /// The modulus in question.
        modulus: u64,
        /// The ring degree in question.
        degree: usize,
    },
    /// Key material has the wrong length.
    InvalidKeyLength {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            CryptoError::ParameterMismatch { reason } => {
                write!(f, "parameter mismatch: {reason}")
            }
            CryptoError::TooManySlots {
                requested,
                capacity,
            } => write!(
                f,
                "requested {requested} slots but the ring only offers {capacity}"
            ),
            CryptoError::EncodingOverflow { magnitude } => {
                write!(
                    f,
                    "value of magnitude {magnitude} overflows the encoding range"
                )
            }
            CryptoError::NoNttRoot { modulus, degree } => {
                write!(f, "no 2*{degree}-th root of unity modulo {modulus}")
            }
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(
                    f,
                    "invalid key length: expected {expected} bytes, got {actual}"
                )
            }
        }
    }
}

impl std::error::Error for CryptoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CryptoError::TooManySlots {
            requested: 100,
            capacity: 32,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("32"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CryptoError>();
    }
}
