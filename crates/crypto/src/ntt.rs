//! Negacyclic number-theoretic transform (NTT) for fast multiplication in
//! `Z_q[X]/(X^N + 1)`.
//!
//! For an NTT-friendly prime `q ≡ 1 (mod 2N)` there exists a primitive
//! `2N`-th root of unity `psi`; evaluating a polynomial at the odd powers of
//! `psi` turns negacyclic convolution into pointwise multiplication. This
//! module precomputes the twiddle factors once per `(q, N)` pair and provides
//! the standard iterative Cooley–Tukey forward transform and Gentleman–Sande
//! inverse transform. The product is cross-checked against the schoolbook
//! reference in tests.

use crate::error::{CryptoError, CryptoResult};
use crate::poly::{Modulus, Polynomial};

/// Precomputed twiddle factors for one `(modulus, degree)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NttTable {
    modulus: Modulus,
    degree: usize,
    /// psi^bitrev(i) for the forward transform.
    psi_rev: Vec<u64>,
    /// psi^{-bitrev(i)} for the inverse transform.
    psi_inv_rev: Vec<u64>,
    /// N^{-1} mod q.
    n_inv: u64,
}

impl NttTable {
    /// Builds the table for ring degree `degree` (a power of two) and the
    /// given prime modulus.
    ///
    /// # Errors
    /// * [`CryptoError::InvalidParameter`] if the degree is not a power of
    ///   two.
    /// * [`CryptoError::NoNttRoot`] if `q - 1` is not divisible by `2N` or no
    ///   primitive `2N`-th root of unity exists (i.e. `q` is not NTT-friendly
    ///   for this degree).
    pub fn new(modulus: Modulus, degree: usize) -> CryptoResult<Self> {
        if degree == 0 || !degree.is_power_of_two() {
            return Err(CryptoError::InvalidParameter {
                reason: format!("ring degree must be a power of two, got {degree}"),
            });
        }
        let q = modulus.value();
        let two_n = 2 * degree as u64;
        if (q - 1) % two_n != 0 {
            return Err(CryptoError::NoNttRoot { modulus: q, degree });
        }
        let psi = find_primitive_2nth_root(modulus, degree)
            .ok_or(CryptoError::NoNttRoot { modulus: q, degree })?;
        let psi_inv = modulus.inv(psi)?;
        let bits = degree.trailing_zeros();
        let mut psi_rev = vec![0u64; degree];
        let mut psi_inv_rev = vec![0u64; degree];
        for i in 0..degree {
            let rev = (i as u64).reverse_bits() >> (64 - bits) as u64;
            psi_rev[i] = modulus.pow(psi, rev);
            psi_inv_rev[i] = modulus.pow(psi_inv, rev);
        }
        let n_inv = modulus.inv(degree as u64)?;
        Ok(Self {
            modulus,
            degree,
            psi_rev,
            psi_inv_rev,
            n_inv,
        })
    }

    /// The ring degree this table was built for.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The modulus this table was built for.
    pub fn modulus(&self) -> Modulus {
        self.modulus
    }

    /// In-place forward negacyclic NTT (coefficient to evaluation domain).
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the table's degree.
    pub fn forward(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "ntt: length mismatch");
        let q = self.modulus;
        let n = self.degree;
        let mut t = n;
        let mut m = 1;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = q.mul(values[j + t], s);
                    values[j] = q.add(u, v);
                    values[j + t] = q.sub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (evaluation to coefficient domain).
    ///
    /// # Panics
    /// Panics if `values.len()` differs from the table's degree.
    pub fn inverse(&self, values: &mut [u64]) {
        assert_eq!(values.len(), self.degree, "intt: length mismatch");
        let q = self.modulus;
        let n = self.degree;
        let mut t = 1;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.psi_inv_rev[h + i];
                for j in j1..j2 {
                    let u = values[j];
                    let v = values[j + t];
                    values[j] = q.add(u, v);
                    values[j + t] = q.mul(q.sub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for v in values.iter_mut() {
            *v = q.mul(*v, self.n_inv);
        }
    }

    /// Multiplies two ring elements using the NTT.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] when an operand does not
    /// match the table's degree or modulus.
    pub fn multiply(&self, a: &Polynomial, b: &Polynomial) -> CryptoResult<Polynomial> {
        for p in [a, b] {
            if p.degree() != self.degree || p.modulus() != self.modulus {
                return Err(CryptoError::ParameterMismatch {
                    reason: format!(
                        "operand degree {} modulus {} does not match NTT table degree {} modulus {}",
                        p.degree(),
                        p.modulus().value(),
                        self.degree,
                        self.modulus.value()
                    ),
                });
            }
        }
        let mut fa = a.coefficients().to_vec();
        let mut fb = b.coefficients().to_vec();
        self.forward(&mut fa);
        self.forward(&mut fb);
        for (x, y) in fa.iter_mut().zip(&fb) {
            *x = self.modulus.mul(*x, *y);
        }
        self.inverse(&mut fa);
        Polynomial::from_coefficients(fa, self.modulus)
    }
}

/// Finds a primitive `2N`-th root of unity modulo the prime `q` (requires
/// `2N | q - 1`). Because `N` is a power of two it suffices to find `x` with
/// `x^{(q-1)/2N}` of exact order `2N`, which holds iff its `N`-th power is
/// `-1 mod q`.
fn find_primitive_2nth_root(modulus: Modulus, degree: usize) -> Option<u64> {
    let q = modulus.value();
    let two_n = 2 * degree as u64;
    let exponent = (q - 1) / two_n;
    for candidate in 2..(q.min(2_000)) {
        let g = modulus.pow(candidate, exponent);
        if modulus.pow(g, degree as u64) == q - 1 {
            return Some(g);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    const Q30: u64 = 1_073_479_681; // 30-bit prime, q ≡ 1 mod 2^18
    const Q59: u64 = 576_460_752_300_015_617; // 59-bit prime, q ≡ 1 mod 2^18

    #[test]
    fn table_construction_validates_inputs() {
        let q = Modulus::new(Q30).unwrap();
        assert!(NttTable::new(q, 0).is_err());
        assert!(NttTable::new(q, 3).is_err());
        assert!(NttTable::new(q, 1024).is_ok());
        // 97 - 1 = 96 is not divisible by 2*64 = 128.
        let small = Modulus::new(97).unwrap();
        assert!(matches!(
            NttTable::new(small, 64),
            Err(CryptoError::NoNttRoot { .. })
        ));
    }

    #[test]
    fn forward_inverse_round_trip() {
        let q = Modulus::new(Q30).unwrap();
        let table = NttTable::new(q, 64).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let poly = Polynomial::sample_uniform(64, q, &mut rng).unwrap();
        let mut values = poly.coefficients().to_vec();
        table.forward(&mut values);
        table.inverse(&mut values);
        assert_eq!(values, poly.coefficients());
    }

    #[test]
    fn ntt_product_matches_schoolbook_small() {
        let q = Modulus::new(Q30).unwrap();
        let table = NttTable::new(q, 8).unwrap();
        let a = Polynomial::from_signed(&[1, 2, 3, 4, 5, 6, 7, 8], q).unwrap();
        let b = Polynomial::from_signed(&[-3, 0, 0, 1, 0, 0, 0, 2], q).unwrap();
        assert_eq!(
            table.multiply(&a, &b).unwrap(),
            a.mul_schoolbook(&b).unwrap()
        );
    }

    #[test]
    fn ntt_product_matches_schoolbook_large_modulus() {
        let q = Modulus::new(Q59).unwrap();
        let table = NttTable::new(q, 128).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let a = Polynomial::sample_uniform(128, q, &mut rng).unwrap();
        let b = Polynomial::sample_uniform(128, q, &mut rng).unwrap();
        assert_eq!(
            table.multiply(&a, &b).unwrap(),
            a.mul_schoolbook(&b).unwrap()
        );
    }

    #[test]
    fn mismatched_operands_are_rejected() {
        let q = Modulus::new(Q30).unwrap();
        let table = NttTable::new(q, 16).unwrap();
        let a = Polynomial::zero(16, q).unwrap();
        let b = Polynomial::zero(32, q).unwrap();
        assert!(table.multiply(&a, &b).is_err());
        let other_q = Modulus::new(Q59).unwrap();
        let c = Polynomial::zero(16, other_q).unwrap();
        assert!(table.multiply(&a, &c).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ntt_matches_schoolbook_random(
            a in proptest::collection::vec(-1000i64..1000, 32),
            b in proptest::collection::vec(-1000i64..1000, 32),
        ) {
            let q = Modulus::new(Q30).unwrap();
            let table = NttTable::new(q, 32).unwrap();
            let pa = Polynomial::from_signed(&a, q).unwrap();
            let pb = Polynomial::from_signed(&b, q).unwrap();
            prop_assert_eq!(table.multiply(&pa, &pb).unwrap(), pa.mul_schoolbook(&pb).unwrap());
        }
    }
}
