//! Analytic surrogate of the LWE security estimator.
//!
//! The paper measures FHE robustness by the *minimum security level* across
//! three lattice attacks — the unique shortest vector problem (uSVP), bounded
//! distance decoding (BDD) and the hybrid dual attack — evaluated with the
//! LWE estimator of Albrecht et al. Running the real estimator (a SageMath
//! tool) is outside the scope of a Rust reproduction, so this module provides
//! the standard closed-form "core-SVP" style approximation of those attack
//! costs:
//!
//! 1. estimate the root Hermite factor `delta` an attack needs to succeed for
//!    the given ring dimension `n`, modulus `q` and error width `sigma`,
//! 2. convert `delta` into the BKZ block size `beta` via the asymptotic
//!    relation `delta ~ (beta/(2 pi e) * (pi beta)^{1/beta})^{1/(2(beta-1))}`,
//! 3. convert `beta` into a bit-security level using the core-SVP cost model
//!    `2^{0.292 beta}` (classical sieving), with small per-attack adjustments
//!    that model the relative strength ordering of the three attacks.
//!
//! The absolute numbers are approximations, but the property the QuHE
//! optimizer relies on — security increases monotonically with the ring
//! dimension (the polynomial degree `lambda`) at fixed modulus — holds by
//! construction and is verified by tests. The paper's own fitted law
//! (Eq. 30) is available in [`crate::cost_model::min_security_level`].

/// The three attack families the minimum is taken over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AttackModel {
    /// Primal attack solving unique-SVP via lattice reduction.
    UniqueSvp,
    /// Decoding (BDD) attack.
    BoundedDistanceDecoding,
    /// Hybrid dual attack (dual lattice + combinatorial guessing).
    HybridDual,
}

impl AttackModel {
    /// All modeled attacks.
    pub const ALL: [AttackModel; 3] = [
        AttackModel::UniqueSvp,
        AttackModel::BoundedDistanceDecoding,
        AttackModel::HybridDual,
    ];

    /// Multiplicative adjustment applied to the core-SVP exponent, modeling
    /// the typical relative strength of the attacks reported by the LWE
    /// estimator (the dual/hybrid attack is usually slightly more expensive
    /// than the primal attacks for CKKS-style parameters).
    fn cost_factor(self) -> f64 {
        match self {
            AttackModel::UniqueSvp => 1.00,
            AttackModel::BoundedDistanceDecoding => 1.02,
            AttackModel::HybridDual => 1.06,
        }
    }
}

/// Security estimate of one LWE configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SecurityEstimate {
    /// Bit-security per attack model.
    pub per_attack: Vec<(AttackModel, f64)>,
    /// The minimum security level across attacks (bits) — the quantity the
    /// paper calls the minimum security level.
    pub min_security_bits: f64,
}

/// Estimates the bit security of an RLWE/LWE configuration with ring
/// dimension `n`, modulus `q` and error standard deviation `sigma`.
///
/// Returns zero security for degenerate configurations (dimension below 128
/// or error width not exceeding zero), mirroring how the real estimator
/// reports failures for toy parameters.
pub fn estimate_security(n: usize, q: f64, sigma: f64) -> SecurityEstimate {
    let mut per_attack = Vec::with_capacity(AttackModel::ALL.len());
    for attack in AttackModel::ALL {
        per_attack.push((attack, attack_security_bits(attack, n, q, sigma)));
    }
    let min_security_bits = per_attack
        .iter()
        .map(|(_, bits)| *bits)
        .fold(f64::INFINITY, f64::min)
        .max(0.0);
    SecurityEstimate {
        per_attack,
        min_security_bits: if min_security_bits.is_finite() {
            min_security_bits
        } else {
            0.0
        },
    }
}

/// Bit security of one attack model.
fn attack_security_bits(attack: AttackModel, n: usize, q: f64, sigma: f64) -> f64 {
    if n < 128 || sigma <= 0.0 || q <= 1.0 {
        return 0.0;
    }
    let n = n as f64;
    // Required root Hermite factor: the standard primal estimate
    //   delta = 2^{ log2^2(q / sigma) / (4 n log2 q) }
    // (e.g. Gentry-Halevi-Smart style); smaller delta = harder attack.
    let log_q = q.log2();
    let advantage = (q / sigma).log2();
    let log_delta = advantage * advantage / (4.0 * n * log_q);
    let delta = 2f64.powf(log_delta);
    if delta <= 1.0 {
        return 1024.0; // effectively unreachable by lattice reduction
    }
    let beta = block_size_for_delta(delta);
    // Core-SVP classical sieving cost 2^{0.292 beta}.
    0.292 * beta * attack.cost_factor()
}

/// Inverts the asymptotic relation between the BKZ block size and the root
/// Hermite factor by bisection.
fn block_size_for_delta(delta: f64) -> f64 {
    let delta_of_beta = |beta: f64| -> f64 {
        (beta / (2.0 * std::f64::consts::PI * std::f64::consts::E)
            * (std::f64::consts::PI * beta).powf(1.0 / beta))
        .powf(1.0 / (2.0 * (beta - 1.0)))
    };
    // delta decreases with beta; find beta with delta_of_beta(beta) = delta.
    let mut lo = 50.0_f64;
    let mut hi = 50_000.0_f64;
    if delta >= delta_of_beta(lo) {
        return lo;
    }
    if delta <= delta_of_beta(hi) {
        return hi;
    }
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if delta_of_beta(mid) > delta {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_parameters_have_no_security() {
        let est = estimate_security(64, 2f64.powi(59), 3.2);
        assert_eq!(est.min_security_bits, 0.0);
        let est = estimate_security(4096, 2f64.powi(59), 0.0);
        assert_eq!(est.min_security_bits, 0.0);
    }

    #[test]
    fn security_increases_with_dimension() {
        let q = 2f64.powi(438); // a typical CKKS modulus chain for lambda = 2^15
        let s1 = estimate_security(1 << 15, q, 3.2).min_security_bits;
        let s2 = estimate_security(1 << 16, q, 3.2).min_security_bits;
        let s3 = estimate_security(1 << 17, q, 3.2).min_security_bits;
        assert!(s1 < s2 && s2 < s3, "{s1} {s2} {s3}");
    }

    #[test]
    fn security_decreases_with_modulus() {
        let n = 1 << 15;
        let s_small_q = estimate_security(n, 2f64.powi(300), 3.2).min_security_bits;
        let s_large_q = estimate_security(n, 2f64.powi(800), 3.2).min_security_bits;
        assert!(s_small_q > s_large_q);
    }

    #[test]
    fn standard_parameter_set_lands_in_plausible_range() {
        // The homomorphic encryption standard allows a ~881-bit modulus chain
        // at N = 2^15 for 128-bit security; the surrogate should land in the
        // same ballpark for that configuration (not exact — it is an analytic
        // approximation).
        let bits = estimate_security(1 << 15, 2f64.powi(881), 3.2).min_security_bits;
        assert!(
            (70.0..220.0).contains(&bits),
            "estimate {bits} outside plausible range"
        );
    }

    #[test]
    fn minimum_is_over_all_attacks() {
        let est = estimate_security(1 << 15, 2f64.powi(438), 3.2);
        assert_eq!(est.per_attack.len(), 3);
        let min = est
            .per_attack
            .iter()
            .map(|(_, b)| *b)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(est.min_security_bits, min);
        // The uSVP attack has the lowest adjustment factor, so it attains the
        // minimum in this model.
        let usvp = est
            .per_attack
            .iter()
            .find(|(a, _)| *a == AttackModel::UniqueSvp)
            .unwrap()
            .1;
        assert_eq!(est.min_security_bits, usvp);
    }

    #[test]
    fn block_size_inversion_is_monotone() {
        let b1 = block_size_for_delta(1.005);
        let b2 = block_size_for_delta(1.003);
        assert!(b2 > b1, "smaller delta must require larger block size");
    }
}
