//! A simplified CKKS approximate homomorphic encryption scheme.
//!
//! The QuHE server evaluates encrypted-prediction workloads with CKKS
//! (Section III-A of the paper). This module implements a self-contained,
//! from-scratch CKKS variant sufficient to demonstrate the complete
//! encrypt → transcipher → evaluate pipeline:
//!
//! * canonical-embedding encoding of real vectors into `N/2` slots,
//! * RLWE public-key encryption and decryption,
//! * homomorphic addition, subtraction, plaintext multiplication and one
//!   level of ciphertext multiplication with gadget-decomposition
//!   relinearization.
//!
//! # Simplifications relative to a production CKKS
//!
//! A single prime modulus is used (no RNS limbs) and there is no rescaling,
//! so the scale doubles (in log) at every multiplication and the
//! multiplicative depth is limited by the modulus — depth 1 to 2 at the
//! default parameters.
//! This matches the role CKKS plays in the paper: the optimizer consumes only
//! the *cost* models (Eqs. 29–31 in [`crate::cost_model`]); the functional
//! scheme here exists to exercise the data path end to end. DESIGN.md records
//! this substitution. The `insecure_test_parameters` use a tiny ring degree
//! and are — as the name says — not secure; realistic degrees
//! (`2^15 … 2^17`) are exactly the `lambda` values the optimizer selects.

use rand::Rng;

use crate::error::{CryptoError, CryptoResult};
use crate::keys::{KeySet, PublicKey, RelinearizationKey, SecretKey};
use crate::ntt::NttTable;
use crate::poly::{Modulus, Polynomial};

/// Parameters of the simplified CKKS scheme.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CkksParameters {
    /// Ring degree `N` (a power of two). The number of complex slots is
    /// `N / 2`.
    pub degree: usize,
    /// Ciphertext modulus `q` (an NTT-friendly prime, `q ≡ 1 mod 2N`).
    pub modulus: u64,
    /// Encoding scale `Delta`; messages are stored as `round(Delta * value)`.
    pub scale: f64,
    /// Standard deviation of the error distribution.
    pub error_std: f64,
    /// Log2 of the relinearization decomposition base.
    pub base_log: u32,
}

impl CkksParameters {
    /// A 59-bit NTT-friendly prime (`q ≡ 1 mod 2^18`) used by the default
    /// parameter sets.
    pub const DEFAULT_MODULUS: u64 = 576_460_752_300_015_617;

    /// Small, fast, **insecure** parameters for tests and examples:
    /// degree 64 (32 slots), 59-bit modulus, scale `2^25`.
    pub fn insecure_test_parameters() -> Self {
        Self {
            degree: 64,
            modulus: Self::DEFAULT_MODULUS,
            scale: (1u64 << 25) as f64,
            error_std: 3.2,
            base_log: 12,
        }
    }

    /// Moderately sized parameters (degree 1024) for the examples that want a
    /// more realistic slot count while staying fast enough for CI. Still not
    /// a secure configuration — see [`crate::lwe_estimator`] for estimating
    /// the security of a configuration.
    pub fn demo_parameters() -> Self {
        Self {
            degree: 1024,
            modulus: Self::DEFAULT_MODULUS,
            scale: (1u64 << 25) as f64,
            error_std: 3.2,
            base_log: 12,
        }
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidParameter`] for a non-power-of-two
    /// degree, a too-small modulus or scale, or a non-positive error width.
    pub fn validate(&self) -> CryptoResult<()> {
        if self.degree < 4 || !self.degree.is_power_of_two() {
            return Err(CryptoError::InvalidParameter {
                reason: format!("degree must be a power of two >= 4, got {}", self.degree),
            });
        }
        if self.modulus < 1 << 30 {
            return Err(CryptoError::InvalidParameter {
                reason: "modulus must be at least 2^30".to_string(),
            });
        }
        if !(self.scale >= 2.0 && self.scale.is_finite()) {
            return Err(CryptoError::InvalidParameter {
                reason: "scale must be at least 2".to_string(),
            });
        }
        if !(self.error_std > 0.0) {
            return Err(CryptoError::InvalidParameter {
                reason: "error_std must be positive".to_string(),
            });
        }
        if self.base_log == 0 || self.base_log > 32 {
            return Err(CryptoError::InvalidParameter {
                reason: "base_log must lie in 1..=32".to_string(),
            });
        }
        Ok(())
    }

    /// Number of complex slots, `N / 2`.
    pub fn slots(&self) -> usize {
        self.degree / 2
    }
}

/// An encoded (but not encrypted) CKKS message.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Plaintext {
    /// The encoding polynomial.
    pub poly: Polynomial,
    /// The scale the values were encoded at.
    pub scale: f64,
}

/// A CKKS ciphertext `(c0, c1)` with `c0 + c1 s ≈ Delta * m`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Ciphertext {
    /// The `c0` component.
    pub c0: Polynomial,
    /// The `c1` component.
    pub c1: Polynomial,
    /// The scale of the underlying plaintext.
    pub scale: f64,
}

/// The CKKS context: validated parameters plus the precomputed NTT table.
#[derive(Debug, Clone)]
pub struct CkksContext {
    params: CkksParameters,
    modulus: Modulus,
    ntt: NttTable,
}

impl CkksContext {
    /// Creates a context for the given parameters.
    ///
    /// # Errors
    /// * [`CryptoError::InvalidParameter`] if the parameters are invalid.
    /// * [`CryptoError::NoNttRoot`] if the modulus is not NTT-friendly for
    ///   the requested degree.
    pub fn new(params: CkksParameters) -> CryptoResult<Self> {
        params.validate()?;
        let modulus = Modulus::new(params.modulus)?;
        let ntt = NttTable::new(modulus, params.degree)?;
        Ok(Self {
            params,
            modulus,
            ntt,
        })
    }

    /// The parameters of this context.
    pub fn params(&self) -> &CkksParameters {
        &self.params
    }

    /// Number of available slots.
    pub fn slots(&self) -> usize {
        self.params.slots()
    }

    /// Runs `KeyGen(lambda, q)` (Eq. 2 of the paper): secret, public and
    /// relinearization keys.
    pub fn generate_keys<R: Rng + ?Sized>(&self, rng: &mut R) -> KeySet {
        let n = self.params.degree;
        let q = self.modulus;
        let s = Polynomial::sample_ternary(n, q, rng).expect("degree validated");
        // Public key: b = -(a s) + e.
        let a = Polynomial::sample_uniform(n, q, rng).expect("degree validated");
        let e = Polynomial::sample_error(n, q, self.params.error_std, rng).expect("validated");
        let b = self
            .ntt
            .multiply(&a, &s)
            .expect("matching parameters")
            .neg()
            .add(&e)
            .expect("matching parameters");
        // Relinearization key: gadget encryptions of s^2.
        let s_squared = self.ntt.multiply(&s, &s).expect("matching parameters");
        let digits = q.value().ilog2() / self.params.base_log + 1;
        let mut components = Vec::with_capacity(digits as usize);
        for i in 0..digits {
            let a_i = Polynomial::sample_uniform(n, q, rng).expect("validated");
            let e_i =
                Polynomial::sample_error(n, q, self.params.error_std, rng).expect("validated");
            let factor = q.pow(2, u64::from(self.params.base_log) * u64::from(i));
            let b_i = self
                .ntt
                .multiply(&a_i, &s)
                .expect("matching parameters")
                .neg()
                .add(&e_i)
                .expect("matching parameters")
                .add(&s_squared.scalar_mul(factor))
                .expect("matching parameters");
            components.push((b_i, a_i));
        }
        KeySet {
            secret: SecretKey { s },
            public: PublicKey { b, a },
            relinearization: RelinearizationKey {
                components,
                base_log: self.params.base_log,
            },
        }
    }

    /// Encodes up to `slots()` real values into a plaintext at the context
    /// scale, using the canonical embedding at the primitive `2N`-th roots of
    /// unity.
    ///
    /// # Errors
    /// * [`CryptoError::TooManySlots`] if `values` exceeds the slot count.
    /// * [`CryptoError::EncodingOverflow`] if a scaled coefficient would
    ///   exceed `q / 4` (leaving no headroom for noise or products).
    pub fn encode(&self, values: &[f64]) -> CryptoResult<Plaintext> {
        self.encode_at_scale(values, self.params.scale)
    }

    /// Encodes at an explicit scale (used internally for plaintext products).
    ///
    /// # Errors
    /// Same conditions as [`CkksContext::encode`].
    pub fn encode_at_scale(&self, values: &[f64], scale: f64) -> CryptoResult<Plaintext> {
        let slots = self.slots();
        if values.len() > slots {
            return Err(CryptoError::TooManySlots {
                requested: values.len(),
                capacity: slots,
            });
        }
        let n = self.params.degree;
        let mut padded = vec![0.0f64; slots];
        padded[..values.len()].copy_from_slice(values);

        // m_k = scale * (2/N) * Re( sum_j z_j * exp(-i pi (2j+1) k / N) ).
        let mut coeffs = vec![0i64; n];
        let limit = self.modulus.value() as f64 / 4.0;
        for (k, coeff) in coeffs.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for (j, &z) in padded.iter().enumerate() {
                let angle = -std::f64::consts::PI * ((2 * j + 1) * k) as f64 / n as f64;
                acc += z * angle.cos();
            }
            let value = scale * 2.0 / n as f64 * acc;
            if !value.is_finite() || value.abs() >= limit {
                return Err(CryptoError::EncodingOverflow { magnitude: value });
            }
            *coeff = value.round() as i64;
        }
        Ok(Plaintext {
            poly: Polynomial::from_signed(&coeffs, self.modulus)?,
            scale,
        })
    }

    /// Decodes the first `len` slots of a plaintext back into real values.
    ///
    /// # Errors
    /// Returns [`CryptoError::TooManySlots`] if `len` exceeds the slot count.
    pub fn decode(&self, plaintext: &Plaintext, len: usize) -> CryptoResult<Vec<f64>> {
        let slots = self.slots();
        if len > slots {
            return Err(CryptoError::TooManySlots {
                requested: len,
                capacity: slots,
            });
        }
        let n = self.params.degree;
        let centered = plaintext.poly.centered_coefficients();
        let mut out = Vec::with_capacity(len);
        for j in 0..len {
            let mut acc = 0.0f64;
            for (k, &c) in centered.iter().enumerate() {
                let angle = std::f64::consts::PI * ((2 * j + 1) * k) as f64 / n as f64;
                acc += c as f64 * angle.cos();
            }
            out.push(acc / plaintext.scale);
        }
        Ok(out)
    }

    /// Encrypts a plaintext under the public key.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] if the plaintext was
    /// produced by a different context.
    pub fn encrypt<R: Rng + ?Sized>(
        &self,
        plaintext: &Plaintext,
        public_key: &PublicKey,
        rng: &mut R,
    ) -> CryptoResult<Ciphertext> {
        self.check_poly(&plaintext.poly)?;
        let n = self.params.degree;
        let q = self.modulus;
        let u = Polynomial::sample_ternary(n, q, rng)?;
        let e0 = Polynomial::sample_error(n, q, self.params.error_std, rng)?;
        let e1 = Polynomial::sample_error(n, q, self.params.error_std, rng)?;
        let c0 = self
            .ntt
            .multiply(&public_key.b, &u)?
            .add(&e0)?
            .add(&plaintext.poly)?;
        let c1 = self.ntt.multiply(&public_key.a, &u)?.add(&e1)?;
        Ok(Ciphertext {
            c0,
            c1,
            scale: plaintext.scale,
        })
    }

    /// Decrypts a ciphertext with the secret key.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] if the ciphertext was
    /// produced by a different context.
    pub fn decrypt(
        &self,
        ciphertext: &Ciphertext,
        secret_key: &SecretKey,
    ) -> CryptoResult<Plaintext> {
        self.check_poly(&ciphertext.c0)?;
        let poly = ciphertext
            .c0
            .add(&self.ntt.multiply(&ciphertext.c1, &secret_key.s)?)?;
        Ok(Plaintext {
            poly,
            scale: ciphertext.scale,
        })
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for mismatched scales or
    /// parameters.
    pub fn add(&self, lhs: &Ciphertext, rhs: &Ciphertext) -> CryptoResult<Ciphertext> {
        self.check_same_scale(lhs, rhs)?;
        Ok(Ciphertext {
            c0: lhs.c0.add(&rhs.c0)?,
            c1: lhs.c1.add(&rhs.c1)?,
            scale: lhs.scale,
        })
    }

    /// Homomorphic subtraction.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for mismatched scales or
    /// parameters.
    pub fn sub(&self, lhs: &Ciphertext, rhs: &Ciphertext) -> CryptoResult<Ciphertext> {
        self.check_same_scale(lhs, rhs)?;
        Ok(Ciphertext {
            c0: lhs.c0.sub(&rhs.c0)?,
            c1: lhs.c1.sub(&rhs.c1)?,
            scale: lhs.scale,
        })
    }

    /// Adds a plaintext to a ciphertext.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for mismatched scales or
    /// parameters.
    pub fn add_plain(&self, lhs: &Ciphertext, rhs: &Plaintext) -> CryptoResult<Ciphertext> {
        if (lhs.scale - rhs.scale).abs() > 1e-6 * lhs.scale {
            return Err(CryptoError::ParameterMismatch {
                reason: format!("scale mismatch: {} vs {}", lhs.scale, rhs.scale),
            });
        }
        Ok(Ciphertext {
            c0: lhs.c0.add(&rhs.poly)?,
            c1: lhs.c1.clone(),
            scale: lhs.scale,
        })
    }

    /// Multiplies a ciphertext by a plaintext. The result's scale is the
    /// product of the operand scales.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for mismatched parameters.
    pub fn multiply_plain(&self, lhs: &Ciphertext, rhs: &Plaintext) -> CryptoResult<Ciphertext> {
        self.check_poly(&rhs.poly)?;
        Ok(Ciphertext {
            c0: self.ntt.multiply(&lhs.c0, &rhs.poly)?,
            c1: self.ntt.multiply(&lhs.c1, &rhs.poly)?,
            scale: lhs.scale * rhs.scale,
        })
    }

    /// Multiplies two ciphertexts and relinearizes the result back to two
    /// components using the relinearization key. The result's scale is the
    /// product of the operand scales.
    ///
    /// # Errors
    /// Returns [`CryptoError::ParameterMismatch`] for mismatched parameters.
    pub fn multiply(
        &self,
        lhs: &Ciphertext,
        rhs: &Ciphertext,
        relin: &RelinearizationKey,
    ) -> CryptoResult<Ciphertext> {
        self.check_poly(&lhs.c0)?;
        self.check_poly(&rhs.c0)?;
        let d0 = self.ntt.multiply(&lhs.c0, &rhs.c0)?;
        let d1 = self
            .ntt
            .multiply(&lhs.c0, &rhs.c1)?
            .add(&self.ntt.multiply(&lhs.c1, &rhs.c0)?)?;
        let d2 = self.ntt.multiply(&lhs.c1, &rhs.c1)?;

        // Gadget-decompose d2 and fold it into (d0, d1) via the
        // relinearization key.
        let digits = self.gadget_decompose(&d2, relin)?;
        let mut c0 = d0;
        let mut c1 = d1;
        for (digit, (b_i, a_i)) in digits.iter().zip(&relin.components) {
            c0 = c0.add(&self.ntt.multiply(digit, b_i)?)?;
            c1 = c1.add(&self.ntt.multiply(digit, a_i)?)?;
        }
        Ok(Ciphertext {
            c0,
            c1,
            scale: lhs.scale * rhs.scale,
        })
    }

    /// Decomposes a polynomial into base-`2^base_log` digit polynomials.
    fn gadget_decompose(
        &self,
        poly: &Polynomial,
        relin: &RelinearizationKey,
    ) -> CryptoResult<Vec<Polynomial>> {
        let base_log = relin.base_log;
        let mask = (1u64 << base_log) - 1;
        let num_digits = relin.components.len();
        let n = self.params.degree;
        let mut digits = Vec::with_capacity(num_digits);
        for i in 0..num_digits {
            let shift = base_log * i as u32;
            let mut coeffs = vec![0u64; n];
            for (slot, &c) in coeffs.iter_mut().zip(poly.coefficients()) {
                *slot = (c >> shift) & mask;
            }
            digits.push(Polynomial::from_coefficients(coeffs, self.modulus)?);
        }
        Ok(digits)
    }

    fn check_poly(&self, poly: &Polynomial) -> CryptoResult<()> {
        if poly.degree() != self.params.degree || poly.modulus() != self.modulus {
            return Err(CryptoError::ParameterMismatch {
                reason: format!(
                    "polynomial degree {} modulus {} does not match context degree {} modulus {}",
                    poly.degree(),
                    poly.modulus().value(),
                    self.params.degree,
                    self.modulus.value()
                ),
            });
        }
        Ok(())
    }

    fn check_same_scale(&self, lhs: &Ciphertext, rhs: &Ciphertext) -> CryptoResult<()> {
        self.check_poly(&lhs.c0)?;
        self.check_poly(&rhs.c0)?;
        if (lhs.scale - rhs.scale).abs() > 1e-6 * lhs.scale.max(rhs.scale) {
            return Err(CryptoError::ParameterMismatch {
                reason: format!("scale mismatch: {} vs {}", lhs.scale, rhs.scale),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn context() -> CkksContext {
        CkksContext::new(CkksParameters::insecure_test_parameters()).unwrap()
    }

    fn rng() -> rand_chacha::ChaCha20Rng {
        rand_chacha::ChaCha20Rng::seed_from_u64(1234)
    }

    fn assert_close(actual: &[f64], expected: &[f64], tol: f64) {
        assert_eq!(actual.len(), expected.len());
        for (a, e) in actual.iter().zip(expected) {
            assert!((a - e).abs() < tol, "expected {e}, got {a} (tol {tol})");
        }
    }

    #[test]
    fn parameter_validation() {
        let mut p = CkksParameters::insecure_test_parameters();
        p.degree = 48;
        assert!(p.validate().is_err());
        let mut p = CkksParameters::insecure_test_parameters();
        p.scale = 1.0;
        assert!(p.validate().is_err());
        let mut p = CkksParameters::insecure_test_parameters();
        p.base_log = 0;
        assert!(p.validate().is_err());
        assert!(CkksParameters::insecure_test_parameters()
            .validate()
            .is_ok());
        assert!(CkksParameters::demo_parameters().validate().is_ok());
        assert_eq!(CkksParameters::insecure_test_parameters().slots(), 32);
    }

    #[test]
    fn encode_decode_round_trip() {
        let ctx = context();
        let values = vec![0.5, -1.25, 3.75, 2.0, -0.125];
        let pt = ctx.encode(&values).unwrap();
        let decoded = ctx.decode(&pt, values.len()).unwrap();
        assert_close(&decoded, &values, 1e-5);
    }

    #[test]
    fn encode_rejects_too_many_values_and_overflow() {
        let ctx = context();
        assert!(matches!(
            ctx.encode(&vec![1.0; 33]),
            Err(CryptoError::TooManySlots { .. })
        ));
        assert!(matches!(
            ctx.encode(&[1e30]),
            Err(CryptoError::EncodingOverflow { .. })
        ));
        let pt = ctx.encode(&[1.0]).unwrap();
        assert!(matches!(
            ctx.decode(&pt, 64),
            Err(CryptoError::TooManySlots { .. })
        ));
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let ctx = context();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let values = vec![1.0, -2.0, 0.5, 4.25];
        let pt = ctx.encode(&values).unwrap();
        let ct = ctx.encrypt(&pt, &keys.public, &mut rng).unwrap();
        let decrypted = ctx.decrypt(&ct, &keys.secret).unwrap();
        let decoded = ctx.decode(&decrypted, values.len()).unwrap();
        assert_close(&decoded, &values, 1e-3);
    }

    #[test]
    fn homomorphic_addition_and_subtraction() {
        let ctx = context();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, -1.0, 2.5];
        let ct_a = ctx
            .encrypt(&ctx.encode(&a).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let ct_b = ctx
            .encrypt(&ctx.encode(&b).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let sum = ctx.add(&ct_a, &ct_b).unwrap();
        let diff = ctx.sub(&ct_a, &ct_b).unwrap();
        let sum_dec = ctx
            .decode(&ctx.decrypt(&sum, &keys.secret).unwrap(), 3)
            .unwrap();
        let diff_dec = ctx
            .decode(&ctx.decrypt(&diff, &keys.secret).unwrap(), 3)
            .unwrap();
        assert_close(&sum_dec, &[1.5, 1.0, 5.5], 1e-3);
        assert_close(&diff_dec, &[0.5, 3.0, 0.5], 1e-3);
    }

    #[test]
    fn add_plain_offsets_the_message() {
        let ctx = context();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let ct = ctx
            .encrypt(&ctx.encode(&[1.0, 1.0]).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let offset = ctx.encode(&[10.0, -10.0]).unwrap();
        let shifted = ctx.add_plain(&ct, &offset).unwrap();
        let decoded = ctx
            .decode(&ctx.decrypt(&shifted, &keys.secret).unwrap(), 2)
            .unwrap();
        assert_close(&decoded, &[11.0, -9.0], 1e-3);
    }

    #[test]
    fn plaintext_multiplication() {
        let ctx = context();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let data = vec![1.5, -2.0, 0.25];
        let weights = vec![2.0, 3.0, -4.0];
        let ct = ctx
            .encrypt(&ctx.encode(&data).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let product = ctx
            .multiply_plain(&ct, &ctx.encode(&weights).unwrap())
            .unwrap();
        let decoded = ctx
            .decode(&ctx.decrypt(&product, &keys.secret).unwrap(), 3)
            .unwrap();
        assert_close(&decoded, &[3.0, -6.0, -1.0], 5e-2);
    }

    #[test]
    fn ciphertext_multiplication_with_relinearization() {
        let ctx = context();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let a = vec![1.0, 2.0, -3.0];
        let b = vec![2.0, 0.5, 1.5];
        let ct_a = ctx
            .encrypt(&ctx.encode(&a).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let ct_b = ctx
            .encrypt(&ctx.encode(&b).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let prod = ctx.multiply(&ct_a, &ct_b, &keys.relinearization).unwrap();
        assert!((prod.scale - ctx.params().scale * ctx.params().scale).abs() < 1.0);
        let decoded = ctx
            .decode(&ctx.decrypt(&prod, &keys.secret).unwrap(), 3)
            .unwrap();
        assert_close(&decoded, &[2.0, 1.0, -4.5], 5e-2);
    }

    #[test]
    fn encrypted_linear_model_evaluation() {
        // The paper's server workload is encrypted prediction; evaluate
        // y = w * x + b slot-wise under encryption.
        let ctx = context();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let x = vec![0.5, 1.0, 1.5, 2.0];
        let w = vec![2.0, -1.0, 0.5, 3.0];
        let bias = vec![0.1, 0.2, 0.3, 0.4];
        let ct_x = ctx
            .encrypt(&ctx.encode(&x).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let wx = ctx.multiply_plain(&ct_x, &ctx.encode(&w).unwrap()).unwrap();
        let bias_pt = ctx.encode_at_scale(&bias, wx.scale).unwrap();
        let y = ctx.add_plain(&wx, &bias_pt).unwrap();
        let decoded = ctx
            .decode(&ctx.decrypt(&y, &keys.secret).unwrap(), 4)
            .unwrap();
        let expected: Vec<f64> = x
            .iter()
            .zip(&w)
            .zip(&bias)
            .map(|((x, w), b)| x * w + b)
            .collect();
        assert_close(&decoded, &expected, 5e-2);
    }

    #[test]
    fn mismatched_operations_are_rejected() {
        let ctx = context();
        let other = CkksContext::new(CkksParameters::demo_parameters()).unwrap();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let other_keys = other.generate_keys(&mut rng);
        let ct = ctx
            .encrypt(&ctx.encode(&[1.0]).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let other_ct = other
            .encrypt(&other.encode(&[1.0]).unwrap(), &other_keys.public, &mut rng)
            .unwrap();
        assert!(ctx.add(&ct, &other_ct).is_err());
        // Scale mismatch (after a plaintext multiplication) is also rejected.
        let scaled = ctx
            .multiply_plain(&ct, &ctx.encode(&[2.0]).unwrap())
            .unwrap();
        assert!(ctx.add(&ct, &scaled).is_err());
        assert!(ctx
            .add_plain(&scaled, &ctx.encode(&[1.0]).unwrap())
            .is_err());
    }

    #[test]
    fn demo_parameters_round_trip() {
        let ctx = CkksContext::new(CkksParameters::demo_parameters()).unwrap();
        let mut rng = rng();
        let keys = ctx.generate_keys(&mut rng);
        let values: Vec<f64> = (0..100).map(|i| (i as f64) * 0.01 - 0.5).collect();
        let ct = ctx
            .encrypt(&ctx.encode(&values).unwrap(), &keys.public, &mut rng)
            .unwrap();
        let decoded = ctx
            .decode(&ctx.decrypt(&ct, &keys.secret).unwrap(), values.len())
            .unwrap();
        for (d, v) in decoded.iter().zip(&values) {
            assert!((d - v).abs() < 1e-2);
        }
    }
}
