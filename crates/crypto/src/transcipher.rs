//! Transciphering: bridging the symmetric ciphertext into the homomorphic
//! domain on the server (Section III-A, phase 4 of the paper).
//!
//! In the paper the client sends `c = E_kqkd(m)` (a symmetric encryption
//! under the QKD key) together with `Enc(kqkd)` (an HE encryption of that
//! key); the server homomorphically evaluates the symmetric decryption
//! `E^{-1}` over `Enc(c)` and `Enc(kqkd)` to obtain `Enc(m)` without ever
//! seeing the plaintext. Homomorphically evaluating a full ChaCha20
//! decryption circuit under CKKS is not practical (CKKS is an *approximate
//! arithmetic* scheme, not a boolean one); the paper itself only accounts for
//! transciphering through the cycle-cost model `f_eval(lambda)` (Eq. 29).
//!
//! For the functional data path this crate therefore uses the standard
//! CKKS-friendly construction: the ChaCha20 keystream is interpreted as an
//! *additive mask* over the real-valued samples (one mask value per slot).
//! The client sends `masked = m + ks` in the clear — which is
//! information-theoretically as hidden as the keystream is pseudorandom — and
//! the server computes `Enc(masked) - Enc(ks) = Enc(m)` with a single
//! homomorphic subtraction. This preserves exactly the property the system
//! needs (the client performs no HE encryption of its payload; the server
//! obtains `Enc(m)` without learning `m`) and is the substitution documented
//! in DESIGN.md. The cycle cost charged to this step in the resource model
//! remains `f_eval(lambda)`.

use rand::Rng;

use crate::chacha20::{ChaCha20, NONCE_LEN};
use crate::ckks::{Ciphertext, CkksContext};
use crate::error::CryptoResult;
use crate::keys::PublicKey;

/// Scale of the additive mask values derived from the keystream. Masks are
/// drawn from `[-MASK_RANGE/2, MASK_RANGE/2)`.
const MASK_RANGE: f64 = 256.0;

/// A transciphering session bound to one QKD-distributed key and nonce.
#[derive(Debug, Clone)]
pub struct TranscipherSession {
    cipher: ChaCha20,
    stream_offset: u32,
}

impl TranscipherSession {
    /// Creates a session from a 32-byte QKD key. The `stream_offset` selects
    /// the starting ChaCha20 block so that successive batches use fresh
    /// keystream.
    ///
    /// # Panics
    /// Panics if `key` is not exactly 32 bytes (the QKD layer always delivers
    /// 32-byte keys; passing anything else is a programming error).
    pub fn new(key: &[u8], stream_offset: u32) -> Self {
        let nonce = [0u8; NONCE_LEN];
        let cipher =
            ChaCha20::new(key, &nonce).expect("transcipher session requires a 32-byte key");
        Self {
            cipher,
            stream_offset,
        }
    }

    /// Derives `len` real-valued mask samples from the keystream. Each sample
    /// consumes two keystream bytes and lies in `[-128, 128)`.
    pub fn keystream_mask(&self, len: usize) -> Vec<f64> {
        let bytes = self.cipher.keystream(self.stream_offset, 2 * len);
        bytes
            .chunks_exact(2)
            .map(|pair| {
                let raw = u16::from_le_bytes([pair[0], pair[1]]);
                (f64::from(raw) / f64::from(u16::MAX)) * MASK_RANGE - MASK_RANGE / 2.0
            })
            .collect()
    }

    /// Client side: masks the plaintext samples with the keystream,
    /// `masked_i = m_i + ks_i`. The result reveals nothing about `m` to a
    /// party that does not know the keystream.
    pub fn mask(&self, samples: &[f64]) -> Vec<f64> {
        samples
            .iter()
            .zip(self.keystream_mask(samples.len()))
            .map(|(m, ks)| m + ks)
            .collect()
    }

    /// Removes the mask in the clear (used by tests and by the client to
    /// verify round trips).
    pub fn unmask(&self, masked: &[f64]) -> Vec<f64> {
        masked
            .iter()
            .zip(self.keystream_mask(masked.len()))
            .map(|(c, ks)| c - ks)
            .collect()
    }

    /// Server side helper: encrypts the keystream mask under the client's HE
    /// public key. In the full protocol the client ships `Enc(kqkd)` and the
    /// server expands it; expanding the keystream inside CKKS is the step the
    /// cost model `f_eval` accounts for, and here it is performed by the
    /// holder of the keystream and then encrypted.
    ///
    /// # Errors
    /// Propagates encoding/encryption errors from the CKKS context (e.g. too
    /// many slots requested).
    pub fn encrypt_keystream<R: Rng + ?Sized>(
        &self,
        context: &CkksContext,
        public_key: &PublicKey,
        len: usize,
        rng: &mut R,
    ) -> CryptoResult<Ciphertext> {
        let mask = self.keystream_mask(len);
        let plaintext = context.encode(&mask)?;
        context.encrypt(&plaintext, public_key, rng)
    }

    /// Full server-side transciphering step: given the masked samples
    /// (received over the air) and the HE-encrypted keystream, produce
    /// `Enc(m)`.
    ///
    /// # Errors
    /// Propagates CKKS errors (slot overflow, parameter mismatch).
    pub fn transcipher<R: Rng + ?Sized>(
        &self,
        context: &CkksContext,
        public_key: &PublicKey,
        masked_samples: &[f64],
        rng: &mut R,
    ) -> CryptoResult<Ciphertext> {
        let enc_masked = context.encrypt(&context.encode(masked_samples)?, public_key, rng)?;
        let enc_keystream =
            self.encrypt_keystream(context, public_key, masked_samples.len(), rng)?;
        context.sub(&enc_masked, &enc_keystream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ckks::CkksParameters;
    use rand::SeedableRng;

    fn context() -> CkksContext {
        CkksContext::new(CkksParameters::insecure_test_parameters()).unwrap()
    }

    #[test]
    fn mask_unmask_round_trip() {
        let session = TranscipherSession::new(&[7u8; 32], 0);
        let samples = vec![1.0, -3.5, 0.25, 100.0];
        let masked = session.mask(&samples);
        assert_ne!(masked, samples);
        let recovered = session.unmask(&masked);
        for (r, s) in recovered.iter().zip(&samples) {
            assert!((r - s).abs() < 1e-9);
        }
    }

    #[test]
    fn masks_are_deterministic_per_key_and_offset() {
        let a = TranscipherSession::new(&[1u8; 32], 0);
        let b = TranscipherSession::new(&[1u8; 32], 0);
        let c = TranscipherSession::new(&[1u8; 32], 4);
        let d = TranscipherSession::new(&[2u8; 32], 0);
        assert_eq!(a.keystream_mask(16), b.keystream_mask(16));
        assert_ne!(a.keystream_mask(16), c.keystream_mask(16));
        assert_ne!(a.keystream_mask(16), d.keystream_mask(16));
    }

    #[test]
    fn mask_values_lie_in_documented_range() {
        let session = TranscipherSession::new(&[9u8; 32], 3);
        for v in session.keystream_mask(1024) {
            assert!((-128.0..128.0).contains(&v), "mask value {v} out of range");
        }
    }

    #[test]
    fn transciphering_recovers_the_plaintext_homomorphically() {
        let ctx = context();
        let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(99);
        let keys = ctx.generate_keys(&mut rng);
        let session = TranscipherSession::new(&[0xAB; 32], 0);
        let samples = vec![2.5, -1.0, 0.75, 4.0, -3.25];

        // Client: mask and transmit.
        let masked = session.mask(&samples);
        // Server: transcipher into Enc(m), then evaluate (here: scale by 2).
        let enc_m = session
            .transcipher(&ctx, &keys.public, &masked, &mut rng)
            .unwrap();
        let doubled = ctx
            .multiply_plain(&enc_m, &ctx.encode(&vec![2.0; samples.len()]).unwrap())
            .unwrap();

        let decoded = ctx
            .decode(&ctx.decrypt(&doubled, &keys.secret).unwrap(), samples.len())
            .unwrap();
        for (d, s) in decoded.iter().zip(&samples) {
            assert!((d - 2.0 * s).abs() < 0.1, "expected {}, got {d}", 2.0 * s);
        }
    }

    #[test]
    fn masked_samples_do_not_resemble_plaintext() {
        // Crude distinguishability check: correlation between plaintext and
        // masked samples should be far from 1 when the mask dominates.
        let session = TranscipherSession::new(&[0x55; 32], 7);
        let samples: Vec<f64> = (0..256).map(|i| (i % 7) as f64).collect();
        let masked = session.mask(&samples);
        let mean_s: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let mean_m: f64 = masked.iter().sum::<f64>() / masked.len() as f64;
        let cov: f64 = samples
            .iter()
            .zip(&masked)
            .map(|(s, m)| (s - mean_s) * (m - mean_m))
            .sum::<f64>();
        let var_s: f64 = samples.iter().map(|s| (s - mean_s).powi(2)).sum();
        let var_m: f64 = masked.iter().map(|m| (m - mean_m).powi(2)).sum();
        let corr = cov / (var_s * var_m).sqrt();
        assert!(corr.abs() < 0.3, "correlation {corr} too high");
    }
}
