//! Key material for the CKKS scheme.
//!
//! Key generation lives on [`crate::ckks::CkksContext::generate_keys`]; this
//! module only defines the key containers so they can be passed around (and
//! serialized) independently of the context.

use crate::poly::Polynomial;

/// The CKKS secret key: a ternary ring element `s`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SecretKey {
    /// The secret ring element.
    pub s: Polynomial,
}

/// The CKKS public key `(b, a)` with `b = -(a s) + e`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PublicKey {
    /// The `b` component.
    pub b: Polynomial,
    /// The uniformly random `a` component.
    pub a: Polynomial,
}

/// The relinearization (evaluation) key: base-`2^base_log` gadget encryptions
/// of `s^2`, used to reduce a degree-2 ciphertext back to two components
/// after a homomorphic multiplication.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RelinearizationKey {
    /// One `(b_i, a_i)` pair per gadget digit, where
    /// `b_i = -(a_i s) + e_i + T^i s^2` and `T = 2^base_log`.
    pub components: Vec<(Polynomial, Polynomial)>,
    /// Log2 of the decomposition base `T`.
    pub base_log: u32,
}

impl RelinearizationKey {
    /// Number of gadget digits.
    pub fn num_digits(&self) -> usize {
        self.components.len()
    }
}

/// The full key set produced by `KeyGen(lambda, q)` (Eq. 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KeySet {
    /// The secret key, kept by the client.
    pub secret: SecretKey,
    /// The public key, shared with anyone who encrypts.
    pub public: PublicKey,
    /// The relinearization key, shared with the evaluating server.
    pub relinearization: RelinearizationKey,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{Modulus, Polynomial};

    #[test]
    fn relinearization_key_reports_digit_count() {
        let q = Modulus::new(97).unwrap();
        let zero = Polynomial::zero(4, q).unwrap();
        let key = RelinearizationKey {
            components: vec![(zero.clone(), zero.clone()), (zero.clone(), zero)],
            base_log: 8,
        };
        assert_eq!(key.num_digits(), 2);
    }
}
