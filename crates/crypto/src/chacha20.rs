//! ChaCha20 stream cipher (RFC 8439), implemented from scratch.
//!
//! The QuHE client encrypts its payload with a stream cipher keyed by
//! QKD-distributed material (the paper names ChaCha20 explicitly in
//! Section III-A). This module implements the RFC 8439 block function,
//! keystream generation and in-place XOR encryption, and is validated against
//! the RFC test vectors in the unit tests.

use crate::error::{CryptoError, CryptoResult};

/// Size of a ChaCha20 key in bytes.
pub const KEY_LEN: usize = 32;
/// Size of a ChaCha20 nonce in bytes.
pub const NONCE_LEN: usize = 12;
/// Size of one keystream block in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha20 constants `"expand 32-byte k"` as little-endian words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha20 cipher instance bound to one key and nonce.
#[derive(Debug, Clone)]
pub struct ChaCha20 {
    key_words: [u32; 8],
    nonce_words: [u32; 3],
}

impl ChaCha20 {
    /// Creates a cipher from a 32-byte key and a 12-byte nonce.
    ///
    /// # Errors
    /// Returns [`CryptoError::InvalidKeyLength`] when either slice has the
    /// wrong length.
    pub fn new(key: &[u8], nonce: &[u8]) -> CryptoResult<Self> {
        if key.len() != KEY_LEN {
            return Err(CryptoError::InvalidKeyLength {
                expected: KEY_LEN,
                actual: key.len(),
            });
        }
        if nonce.len() != NONCE_LEN {
            return Err(CryptoError::InvalidKeyLength {
                expected: NONCE_LEN,
                actual: nonce.len(),
            });
        }
        let mut key_words = [0u32; 8];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            key_words[i] = u32::from_le_bytes(chunk.try_into().expect("chunk is 4 bytes"));
        }
        let mut nonce_words = [0u32; 3];
        for (i, chunk) in nonce.chunks_exact(4).enumerate() {
            nonce_words[i] = u32::from_le_bytes(chunk.try_into().expect("chunk is 4 bytes"));
        }
        Ok(Self {
            key_words,
            nonce_words,
        })
    }

    /// Computes the 64-byte keystream block for the given block counter.
    pub fn block(&self, counter: u32) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = counter;
        state[13..16].copy_from_slice(&self.nonce_words);

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Produces `len` keystream bytes starting at block `initial_counter`.
    pub fn keystream(&self, initial_counter: u32, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut counter = initial_counter;
        while out.len() < len {
            let block = self.block(counter);
            let take = (len - out.len()).min(BLOCK_LEN);
            out.extend_from_slice(&block[..take]);
            counter = counter.wrapping_add(1);
        }
        out
    }

    /// Encrypts (or, identically, decrypts) `data` in place by XOR with the
    /// keystream starting at block `initial_counter`.
    pub fn apply_keystream(&self, initial_counter: u32, data: &mut [u8]) {
        let stream = self.keystream(initial_counter, data.len());
        for (byte, ks) in data.iter_mut().zip(stream) {
            *byte ^= ks;
        }
    }

    /// Convenience wrapper returning the encryption of `plaintext` as a new
    /// vector, using the RFC's convention of starting the counter at 1 for
    /// payload data.
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut data = plaintext.to_vec();
        self.apply_keystream(1, &mut data);
        data
    }

    /// Decrypts data produced by [`ChaCha20::encrypt`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Vec<u8> {
        // XOR with the same keystream inverts the encryption.
        self.encrypt(ciphertext)
    }
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rfc_key() -> Vec<u8> {
        (0u8..32).collect()
    }

    #[test]
    fn key_and_nonce_lengths_are_validated() {
        assert!(ChaCha20::new(&[0u8; 31], &[0u8; 12]).is_err());
        assert!(ChaCha20::new(&[0u8; 32], &[0u8; 11]).is_err());
        assert!(ChaCha20::new(&[0u8; 32], &[0u8; 12]).is_ok());
    }

    #[test]
    fn rfc8439_block_function_test_vector() {
        // RFC 8439 Section 2.3.2.
        let key = rfc_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let cipher = ChaCha20::new(&key, &nonce).unwrap();
        let block = cipher.block(1);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(block, expected);
    }

    #[test]
    fn rfc8439_encryption_test_vector() {
        // RFC 8439 Section 2.4.2.
        let key = rfc_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let cipher = ChaCha20::new(&key, &nonce).unwrap();
        let ciphertext = cipher.encrypt(plaintext);
        let expected_prefix: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&ciphertext[..16], &expected_prefix);
        let expected_suffix: [u8; 8] = [0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42, 0x87, 0x4d];
        assert_eq!(&ciphertext[ciphertext.len() - 8..], &expected_suffix);
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let cipher = ChaCha20::new(&key, &nonce).unwrap();
        let message = b"quantum keys meet homomorphic encryption at the edge".to_vec();
        let ciphertext = cipher.encrypt(&message);
        assert_ne!(ciphertext, message);
        assert_eq!(cipher.decrypt(&ciphertext), message);
    }

    #[test]
    fn keystream_is_deterministic_and_counter_dependent() {
        let cipher = ChaCha20::new(&[1u8; 32], &[2u8; 12]).unwrap();
        assert_eq!(cipher.keystream(0, 100), cipher.keystream(0, 100));
        assert_ne!(cipher.keystream(0, 64), cipher.keystream(1, 64));
        // Streaming across block boundaries matches block-by-block output.
        let long = cipher.keystream(5, 130);
        let mut manual = Vec::new();
        manual.extend_from_slice(&cipher.block(5));
        manual.extend_from_slice(&cipher.block(6));
        manual.extend_from_slice(&cipher.block(7)[..2]);
        assert_eq!(long, manual);
    }

    #[test]
    fn different_keys_give_different_streams() {
        let a = ChaCha20::new(&[1u8; 32], &[0u8; 12]).unwrap();
        let b = ChaCha20::new(&[2u8; 32], &[0u8; 12]).unwrap();
        assert_ne!(a.keystream(0, 32), b.keystream(0, 32));
    }
}
