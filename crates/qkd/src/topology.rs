//! Network topologies, including the SURFnet instance of the paper's
//! evaluation (Fig. 2, Tables III and IV).

use crate::error::{QkdError, QkdResult};
use crate::routes::{IncidenceMatrix, Route};

/// A node of the quantum network.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Node {
    /// One-based node identifier.
    pub id: usize,
    /// Human-readable name (city name for the SURFnet instance).
    pub name: String,
}

/// A fiber link of the quantum network with its entanglement-rate
/// coefficient.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Link {
    /// One-based link identifier (matches the paper's Table IV).
    pub id: usize,
    /// Fiber length in kilometres.
    pub length_km: f64,
    /// Rate coefficient `beta_l` in entangled pairs per second (Eq. 3).
    pub beta: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidParameter`] for non-positive length or
    /// beta.
    pub fn new(id: usize, length_km: f64, beta: f64) -> QkdResult<Self> {
        if !(length_km > 0.0 && length_km.is_finite()) {
            return Err(QkdError::InvalidParameter {
                reason: format!("link {id}: length must be positive, got {length_km}"),
            });
        }
        if !(beta > 0.0 && beta.is_finite()) {
            return Err(QkdError::InvalidParameter {
                reason: format!("link {id}: beta must be positive, got {beta}"),
            });
        }
        Ok(Self {
            id,
            length_km,
            beta,
        })
    }
}

/// A complete QKD network scenario: links, routes from the key center to the
/// client nodes, and the derived incidence matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkScenario {
    key_center: String,
    nodes: Vec<Node>,
    links: Vec<Link>,
    routes: Vec<Route>,
    incidence: IncidenceMatrix,
}

impl NetworkScenario {
    /// Builds a scenario, validating that every route only references known
    /// links and that link identifiers are contiguous `1..=L`.
    ///
    /// # Errors
    /// * [`QkdError::InvalidParameter`] if link ids are not `1..=L` in order.
    /// * [`QkdError::UnknownLink`] if a route references a missing link.
    pub fn new(
        key_center: impl Into<String>,
        nodes: Vec<Node>,
        links: Vec<Link>,
        routes: Vec<Route>,
    ) -> QkdResult<Self> {
        for (index, link) in links.iter().enumerate() {
            if link.id != index + 1 {
                return Err(QkdError::InvalidParameter {
                    reason: format!(
                        "link ids must be contiguous starting at 1; position {} has id {}",
                        index, link.id
                    ),
                });
            }
        }
        let incidence = IncidenceMatrix::from_routes(links.len(), &routes)?;
        Ok(Self {
            key_center: key_center.into(),
            nodes,
            links,
            routes,
            incidence,
        })
    }

    /// Name of the key-center node.
    pub fn key_center(&self) -> &str {
        &self.key_center
    }

    /// The network nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The network links, ordered by id.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The routes, ordered by id (route `n` serves client `n`).
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// The link-route incidence matrix.
    pub fn incidence(&self) -> &IncidenceMatrix {
        &self.incidence
    }

    /// The rate coefficients `beta_l` of all links, ordered by link id.
    pub fn betas(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.beta).collect()
    }

    /// Number of client nodes (= number of routes).
    pub fn num_clients(&self) -> usize {
        self.routes.len()
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Returns a copy of the scenario with every link's rate coefficient
    /// replaced by the corresponding entry of `betas` (lengths and route
    /// structure are preserved). This is the update primitive of the
    /// time-varying key-rate dynamics in [`crate::dynamics`]: a drifting
    /// world is the same topology operated at drifting `beta_l`.
    ///
    /// # Errors
    /// * [`QkdError::DimensionMismatch`] if `betas` does not have one entry
    ///   per link.
    /// * [`QkdError::InvalidParameter`] if any new coefficient is
    ///   non-positive or non-finite.
    pub fn with_betas(&self, betas: &[f64]) -> QkdResult<Self> {
        if betas.len() != self.links.len() {
            return Err(QkdError::DimensionMismatch {
                expected: self.links.len(),
                actual: betas.len(),
            });
        }
        let links = self
            .links
            .iter()
            .zip(betas)
            .map(|(link, &beta)| Link::new(link.id, link.length_km, beta))
            .collect::<QkdResult<Vec<_>>>()?;
        Self::new(
            self.key_center.clone(),
            self.nodes.clone(),
            links,
            self.routes.clone(),
        )
    }

    /// The smallest rate coefficient along route `n` — the bottleneck that
    /// bounds how fast key material can be distributed to client `n` at any
    /// fidelity (capacity `beta (1 - w)` is maximal as `w -> 0`).
    ///
    /// # Panics
    /// Panics when `n` is out of range (routes are validated against the
    /// link set at construction, so the link lookups cannot fail).
    pub fn route_bottleneck_beta(&self, n: usize) -> f64 {
        self.routes[n]
            .link_ids
            .iter()
            .map(|&id| self.links[id - 1].beta)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Link lengths (km) and rate coefficients `beta_l` of the paper's Table IV.
pub const SURFNET_LINKS: [(f64, f64); 18] = [
    (30.6, 89.84),
    (60.4, 53.79),
    (38.9, 77.47),
    (44.2, 69.44),
    (47.7, 65.12),
    (78.7, 40.76),
    (60.0, 54.17),
    (58.1, 56.25),
    (25.7, 99.02),
    (24.4, 100.98),
    (44.7, 68.75),
    (66.3, 49.35),
    (62.5, 52.40),
    (33.8, 84.63),
    (36.7, 80.54),
    (35.4, 82.41),
    (30.2, 90.52),
    (70.0, 46.82),
];

/// Routes of the paper's Table III: destination city and traversed link ids.
/// The key center is Hilversum for every route.
pub const SURFNET_ROUTES: [(&str, &[usize]); 6] = [
    ("Delft", &[17, 2, 1]),
    ("Zwolle", &[17, 3, 4, 5]),
    ("Apeldoorn", &[16, 4, 5, 11, 10]),
    ("Rotterdam", &[15, 18]),
    ("Arnhem", &[15, 14, 13, 12, 9]),
    ("Enschede", &[15, 14, 13, 12, 8, 7]),
];

/// City names appearing in the SURFnet topology figure of the paper.
pub const SURFNET_CITIES: [&str; 17] = [
    "Delft",
    "Leiden",
    "Amsterdam",
    "Almere",
    "Lelystad",
    "Hilversum",
    "Rotterdam",
    "Utrecht",
    "Amersfoort",
    "Wageningen",
    "Zwolle",
    "Enschede",
    "Apeldoorn",
    "Arnhem",
    "Deventer",
    "Nijmegen",
    "Zutphen",
];

/// Builds the SURFnet evaluation scenario of the paper: 18 links with the
/// Table IV coefficients and the six Table III routes rooted at the Hilversum
/// key center.
pub fn surfnet_scenario() -> NetworkScenario {
    let links: Vec<Link> = SURFNET_LINKS
        .iter()
        .enumerate()
        .map(|(i, &(length, beta))| Link::new(i + 1, length, beta).expect("table IV data is valid"))
        .collect();
    let routes: Vec<Route> = SURFNET_ROUTES
        .iter()
        .enumerate()
        .map(|(i, &(dest, link_ids))| {
            Route::new(i + 1, "Hilversum", dest, link_ids.to_vec())
                .expect("table III data is valid")
        })
        .collect();
    let nodes: Vec<Node> = SURFNET_CITIES
        .iter()
        .enumerate()
        .map(|(i, name)| Node {
            id: i + 1,
            name: (*name).to_string(),
        })
        .collect();
    NetworkScenario::new("Hilversum", nodes, links, routes)
        .expect("the SURFnet scenario is internally consistent")
}

/// Builds a seed-deterministic synthetic QKD network with `num_clients`
/// routes, for scenarios larger (or smaller) than the paper's six SURFnet
/// routes.
///
/// The topology is a two-level tree rooted at the key center: `ceil(sqrt(N))`
/// trunk fibers fan out to hub nodes, and each client hangs off its hub
/// (round-robin, so trunk loads stay balanced) through a dedicated access
/// fiber. Every route therefore traverses one shared trunk plus one private
/// access link, which preserves the structural property of the SURFnet
/// instance that drives Stage 1: routes compete for capacity on shared
/// upstream links. Link lengths are drawn uniformly (trunks 20–60 km, access
/// 5–30 km) and rate coefficients follow the Table IV scale
/// `beta_l ~ 2750 / length_km` with a ±10 % fade, all from a [`rand`] RNG
/// seeded with `seed`.
///
/// # Panics
/// Panics if `num_clients` is zero.
pub fn synthetic_scenario(num_clients: usize, seed: u64) -> NetworkScenario {
    use rand::{Rng, SeedableRng};
    assert!(num_clients > 0, "a network requires at least one route");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let num_hubs = (num_clients as f64).sqrt().ceil() as usize;

    let mut links = Vec::with_capacity(num_hubs + num_clients);
    let beta_from_length = |length_km: f64, rng: &mut rand::rngs::StdRng| -> f64 {
        2750.0 / length_km * rng.gen_range(0.9..1.1)
    };
    for id in 1..=num_hubs {
        let length = rng.gen_range(20.0..60.0);
        let beta = beta_from_length(length, &mut rng);
        links.push(Link::new(id, length, beta).expect("sampled trunk parameters are positive"));
    }
    for client in 0..num_clients {
        let id = num_hubs + client + 1;
        let length = rng.gen_range(5.0..30.0);
        let beta = beta_from_length(length, &mut rng);
        links.push(Link::new(id, length, beta).expect("sampled access parameters are positive"));
    }

    let mut nodes = vec![Node {
        id: 1,
        name: "KeyCenter".to_string(),
    }];
    for hub in 0..num_hubs {
        nodes.push(Node {
            id: nodes.len() + 1,
            name: format!("Hub{}", hub + 1),
        });
    }
    let routes: Vec<Route> = (0..num_clients)
        .map(|client| {
            let hub = client % num_hubs;
            nodes.push(Node {
                id: nodes.len() + 1,
                name: format!("Client{}", client + 1),
            });
            Route::new(
                client + 1,
                "KeyCenter",
                format!("Client{}", client + 1),
                vec![hub + 1, num_hubs + client + 1],
            )
            .expect("synthetic routes reference existing links")
        })
        .collect();
    NetworkScenario::new("KeyCenter", nodes, links, routes)
        .expect("the synthetic topology is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surfnet_has_expected_dimensions() {
        let s = surfnet_scenario();
        assert_eq!(s.num_links(), 18);
        assert_eq!(s.num_clients(), 6);
        assert_eq!(s.key_center(), "Hilversum");
        assert_eq!(s.nodes().len(), 17);
        assert_eq!(s.betas().len(), 18);
    }

    #[test]
    fn surfnet_link_1_and_18_match_table_iv() {
        let s = surfnet_scenario();
        assert_eq!(s.links()[0].length_km, 30.6);
        assert_eq!(s.links()[0].beta, 89.84);
        assert_eq!(s.links()[17].length_km, 70.0);
        assert_eq!(s.links()[17].beta, 46.82);
    }

    #[test]
    fn surfnet_routes_match_table_iii() {
        let s = surfnet_scenario();
        assert_eq!(s.routes()[0].destination, "Delft");
        assert_eq!(s.routes()[0].link_ids, vec![17, 2, 1]);
        assert_eq!(s.routes()[5].destination, "Enschede");
        assert_eq!(s.routes()[5].link_ids, vec![15, 14, 13, 12, 8, 7]);
        // Every route starts at the key center.
        for route in s.routes() {
            assert_eq!(route.source, "Hilversum");
        }
    }

    #[test]
    fn incidence_matrix_reflects_shared_links() {
        let s = surfnet_scenario();
        // Link 15 (0-based 14) is shared by routes 4, 5, 6 (0-based 3, 4, 5).
        assert_eq!(s.incidence().routes_using_link(14), vec![3, 4, 5]);
        // Link 6 (0-based 5) is unused by every route.
        assert!(s.incidence().routes_using_link(5).is_empty());
    }

    #[test]
    fn link_and_route_validation() {
        assert!(Link::new(1, -3.0, 10.0).is_err());
        assert!(Link::new(1, 3.0, 0.0).is_err());
        // Non-contiguous link ids are rejected by the scenario constructor.
        let links = vec![Link::new(2, 10.0, 5.0).unwrap()];
        let routes = vec![Route::new(1, "a", "b", vec![2]).unwrap()];
        assert!(NetworkScenario::new("a", vec![], links, routes).is_err());
    }

    #[test]
    fn synthetic_scenario_has_requested_size_and_shared_trunks() {
        for n in [1, 6, 32, 128] {
            let s = synthetic_scenario(n, 7);
            assert_eq!(s.num_clients(), n);
            let hubs = (n as f64).sqrt().ceil() as usize;
            assert_eq!(s.num_links(), hubs + n);
            assert_eq!(s.nodes().len(), 1 + hubs + n);
            for route in s.routes() {
                assert_eq!(route.source, "KeyCenter");
                assert_eq!(route.link_ids.len(), 2);
            }
            // Each trunk is shared by roughly n / hubs routes.
            for trunk in 0..hubs {
                let users = s.incidence().routes_using_link(trunk).len();
                assert!(users >= n / hubs, "trunk {trunk} serves {users} routes");
            }
            for (l, link) in s.links().iter().enumerate() {
                assert_eq!(link.id, l + 1);
                assert!(link.beta > 0.0 && link.length_km > 0.0);
            }
        }
    }

    #[test]
    fn synthetic_scenario_is_deterministic_per_seed() {
        assert_eq!(synthetic_scenario(12, 3), synthetic_scenario(12, 3));
        assert_ne!(synthetic_scenario(12, 3), synthetic_scenario(12, 4));
    }

    #[test]
    fn with_betas_swaps_coefficients_and_validates() {
        let s = surfnet_scenario();
        let mut betas = s.betas();
        for b in &mut betas {
            *b *= 1.1;
        }
        let drifted = s.with_betas(&betas).unwrap();
        assert_eq!(drifted.betas(), betas);
        assert_eq!(drifted.routes(), s.routes());
        assert_eq!(drifted.links()[0].length_km, s.links()[0].length_km);
        // Wrong length and non-positive coefficients are rejected.
        assert!(matches!(
            s.with_betas(&betas[..3]),
            Err(QkdError::DimensionMismatch { .. })
        ));
        betas[4] = 0.0;
        assert!(s.with_betas(&betas).is_err());
    }

    #[test]
    fn route_bottleneck_is_the_smallest_beta_on_the_route() {
        let s = surfnet_scenario();
        // Route 1 (Delft) uses links 17, 2, 1 with betas 90.52, 53.79, 89.84.
        assert_eq!(s.route_bottleneck_beta(0), 53.79);
    }

    #[test]
    fn route_referencing_missing_link_is_rejected() {
        let links = vec![Link::new(1, 10.0, 5.0).unwrap()];
        let routes = vec![Route::new(1, "a", "b", vec![3]).unwrap()];
        assert_eq!(
            NetworkScenario::new("a", vec![], links, routes),
            Err(QkdError::UnknownLink { link_id: 3 })
        );
    }
}
