//! Time-varying QKD dynamics: key-rate drift and key-pool evolution.
//!
//! The paper evaluates a static SURFnet snapshot, but a deployed QKD network
//! is a process in time: fiber conditions, detector efficiencies and
//! entanglement-source duty cycles all fluctuate, so the rate coefficients
//! `beta_l` of Eq. (3) drift between re-optimizations, and the per-route key
//! pools fill (key distribution) and drain (encryption traffic) between
//! steps. This module supplies both building blocks for the online
//! dynamic-world engine:
//!
//! * [`LinkRateProcess`] — a seed-deterministic bounded multiplicative random
//!   walk over the per-link rate coefficients. Each step multiplies every
//!   `beta_l` by an independent factor in `[1 - a, 1 + a]` and clamps the
//!   result to a band around the link's nominal coefficient, so a long trace
//!   can neither extinguish a link nor grow it without bound.
//! * [`KeyPoolProcess`] — per-route key-material ledgers (in bits) that are
//!   refilled by the distribution path and depleted by encryption demand each
//!   step, reporting how much demand was actually served and how much was
//!   left unserved when a pool ran dry.
//!
//! Both processes are pure functions of their seed and inputs: replaying a
//! trace reproduces the exact same world, which the differential tests of the
//! online engine rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{QkdError, QkdResult};

/// Lower clamp of a drifting coefficient, relative to its nominal value.
pub const MIN_DRIFT_FACTOR: f64 = 0.25;

/// Upper clamp of a drifting coefficient, relative to its nominal value.
pub const MAX_DRIFT_FACTOR: f64 = 4.0;

/// A bounded multiplicative random walk over per-link rate coefficients.
#[derive(Debug, Clone)]
pub struct LinkRateProcess {
    nominal: Vec<f64>,
    current: Vec<f64>,
    amplitude: f64,
    rng: StdRng,
}

impl LinkRateProcess {
    /// Creates the process at the nominal coefficients `betas` with per-step
    /// relative drift amplitude `amplitude` (e.g. `0.02` for ±2 % per step)
    /// and a deterministic seed.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidParameter`] for an empty coefficient
    /// vector, a non-positive/non-finite coefficient, or an amplitude
    /// outside `[0, 1)`.
    pub fn new(betas: Vec<f64>, amplitude: f64, seed: u64) -> QkdResult<Self> {
        if betas.is_empty() {
            return Err(QkdError::InvalidParameter {
                reason: "a rate process needs at least one link coefficient".to_string(),
            });
        }
        for (l, &beta) in betas.iter().enumerate() {
            if !(beta > 0.0 && beta.is_finite()) {
                return Err(QkdError::InvalidParameter {
                    reason: format!("link {}: nominal beta must be positive, got {beta}", l + 1),
                });
            }
        }
        if !(0.0..1.0).contains(&amplitude) {
            return Err(QkdError::InvalidParameter {
                reason: format!("drift amplitude must lie in [0, 1), got {amplitude}"),
            });
        }
        Ok(Self {
            current: betas.clone(),
            nominal: betas,
            amplitude,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// The coefficients at the current step.
    pub fn current(&self) -> &[f64] {
        &self.current
    }

    /// The nominal (step-zero) coefficients the walk is clamped around.
    pub fn nominal(&self) -> &[f64] {
        &self.nominal
    }

    /// Advances the walk one step and returns the new coefficients. With
    /// amplitude zero this is an exact no-op, so a "frozen" world replays
    /// bit-identically.
    pub fn step(&mut self) -> &[f64] {
        if self.amplitude > 0.0 {
            for (current, nominal) in self.current.iter_mut().zip(&self.nominal) {
                let factor = 1.0 + self.amplitude * self.rng.gen_range(-1.0..1.0);
                *current = (*current * factor)
                    .clamp(MIN_DRIFT_FACTOR * nominal, MAX_DRIFT_FACTOR * nominal);
            }
        }
        &self.current
    }
}

/// Outcome of one step of one route's key pool.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PoolStep {
    /// Pool level in bits after refill and depletion.
    pub level_bits: f64,
    /// Demand that was served from the pool this step, in bits.
    pub served_bits: f64,
    /// Demand that could not be served (the pool ran dry), in bits.
    pub deficit_bits: f64,
}

/// Per-route key-material ledgers evolving between optimization steps.
///
/// Levels are tracked in (fractional) bits: refill is the key material the
/// distribution path delivered during the step, depletion is the symmetric
/// key the encryption phase consumed. Levels saturate at the pool capacity
/// (buffering hardware is finite) and at zero (unserved demand is reported
/// as a deficit, not borrowed).
#[derive(Debug, Clone, PartialEq)]
pub struct KeyPoolProcess {
    capacity_bits: f64,
    levels: Vec<f64>,
}

impl KeyPoolProcess {
    /// Creates one pool per route, each with `capacity_bits` capacity and an
    /// initial fill fraction `initial_fill` in `[0, 1]`.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidParameter`] for zero routes, a non-positive
    /// capacity, or an initial fill outside `[0, 1]`.
    pub fn new(routes: usize, capacity_bits: f64, initial_fill: f64) -> QkdResult<Self> {
        if routes == 0 {
            return Err(QkdError::InvalidParameter {
                reason: "a pool process needs at least one route".to_string(),
            });
        }
        if !(capacity_bits > 0.0 && capacity_bits.is_finite()) {
            return Err(QkdError::InvalidParameter {
                reason: format!("pool capacity must be positive, got {capacity_bits}"),
            });
        }
        if !(0.0..=1.0).contains(&initial_fill) {
            return Err(QkdError::InvalidParameter {
                reason: format!("initial fill must lie in [0, 1], got {initial_fill}"),
            });
        }
        Ok(Self {
            capacity_bits,
            levels: vec![initial_fill * capacity_bits; routes],
        })
    }

    /// Pool capacity in bits (shared by every route).
    pub fn capacity_bits(&self) -> f64 {
        self.capacity_bits
    }

    /// Current per-route levels in bits.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Number of routes tracked.
    pub fn num_routes(&self) -> usize {
        self.levels.len()
    }

    /// Applies one step: each route first receives `refill_bits`, clamped at
    /// capacity, then serves up to `demand_bits` from the pool.
    ///
    /// # Errors
    /// * [`QkdError::DimensionMismatch`] if either input does not have one
    ///   entry per route.
    /// * [`QkdError::InvalidParameter`] for negative or non-finite entries.
    pub fn step(&mut self, refill_bits: &[f64], demand_bits: &[f64]) -> QkdResult<Vec<PoolStep>> {
        for input in [refill_bits, demand_bits] {
            if input.len() != self.levels.len() {
                return Err(QkdError::DimensionMismatch {
                    expected: self.levels.len(),
                    actual: input.len(),
                });
            }
            if let Some(bad) = input.iter().find(|v| !(**v >= 0.0 && v.is_finite())) {
                return Err(QkdError::InvalidParameter {
                    reason: format!("refill/demand must be non-negative and finite, got {bad}"),
                });
            }
        }
        Ok(self
            .levels
            .iter_mut()
            .zip(refill_bits.iter().zip(demand_bits))
            .map(|(level, (&refill, &demand))| {
                let filled = (*level + refill).min(self.capacity_bits);
                let served = demand.min(filled);
                *level = filled - served;
                PoolStep {
                    level_bits: *level,
                    served_bits: served,
                    deficit_bits: demand - served,
                }
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_process_is_seed_deterministic_and_bounded() {
        let betas = vec![89.84, 53.79, 77.47];
        let mut a = LinkRateProcess::new(betas.clone(), 0.05, 7).unwrap();
        let mut b = LinkRateProcess::new(betas.clone(), 0.05, 7).unwrap();
        for _ in 0..50 {
            assert_eq!(a.step(), b.step());
        }
        for (current, nominal) in a.current().iter().zip(&betas) {
            assert!(*current >= MIN_DRIFT_FACTOR * nominal);
            assert!(*current <= MAX_DRIFT_FACTOR * nominal);
        }
        let mut c = LinkRateProcess::new(betas, 0.05, 8).unwrap();
        assert_ne!(a.step(), c.step(), "different seeds must diverge");
    }

    #[test]
    fn zero_amplitude_is_an_exact_no_op() {
        let betas = vec![10.0, 20.0];
        let mut process = LinkRateProcess::new(betas.clone(), 0.0, 3).unwrap();
        for _ in 0..10 {
            assert_eq!(process.step(), betas.as_slice());
        }
        assert_eq!(process.nominal(), betas.as_slice());
    }

    #[test]
    fn rate_process_rejects_bad_inputs() {
        assert!(LinkRateProcess::new(vec![], 0.1, 1).is_err());
        assert!(LinkRateProcess::new(vec![0.0], 0.1, 1).is_err());
        assert!(LinkRateProcess::new(vec![1.0], 1.0, 1).is_err());
        assert!(LinkRateProcess::new(vec![1.0], -0.1, 1).is_err());
    }

    #[test]
    fn pool_refill_and_depletion_conserve_material() {
        let mut pools = KeyPoolProcess::new(2, 100.0, 0.5).unwrap();
        assert_eq!(pools.levels(), &[50.0, 50.0]);
        let steps = pools.step(&[30.0, 30.0], &[20.0, 0.0]).unwrap();
        assert_eq!(steps[0].level_bits, 60.0);
        assert_eq!(steps[0].served_bits, 20.0);
        assert_eq!(steps[0].deficit_bits, 0.0);
        assert_eq!(steps[1].level_bits, 80.0);
        assert_eq!(pools.levels(), &[60.0, 80.0]);
        assert_eq!(pools.num_routes(), 2);
        assert_eq!(pools.capacity_bits(), 100.0);
    }

    #[test]
    fn pool_saturates_at_capacity_and_reports_deficits() {
        let mut pools = KeyPoolProcess::new(1, 100.0, 0.9).unwrap();
        // Refill beyond capacity: level caps at 100 before serving.
        let step = pools.step(&[50.0], &[0.0]).unwrap()[0];
        assert_eq!(step.level_bits, 100.0);
        // Demand beyond the pool: everything is served down to zero, the
        // remainder is a deficit.
        let step = pools.step(&[0.0], &[130.0]).unwrap()[0];
        assert_eq!(step.level_bits, 0.0);
        assert_eq!(step.served_bits, 100.0);
        assert_eq!(step.deficit_bits, 30.0);
    }

    #[test]
    fn pool_validates_inputs() {
        assert!(KeyPoolProcess::new(0, 100.0, 0.5).is_err());
        assert!(KeyPoolProcess::new(1, 0.0, 0.5).is_err());
        assert!(KeyPoolProcess::new(1, 100.0, 1.5).is_err());
        let mut pools = KeyPoolProcess::new(2, 100.0, 0.5).unwrap();
        assert!(matches!(
            pools.step(&[1.0], &[1.0, 1.0]),
            Err(QkdError::DimensionMismatch { .. })
        ));
        assert!(pools.step(&[1.0, -1.0], &[0.0, 0.0]).is_err());
        // Failed steps must not corrupt the ledger.
        assert_eq!(pools.levels(), &[50.0, 50.0]);
    }
}
