//! Entanglement-rate allocation and the optimal Werner assignment (Eq. 18).

use crate::error::{QkdError, QkdResult};
use crate::routes::IncidenceMatrix;

/// A per-route entanglement-rate allocation `phi` (pairs per second).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RateAllocation {
    phi: Vec<f64>,
}

impl RateAllocation {
    /// Creates an allocation, validating positivity and finiteness.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidParameter`] if any rate is non-positive or
    /// non-finite.
    pub fn new(phi: Vec<f64>) -> QkdResult<Self> {
        for (n, p) in phi.iter().enumerate() {
            if !(p.is_finite() && *p > 0.0) {
                return Err(QkdError::InvalidParameter {
                    reason: format!("rate of route {} must be positive, got {}", n + 1, p),
                });
            }
        }
        Ok(Self { phi })
    }

    /// The per-route rates.
    pub fn rates(&self) -> &[f64] {
        &self.phi
    }

    /// Number of routes covered by the allocation.
    pub fn len(&self) -> usize {
        self.phi.len()
    }

    /// Whether the allocation is empty.
    pub fn is_empty(&self) -> bool {
        self.phi.is_empty()
    }

    /// Checks the paper's constraints (17a) and (17c):
    /// every route receives at least its minimum rate, and no link carries
    /// more than its maximum entanglement-generation rate `beta_l` (so that a
    /// Werner parameter in `(0, 1]` exists satisfying Eq. 3).
    ///
    /// # Errors
    /// * [`QkdError::DimensionMismatch`] for inconsistent input lengths.
    /// * [`QkdError::InfeasibleAllocation`] describing the first violated
    ///   constraint.
    pub fn check_feasible(
        &self,
        incidence: &IncidenceMatrix,
        phi_min: &[f64],
        betas: &[f64],
    ) -> QkdResult<()> {
        if self.phi.len() != incidence.num_routes() {
            return Err(QkdError::DimensionMismatch {
                expected: incidence.num_routes(),
                actual: self.phi.len(),
            });
        }
        if phi_min.len() != self.phi.len() {
            return Err(QkdError::DimensionMismatch {
                expected: self.phi.len(),
                actual: phi_min.len(),
            });
        }
        if betas.len() != incidence.num_links() {
            return Err(QkdError::DimensionMismatch {
                expected: incidence.num_links(),
                actual: betas.len(),
            });
        }
        for (n, (p, min)) in self.phi.iter().zip(phi_min).enumerate() {
            if p < min {
                return Err(QkdError::InfeasibleAllocation {
                    reason: format!("route {} rate {} below its minimum {}", n + 1, p, min),
                });
            }
        }
        for (l, &beta) in betas.iter().enumerate() {
            let load = incidence.link_load(l, &self.phi)?;
            if load >= beta {
                return Err(QkdError::InfeasibleAllocation {
                    reason: format!(
                        "link {} load {} reaches or exceeds its maximum rate {}",
                        l + 1,
                        load,
                        beta
                    ),
                });
            }
        }
        Ok(())
    }
}

/// The optimal Werner assignment of Eq. (18): given the rates `phi`, the
/// objective increases monotonically in every `w_l`, so each link operates at
/// the largest Werner parameter its capacity constraint (17c) allows,
/// `w_l* = 1 - sum_n a_ln phi_n / beta_l`.
///
/// # Errors
/// * [`QkdError::DimensionMismatch`] for inconsistent input lengths.
/// * [`QkdError::InfeasibleAllocation`] if some link is loaded at or beyond
///   its maximum rate (no admissible Werner parameter exists).
pub fn optimal_werner(
    incidence: &IncidenceMatrix,
    phi: &[f64],
    betas: &[f64],
) -> QkdResult<Vec<f64>> {
    if phi.len() != incidence.num_routes() {
        return Err(QkdError::DimensionMismatch {
            expected: incidence.num_routes(),
            actual: phi.len(),
        });
    }
    if betas.len() != incidence.num_links() {
        return Err(QkdError::DimensionMismatch {
            expected: incidence.num_links(),
            actual: betas.len(),
        });
    }
    let mut w = Vec::with_capacity(incidence.num_links());
    for (l, &beta) in betas.iter().enumerate() {
        let load = incidence.link_load(l, phi)?;
        let value = 1.0 - load / beta;
        if value <= 0.0 {
            return Err(QkdError::InfeasibleAllocation {
                reason: format!(
                    "link {} load {} saturates its maximum rate {}",
                    l + 1,
                    load,
                    beta
                ),
            });
        }
        w.push(value.min(1.0));
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::surfnet_scenario;
    use crate::utility::network_utility;
    use proptest::prelude::*;

    #[test]
    fn allocation_validation() {
        assert!(RateAllocation::new(vec![1.0, 2.0]).is_ok());
        assert!(RateAllocation::new(vec![0.0]).is_err());
        assert!(RateAllocation::new(vec![-1.0]).is_err());
        assert!(RateAllocation::new(vec![f64::NAN]).is_err());
        let a = RateAllocation::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.rates(), &[1.0, 2.0]);
    }

    #[test]
    fn surfnet_default_rates_are_feasible() {
        let s = surfnet_scenario();
        let alloc = RateAllocation::new(vec![1.0; 6]).unwrap();
        let phi_min = vec![0.5; 6];
        alloc
            .check_feasible(s.incidence(), &phi_min, &s.betas())
            .unwrap();
    }

    #[test]
    fn minimum_rate_violation_is_detected() {
        let s = surfnet_scenario();
        let alloc = RateAllocation::new(vec![0.4, 1.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        let phi_min = vec![0.5; 6];
        let err = alloc
            .check_feasible(s.incidence(), &phi_min, &s.betas())
            .unwrap_err();
        assert!(matches!(err, QkdError::InfeasibleAllocation { .. }));
    }

    #[test]
    fn link_overload_is_detected() {
        let s = surfnet_scenario();
        // Link 15 (beta = 80.54) is shared by routes 4, 5, 6; loading each of
        // those routes with 30 pairs/s exceeds the link's maximum rate.
        let alloc = RateAllocation::new(vec![1.0, 1.0, 1.0, 30.0, 30.0, 30.0]).unwrap();
        let phi_min = vec![0.5; 6];
        let err = alloc
            .check_feasible(s.incidence(), &phi_min, &s.betas())
            .unwrap_err();
        assert!(matches!(err, QkdError::InfeasibleAllocation { .. }));
    }

    #[test]
    fn optimal_werner_matches_equation_18() {
        let s = surfnet_scenario();
        let phi = vec![2.0, 1.0, 1.0, 2.0, 0.7, 0.6];
        let w = optimal_werner(s.incidence(), &phi, &s.betas()).unwrap();
        assert_eq!(w.len(), 18);
        // Link 17 (0-based 16) carries routes 1 and 2: load 3.0, beta 90.52.
        assert!((w[16] - (1.0 - 3.0 / 90.52)).abs() < 1e-12);
        // Unused link 6 (0-based 5) keeps w = 1.
        assert_eq!(w[5], 1.0);
        // All values lie in (0, 1].
        assert!(w.iter().all(|&v| v > 0.0 && v <= 1.0));
    }

    #[test]
    fn optimal_werner_rejects_saturated_links() {
        let s = surfnet_scenario();
        let phi = vec![1.0, 1.0, 1.0, 50.0, 20.0, 20.0];
        assert!(matches!(
            optimal_werner(s.incidence(), &phi, &s.betas()),
            Err(QkdError::InfeasibleAllocation { .. })
        ));
    }

    proptest! {
        #[test]
        fn optimal_werner_maximizes_utility_over_random_alternatives(
            phi1 in 0.5f64..3.0, phi2 in 0.5f64..3.0, phi3 in 0.5f64..3.0,
            phi4 in 0.5f64..3.0, phi5 in 0.5f64..3.0, phi6 in 0.5f64..3.0,
            shrink in 0.5f64..0.99,
        ) {
            let s = surfnet_scenario();
            let phi = vec![phi1, phi2, phi3, phi4, phi5, phi6];
            let w_star = optimal_werner(s.incidence(), &phi, &s.betas()).unwrap();
            // Any feasible alternative has w_l <= w_l*, and utility is
            // monotone in w, so shrinking the Werner parameters cannot help.
            let w_alt: Vec<f64> = w_star.iter().map(|w| w * shrink).collect();
            let u_star = network_utility(s.incidence(), &phi, &w_star).unwrap();
            let u_alt = network_utility(s.incidence(), &phi, &w_alt).unwrap();
            prop_assert!(u_star >= u_alt - 1e-12);
        }
    }
}
