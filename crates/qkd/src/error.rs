//! Error type for the QKD substrate.

use std::fmt;

/// Convenient alias for `Result<T, QkdError>`.
pub type QkdResult<T> = Result<T, QkdError>;

/// Errors produced by the QKD network substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QkdError {
    /// A Werner parameter was outside the admissible interval `(0, 1]`.
    InvalidWerner {
        /// The offending value.
        value: f64,
    },
    /// A rate, capacity or length was negative or non-finite.
    InvalidParameter {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// Vectors describing routes/links had inconsistent dimensions.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A route references a link that does not exist in the topology.
    UnknownLink {
        /// The missing link identifier.
        link_id: usize,
    },
    /// A rate allocation violates a capacity or minimum-rate constraint.
    InfeasibleAllocation {
        /// Description of the violated constraint.
        reason: String,
    },
    /// The key pool does not hold enough key material for the request.
    InsufficientKey {
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
}

impl fmt::Display for QkdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QkdError::InvalidWerner { value } => {
                write!(f, "werner parameter {value} outside (0, 1]")
            }
            QkdError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            QkdError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            QkdError::UnknownLink { link_id } => write!(f, "unknown link id {link_id}"),
            QkdError::InfeasibleAllocation { reason } => {
                write!(f, "infeasible allocation: {reason}")
            }
            QkdError::InsufficientKey {
                requested,
                available,
            } => write!(
                f,
                "insufficient key material: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for QkdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QkdError::InsufficientKey {
            requested: 64,
            available: 8,
        };
        assert!(e.to_string().contains("64"));
        assert!(e.to_string().contains('8'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QkdError>();
    }
}
