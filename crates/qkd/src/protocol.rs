//! Monte-Carlo simulation of entanglement-based QKD over a chain of noisy
//! links.
//!
//! The analytic models in [`crate::secret_key`] and [`crate::utility`] treat
//! the QKD network at the level of Werner parameters and asymptotic key
//! fractions. This module provides the microscopic counterpart the paper's
//! testbed would have run on real hardware: entangled pairs are distributed
//! across a route by entanglement swapping, each link applies depolarizing
//! (Werner) noise, the two endpoints measure in random bases, sift, estimate
//! the QBER and apply the asymptotic error-correction/privacy-amplification
//! accounting. The simulated QBER and key fraction converge to the analytic
//! `(1 - w)/2` and `F_skf(w)` laws, which the integration tests verify — this
//! is the substitution for quantum hardware documented in DESIGN.md.

use rand::Rng;

use crate::error::{QkdError, QkdResult};
use crate::secret_key::{binary_entropy, secret_key_fraction_raw};
use crate::werner::{compose_chain, WernerParameter};

/// Configuration of a protocol run over one route.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProtocolConfig {
    /// Werner parameters of the links along the route, in path order.
    pub link_werners: Vec<f64>,
    /// Number of entangled pairs to distribute.
    pub num_pairs: usize,
}

impl ProtocolConfig {
    /// Creates a configuration.
    ///
    /// # Errors
    /// * [`QkdError::InvalidWerner`] if a link parameter is outside `(0, 1]`.
    /// * [`QkdError::InvalidParameter`] if the route is empty or `num_pairs`
    ///   is zero.
    pub fn new(link_werners: Vec<f64>, num_pairs: usize) -> QkdResult<Self> {
        if link_werners.is_empty() {
            return Err(QkdError::InvalidParameter {
                reason: "a protocol run needs at least one link".to_string(),
            });
        }
        if num_pairs == 0 {
            return Err(QkdError::InvalidParameter {
                reason: "num_pairs must be at least 1".to_string(),
            });
        }
        for &w in &link_werners {
            WernerParameter::new(w)?;
        }
        Ok(Self {
            link_werners,
            num_pairs,
        })
    }

    /// The analytic end-to-end Werner parameter of the route (Eq. 5).
    pub fn end_to_end_werner(&self) -> WernerParameter {
        compose_chain(
            self.link_werners
                .iter()
                .map(|&w| WernerParameter::new(w).expect("validated at construction")),
        )
    }
}

/// Outcome of a protocol run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ProtocolOutcome {
    /// Entangled pairs distributed.
    pub raw_pairs: usize,
    /// Pairs that survived basis sifting.
    pub sifted_bits: usize,
    /// Bit errors among the sifted pairs.
    pub errors: usize,
    /// Estimated quantum bit error rate (`errors / sifted_bits`).
    pub qber: f64,
    /// Asymptotic secret-key fraction implied by the estimated QBER,
    /// `max(0, 1 - 2 h(QBER))`.
    pub secret_key_fraction: f64,
    /// Number of final secret bits after error correction and privacy
    /// amplification accounting (`sifted_bits * secret_key_fraction`).
    pub secret_bits: usize,
    /// The sifted raw key held by the receiving client (before privacy
    /// amplification). Exposed so the key pool and the encryption layer can
    /// consume simulated key material.
    pub sifted_key: Vec<u8>,
}

impl ProtocolOutcome {
    /// The secret-key rate per distributed pair,
    /// `secret_bits / raw_pairs`.
    pub fn key_rate_per_pair(&self) -> f64 {
        if self.raw_pairs == 0 {
            0.0
        } else {
            self.secret_bits as f64 / self.raw_pairs as f64
        }
    }
}

/// Entanglement-swapping QKD protocol simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct EntanglementProtocol {
    config: ProtocolConfig,
}

impl EntanglementProtocol {
    /// Creates a simulator for the given configuration.
    pub fn new(config: ProtocolConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Runs the protocol, drawing all randomness from `rng`.
    ///
    /// Each distributed pair ends up, after entanglement swapping over all
    /// links, in a Werner state with parameter `prod_l w_l`: with that
    /// probability the endpoints share a perfect Bell pair (perfectly
    /// correlated in any shared basis), otherwise a maximally mixed pair
    /// (uncorrelated outcomes). Both endpoints measure in a uniformly random
    /// basis (Z or X); only matching bases are kept ("sifting"). Errors among
    /// the sifted bits estimate the QBER, and the asymptotic secret-key
    /// fraction `1 - 2 h(QBER)` is applied to obtain the final key length.
    pub fn run<R: Rng + ?Sized>(&self, rng: &mut R) -> ProtocolOutcome {
        let w_end = self.config.end_to_end_werner().value();
        let mut sifted_bits = 0usize;
        let mut errors = 0usize;
        let mut key_bits: Vec<bool> = Vec::new();

        for _ in 0..self.config.num_pairs {
            let alice_basis: bool = rng.gen();
            let bob_basis: bool = rng.gen();
            if alice_basis != bob_basis {
                continue; // sifted away
            }
            let alice_outcome: bool = rng.gen();
            // With probability w the pair is a perfect Bell pair: outcomes are
            // perfectly correlated in the shared basis. Otherwise the pair is
            // maximally mixed: Bob's outcome is uniform and independent.
            let bob_outcome = if rng.gen_range(0.0..1.0) < w_end {
                alice_outcome
            } else {
                rng.gen()
            };
            sifted_bits += 1;
            if alice_outcome != bob_outcome {
                errors += 1;
            }
            key_bits.push(alice_outcome);
        }

        let qber = if sifted_bits == 0 {
            0.0
        } else {
            errors as f64 / sifted_bits as f64
        };
        let secret_key_fraction = (1.0 - 2.0 * binary_entropy(qber)).max(0.0);
        let secret_bits = (sifted_bits as f64 * secret_key_fraction).floor() as usize;

        ProtocolOutcome {
            raw_pairs: self.config.num_pairs,
            sifted_bits,
            errors,
            qber,
            secret_key_fraction,
            secret_bits,
            sifted_key: pack_bits(&key_bits),
        }
    }

    /// The analytic secret-key fraction `F_skf` of the configured route,
    /// i.e. what the Monte-Carlo estimate converges to as `num_pairs` grows.
    pub fn analytic_secret_key_fraction(&self) -> f64 {
        secret_key_fraction_raw(self.config.end_to_end_werner().value())
    }
}

/// Packs a bit vector into bytes, most significant bit first.
fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            bytes[i / 8] |= 1 << (7 - (i % 8));
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn config_validation() {
        assert!(ProtocolConfig::new(vec![], 100).is_err());
        assert!(ProtocolConfig::new(vec![0.9], 0).is_err());
        assert!(ProtocolConfig::new(vec![1.2], 100).is_err());
        let cfg = ProtocolConfig::new(vec![0.99, 0.98], 100).unwrap();
        assert!((cfg.end_to_end_werner().value() - 0.9702).abs() < 1e-12);
    }

    #[test]
    fn noiseless_route_produces_error_free_key() {
        let cfg = ProtocolConfig::new(vec![1.0, 1.0, 1.0], 4_000).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let out = EntanglementProtocol::new(cfg).run(&mut rng);
        assert_eq!(out.errors, 0);
        assert_eq!(out.qber, 0.0);
        assert!((out.secret_key_fraction - 1.0).abs() < 1e-12);
        assert_eq!(out.secret_bits, out.sifted_bits);
        // Roughly half the pairs survive sifting.
        assert!(out.sifted_bits > 1_500 && out.sifted_bits < 2_500);
        assert_eq!(out.sifted_key.len(), out.sifted_bits.div_ceil(8));
    }

    #[test]
    fn qber_converges_to_analytic_value() {
        let w = 0.92_f64;
        let cfg = ProtocolConfig::new(vec![w], 200_000).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let out = EntanglementProtocol::new(cfg).run(&mut rng);
        let expected_qber = (1.0 - w) / 2.0;
        assert!(
            (out.qber - expected_qber).abs() < 0.005,
            "qber {} vs expected {}",
            out.qber,
            expected_qber
        );
    }

    #[test]
    fn estimated_key_fraction_matches_analytic_law() {
        let cfg = ProtocolConfig::new(vec![0.97, 0.96], 200_000).unwrap();
        let protocol = EntanglementProtocol::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let out = protocol.run(&mut rng);
        let analytic = protocol.analytic_secret_key_fraction();
        assert!(
            (out.secret_key_fraction - analytic).abs() < 0.02,
            "simulated {} vs analytic {}",
            out.secret_key_fraction,
            analytic
        );
        assert!(out.key_rate_per_pair() > 0.0);
    }

    #[test]
    fn below_threshold_route_yields_no_key() {
        // Werner 0.6 is well below the ~0.78 threshold: no secret key.
        let cfg = ProtocolConfig::new(vec![0.6], 50_000).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let out = EntanglementProtocol::new(cfg).run(&mut rng);
        assert_eq!(out.secret_key_fraction, 0.0);
        assert_eq!(out.secret_bits, 0);
    }

    #[test]
    fn pack_bits_is_msb_first() {
        assert_eq!(
            pack_bits(&[true, false, false, false, false, false, false, true]),
            vec![0x81]
        );
        assert_eq!(pack_bits(&[true]), vec![0x80]);
        assert_eq!(pack_bits(&[]), Vec::<u8>::new());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = ProtocolConfig::new(vec![0.95], 1_000).unwrap();
        let protocol = EntanglementProtocol::new(cfg);
        let a = protocol.run(&mut rand::rngs::StdRng::seed_from_u64(5));
        let b = protocol.run(&mut rand::rngs::StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
