//! Link entanglement-generation capacity (Eq. 3 of the paper).
//!
//! The capacity of link `l` at Werner parameter `w_l` is
//! `c_l = beta_l * (1 - w_l)`, where `beta_l = 3 kappa_l eta_l / (2 T_l)`
//! collects the link's inefficiency factor, transmissivity to its midpoint
//! and entanglement-generation time. Higher fidelity (larger `w_l`) therefore
//! costs entanglement rate — the trade-off that constraint (17c) encodes.

use crate::error::{QkdError, QkdResult};
use crate::werner::WernerParameter;

/// Physical parameters determining a link's rate coefficient `beta_l`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkPhysics {
    /// Inefficiency factor `kappa_l` of the link (excluding photon loss).
    pub kappa: f64,
    /// Transmissivity `eta_l` from one end of the link to its midpoint.
    pub eta: f64,
    /// Time `T_l` the link needs to generate entanglement pairs, in seconds.
    pub generation_time: f64,
}

impl LinkPhysics {
    /// The rate coefficient `beta_l = 3 kappa eta / (2 T)`.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidParameter`] if any parameter is
    /// non-positive or non-finite.
    pub fn beta(&self) -> QkdResult<f64> {
        if !(self.kappa > 0.0 && self.kappa.is_finite()) {
            return Err(QkdError::InvalidParameter {
                reason: format!("kappa must be positive, got {}", self.kappa),
            });
        }
        if !(self.eta > 0.0 && self.eta <= 1.0) {
            return Err(QkdError::InvalidParameter {
                reason: format!("eta must lie in (0, 1], got {}", self.eta),
            });
        }
        if !(self.generation_time > 0.0 && self.generation_time.is_finite()) {
            return Err(QkdError::InvalidParameter {
                reason: format!(
                    "generation_time must be positive, got {}",
                    self.generation_time
                ),
            });
        }
        Ok(3.0 * self.kappa * self.eta / (2.0 * self.generation_time))
    }
}

/// Entanglement-rate capacity of a link at a given Werner parameter,
/// `c_l = beta_l (1 - w_l)` (Eq. 3). Returns pairs per second.
///
/// # Errors
/// Returns [`QkdError::InvalidParameter`] if `beta` is non-positive or
/// non-finite.
pub fn link_capacity(beta: f64, w: WernerParameter) -> QkdResult<f64> {
    if !(beta > 0.0 && beta.is_finite()) {
        return Err(QkdError::InvalidParameter {
            reason: format!("beta must be positive, got {beta}"),
        });
    }
    Ok(beta * (1.0 - w.value()))
}

/// Capacity snapshot of one link: its coefficient, operating Werner parameter
/// and the implied capacity.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkCapacity {
    /// Rate coefficient `beta_l` in pairs per second.
    pub beta: f64,
    /// Operating Werner parameter.
    pub werner: WernerParameter,
    /// Resulting capacity `beta (1 - w)` in pairs per second.
    pub capacity: f64,
}

impl LinkCapacity {
    /// Evaluates the capacity of a link.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidParameter`] if `beta` is invalid.
    pub fn evaluate(beta: f64, werner: WernerParameter) -> QkdResult<Self> {
        Ok(Self {
            beta,
            werner,
            capacity: link_capacity(beta, werner)?,
        })
    }

    /// The largest Werner parameter at which this link can still serve the
    /// requested entanglement rate `load` (pairs per second); `None` when the
    /// load exceeds `beta` (infeasible at any fidelity).
    pub fn max_werner_for_load(beta: f64, load: f64) -> Option<WernerParameter> {
        if load < 0.0 || beta <= 0.0 || load > beta {
            return None;
        }
        WernerParameter::new(1.0 - load / beta).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn beta_from_physics() {
        let physics = LinkPhysics {
            kappa: 1.0,
            eta: 0.5,
            generation_time: 0.01,
        };
        // 3 * 1 * 0.5 / (2 * 0.01) = 75 pairs per second.
        assert!((physics.beta().unwrap() - 75.0).abs() < 1e-12);
    }

    #[test]
    fn beta_rejects_bad_parameters() {
        let bad = LinkPhysics {
            kappa: 0.0,
            eta: 0.5,
            generation_time: 0.01,
        };
        assert!(bad.beta().is_err());
        let bad = LinkPhysics {
            kappa: 1.0,
            eta: 1.5,
            generation_time: 0.01,
        };
        assert!(bad.beta().is_err());
        let bad = LinkPhysics {
            kappa: 1.0,
            eta: 0.5,
            generation_time: 0.0,
        };
        assert!(bad.beta().is_err());
    }

    #[test]
    fn capacity_vanishes_at_perfect_fidelity() {
        let c = link_capacity(100.0, WernerParameter::MAX).unwrap();
        assert_eq!(c, 0.0);
    }

    #[test]
    fn invalid_beta_rejected() {
        assert!(link_capacity(-1.0, WernerParameter::MAX).is_err());
        assert!(link_capacity(f64::NAN, WernerParameter::MAX).is_err());
    }

    #[test]
    fn max_werner_for_load_inverts_capacity() {
        let beta = 89.84; // link 1 of Table IV
        let load = 3.2;
        let w = LinkCapacity::max_werner_for_load(beta, load).unwrap();
        let c = link_capacity(beta, w).unwrap();
        assert!((c - load).abs() < 1e-9);
        assert!(LinkCapacity::max_werner_for_load(beta, beta + 1.0).is_none());
        assert!(LinkCapacity::max_werner_for_load(beta, -1.0).is_none());
    }

    proptest! {
        #[test]
        fn capacity_decreases_with_fidelity(beta in 1.0f64..200.0, w1 in 0.01f64..1.0, w2 in 0.01f64..1.0) {
            let (lo, hi) = if w1 < w2 { (w1, w2) } else { (w2, w1) };
            let c_lo = link_capacity(beta, WernerParameter::new(lo).unwrap()).unwrap();
            let c_hi = link_capacity(beta, WernerParameter::new(hi).unwrap()).unwrap();
            prop_assert!(c_hi <= c_lo + 1e-12);
        }

        #[test]
        fn evaluate_is_consistent(beta in 1.0f64..200.0, w in 0.01f64..1.0) {
            let werner = WernerParameter::new(w).unwrap();
            let snap = LinkCapacity::evaluate(beta, werner).unwrap();
            prop_assert!((snap.capacity - beta * (1.0 - w)).abs() < 1e-9);
        }
    }
}
