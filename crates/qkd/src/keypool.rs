//! Thread-safe pool of distributed key material.
//!
//! In the QuHE system the key center continuously distributes symmetric key
//! material to each client over the QKD network; the client's encryption
//! phase then draws keys from this buffer (Section III-A, phases 1 and 2).
//! The pool is shared between the QKD delivery path and the encryption path,
//! so it is synchronized with a [`parking_lot::Mutex`].

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::error::{QkdError, QkdResult};

/// A FIFO buffer of secret key bytes shared between the QKD layer (producer)
/// and the encryption layer (consumer).
#[derive(Debug, Default)]
pub struct KeyPool {
    buffer: Mutex<VecDeque<u8>>,
}

impl KeyPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pool pre-filled with `material`.
    pub fn with_material(material: &[u8]) -> Self {
        Self {
            buffer: Mutex::new(material.iter().copied().collect()),
        }
    }

    /// Appends freshly distributed key bytes to the pool.
    pub fn deposit(&self, material: &[u8]) {
        self.buffer.lock().extend(material.iter().copied());
    }

    /// Number of key bytes currently available.
    pub fn available(&self) -> usize {
        self.buffer.lock().len()
    }

    /// Whether the pool currently holds no key material.
    pub fn is_empty(&self) -> bool {
        self.available() == 0
    }

    /// Withdraws exactly `len` key bytes (consuming them).
    ///
    /// # Errors
    /// Returns [`QkdError::InsufficientKey`] without consuming anything when
    /// fewer than `len` bytes are available.
    pub fn withdraw(&self, len: usize) -> QkdResult<Vec<u8>> {
        let mut buffer = self.buffer.lock();
        if buffer.len() < len {
            return Err(QkdError::InsufficientKey {
                requested: len,
                available: buffer.len(),
            });
        }
        Ok(buffer.drain(..len).collect())
    }

    /// Discards all buffered key material (e.g. after a suspected
    /// eavesdropping event detected by a QBER spike).
    pub fn purge(&self) {
        self.buffer.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn deposit_and_withdraw_are_fifo() {
        let pool = KeyPool::new();
        assert!(pool.is_empty());
        pool.deposit(&[1, 2, 3, 4]);
        pool.deposit(&[5, 6]);
        assert_eq!(pool.available(), 6);
        assert_eq!(pool.withdraw(3).unwrap(), vec![1, 2, 3]);
        assert_eq!(pool.withdraw(3).unwrap(), vec![4, 5, 6]);
        assert!(pool.is_empty());
    }

    #[test]
    fn underflow_is_reported_and_non_destructive() {
        let pool = KeyPool::with_material(&[9, 9]);
        let err = pool.withdraw(5).unwrap_err();
        assert_eq!(
            err,
            QkdError::InsufficientKey {
                requested: 5,
                available: 2
            }
        );
        // Nothing was consumed by the failed withdrawal.
        assert_eq!(pool.available(), 2);
    }

    #[test]
    fn purge_empties_the_pool() {
        let pool = KeyPool::with_material(&[1; 32]);
        pool.purge();
        assert!(pool.is_empty());
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_byte_count() {
        let pool = Arc::new(KeyPool::new());
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        pool.deposit(&[0xAB; 16]);
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut withdrawn = 0usize;
        while let Ok(chunk) = pool.withdraw(32) {
            withdrawn += chunk.len();
        }
        withdrawn += pool.available();
        assert_eq!(withdrawn, 4 * 100 * 16);
    }
}
