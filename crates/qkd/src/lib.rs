//! # quhe-qkd — quantum key distribution network substrate
//!
//! This crate models the QKD side of the QuHE system (Section III-B of the
//! paper): a quantum network whose links are characterized by Werner
//! parameters, routes from a central key center to client nodes, link
//! entanglement-generation capacities, the secret-key fraction of the
//! end-to-end Werner state, and the multiplicative network utility
//! `U_qkd = prod_n phi_n * F_skf(varpi_n)` that the QuHE optimizer maximizes.
//!
//! Besides the analytic models used by the optimizer, the crate contains a
//! Monte-Carlo entanglement-distribution protocol simulator
//! ([`protocol`]) that generates sifted keys over a chain of noisy links and
//! empirically recovers the same secret-key-fraction law, a thread-safe
//! [`keypool`] that buffers distributed key material for the encryption phase
//! (consumed by `quhe-crypto`), and the time-varying [`dynamics`] processes
//! (bounded key-rate drift, key-pool depletion/refill) that drive the online
//! dynamic-world engine in `quhe-core`.
//!
//! The concrete topology evaluated in the paper — six routes over the SURFnet
//! research backbone with the link parameters of Tables III and IV — is
//! provided by [`topology::surfnet_scenario`].
//!
//! # Example
//!
//! ```
//! use quhe_qkd::topology::surfnet_scenario;
//! use quhe_qkd::utility::network_utility;
//!
//! let scenario = surfnet_scenario();
//! // Allocate one entanglement pair per second to every route and set every
//! // link to Werner parameter 0.99.
//! let phi = vec![1.0; scenario.routes().len()];
//! let w = vec![0.99; scenario.links().len()];
//! let utility = network_utility(scenario.incidence(), &phi, &w).unwrap();
//! assert!(utility > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod capacity;
pub mod dynamics;
pub mod error;
pub mod keypool;
pub mod protocol;
pub mod routes;
pub mod secret_key;
pub mod topology;
pub mod utility;
pub mod werner;

pub use error::{QkdError, QkdResult};
pub use werner::WernerParameter;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::allocation::{optimal_werner, RateAllocation};
    pub use crate::capacity::{link_capacity, LinkCapacity};
    pub use crate::dynamics::{KeyPoolProcess, LinkRateProcess, PoolStep};
    pub use crate::error::{QkdError, QkdResult};
    pub use crate::keypool::KeyPool;
    pub use crate::protocol::{EntanglementProtocol, ProtocolConfig, ProtocolOutcome};
    pub use crate::routes::{IncidenceMatrix, Route};
    pub use crate::secret_key::{binary_entropy, secret_key_fraction, SKF_THRESHOLD};
    pub use crate::topology::{surfnet_scenario, synthetic_scenario, Link, NetworkScenario, Node};
    pub use crate::utility::{log_network_utility, network_utility, route_werner};
    pub use crate::werner::WernerParameter;
}
