//! QKD network utility (Eqs. 5 and 6 of the paper).
//!
//! The utility of the network is the product over routes of the allocated
//! entanglement rate times the secret-key fraction of the route's end-to-end
//! Werner state:
//!
//! ```text
//! U_qkd = prod_n  phi_n * F_skf(varpi_n),      varpi_n = prod_l w_l^{a_ln}.
//! ```
//!
//! Stage 1 of the QuHE algorithm maximizes the logarithm of this utility,
//! which [`log_network_utility`] computes directly (it is better conditioned
//! than taking the log of the product).

use crate::error::{QkdError, QkdResult};
use crate::routes::IncidenceMatrix;
use crate::secret_key::secret_key_fraction_raw;

/// End-to-end Werner parameter `varpi_n` of route `n` (0-based), the product
/// of the Werner parameters of its links (Eq. 5).
///
/// # Errors
/// Returns [`QkdError::DimensionMismatch`] if `w.len()` differs from the
/// number of links in the incidence matrix.
pub fn route_werner(incidence: &IncidenceMatrix, w: &[f64], route: usize) -> QkdResult<f64> {
    if w.len() != incidence.num_links() {
        return Err(QkdError::DimensionMismatch {
            expected: incidence.num_links(),
            actual: w.len(),
        });
    }
    Ok(incidence
        .links_on_route(route)
        .into_iter()
        .map(|l| w[l])
        .product())
}

/// End-to-end Werner parameters of every route.
///
/// # Errors
/// Returns [`QkdError::DimensionMismatch`] if `w.len()` differs from the
/// number of links.
pub fn all_route_werners(incidence: &IncidenceMatrix, w: &[f64]) -> QkdResult<Vec<f64>> {
    (0..incidence.num_routes())
        .map(|n| route_werner(incidence, w, n))
        .collect()
}

/// The QKD network utility `U_qkd` of Eq. (6).
///
/// # Errors
/// Returns [`QkdError::DimensionMismatch`] if `phi` or `w` have the wrong
/// length.
pub fn network_utility(incidence: &IncidenceMatrix, phi: &[f64], w: &[f64]) -> QkdResult<f64> {
    if phi.len() != incidence.num_routes() {
        return Err(QkdError::DimensionMismatch {
            expected: incidence.num_routes(),
            actual: phi.len(),
        });
    }
    let werners = all_route_werners(incidence, w)?;
    Ok(phi
        .iter()
        .zip(&werners)
        .map(|(p, varpi)| p * secret_key_fraction_raw(*varpi))
        .product())
}

/// The logarithm of the QKD network utility,
/// `sum_n [ ln(phi_n) + ln(F_skf(varpi_n)) ]`.
///
/// Returns `-inf` when any route has zero secret-key fraction or zero rate —
/// the value Stage 1 assigns to infeasible points.
///
/// # Errors
/// Returns [`QkdError::DimensionMismatch`] if `phi` or `w` have the wrong
/// length.
pub fn log_network_utility(incidence: &IncidenceMatrix, phi: &[f64], w: &[f64]) -> QkdResult<f64> {
    if phi.len() != incidence.num_routes() {
        return Err(QkdError::DimensionMismatch {
            expected: incidence.num_routes(),
            actual: phi.len(),
        });
    }
    let werners = all_route_werners(incidence, w)?;
    let mut total = 0.0;
    for (p, varpi) in phi.iter().zip(&werners) {
        let skf = secret_key_fraction_raw(*varpi);
        if *p <= 0.0 || skf <= 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        total += p.ln() + skf.ln();
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes::Route;
    use crate::topology::surfnet_scenario;
    use proptest::prelude::*;

    fn tiny_incidence() -> IncidenceMatrix {
        let routes = vec![
            Route::new(1, "KC", "A", vec![1]).unwrap(),
            Route::new(2, "KC", "B", vec![1, 2]).unwrap(),
        ];
        IncidenceMatrix::from_routes(2, &routes).unwrap()
    }

    #[test]
    fn route_werner_is_product_of_links() {
        let inc = tiny_incidence();
        let w = vec![0.9, 0.8];
        assert!((route_werner(&inc, &w, 0).unwrap() - 0.9).abs() < 1e-12);
        assert!((route_werner(&inc, &w, 1).unwrap() - 0.72).abs() < 1e-12);
        assert_eq!(all_route_werners(&inc, &w).unwrap().len(), 2);
    }

    #[test]
    fn utility_is_zero_below_threshold() {
        let inc = tiny_incidence();
        // Route 2 end-to-end Werner 0.72 < threshold, so SKF = 0 => utility 0.
        let u = network_utility(&inc, &[1.0, 1.0], &[0.9, 0.8]).unwrap();
        assert_eq!(u, 0.0);
        let lu = log_network_utility(&inc, &[1.0, 1.0], &[0.9, 0.8]).unwrap();
        assert_eq!(lu, f64::NEG_INFINITY);
    }

    #[test]
    fn log_utility_matches_log_of_utility_when_positive() {
        let inc = tiny_incidence();
        let phi = [2.0, 1.5];
        let w = [0.99, 0.98];
        let u = network_utility(&inc, &phi, &w).unwrap();
        let lu = log_network_utility(&inc, &phi, &w).unwrap();
        assert!((lu - u.ln()).abs() < 1e-10);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let inc = tiny_incidence();
        assert!(network_utility(&inc, &[1.0], &[0.9, 0.9]).is_err());
        assert!(network_utility(&inc, &[1.0, 1.0], &[0.9]).is_err());
        assert!(log_network_utility(&inc, &[1.0], &[0.9, 0.9]).is_err());
        assert!(route_werner(&inc, &[0.9], 0).is_err());
    }

    #[test]
    fn surfnet_utility_with_high_fidelity_links_is_positive() {
        let s = surfnet_scenario();
        let phi = vec![1.0; 6];
        let w = vec![0.99; 18];
        let u = network_utility(s.incidence(), &phi, &w).unwrap();
        assert!(u > 0.0);
        // Longest route (6 hops) dominates the loss; with w=0.95 per link the
        // end-to-end Werner of route 6 is 0.95^6 ~ 0.735 < threshold.
        let w_low = vec![0.95; 18];
        let u_low = network_utility(s.incidence(), &phi, &w_low).unwrap();
        assert_eq!(u_low, 0.0);
    }

    proptest! {
        #[test]
        fn utility_increases_with_rate(scale in 1.01f64..3.0) {
            let s = surfnet_scenario();
            let phi: Vec<f64> = vec![1.0; 6];
            let phi_scaled: Vec<f64> = phi.iter().map(|p| p * scale).collect();
            let w = vec![0.995; 18];
            let u1 = network_utility(s.incidence(), &phi, &w).unwrap();
            let u2 = network_utility(s.incidence(), &phi_scaled, &w).unwrap();
            prop_assert!(u2 > u1);
        }

        #[test]
        fn utility_increases_with_fidelity(w_lo in 0.985f64..0.99, w_hi in 0.991f64..0.999) {
            let s = surfnet_scenario();
            let phi = vec![1.0; 6];
            let u_lo = network_utility(s.incidence(), &phi, &[w_lo; 18]).unwrap();
            let u_hi = network_utility(s.incidence(), &phi, &[w_hi; 18]).unwrap();
            prop_assert!(u_hi >= u_lo);
        }
    }
}
