//! Werner parameters of quantum links.
//!
//! A Werner state `rho_w = w |Phi+><Phi+| + (1 - w)/4 * I` interpolates
//! between a maximally entangled Bell pair (`w = 1`) and the maximally mixed
//! state (`w = 0`). The QuHE paper characterizes every QKD link `l` by a
//! Werner parameter `w_l in (0, 1]` (constraint 17b) and the end-to-end state
//! of a route by the product of its link parameters (Eq. 5).

use crate::error::{QkdError, QkdResult};

/// A validated Werner parameter in `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct WernerParameter(f64);

impl WernerParameter {
    /// The largest admissible Werner parameter (a perfect Bell pair).
    pub const MAX: WernerParameter = WernerParameter(1.0);

    /// Creates a Werner parameter, validating that it lies in `(0, 1]`.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidWerner`] when `value` is not in `(0, 1]` or
    /// is not finite.
    pub fn new(value: f64) -> QkdResult<Self> {
        if value.is_finite() && value > 0.0 && value <= 1.0 {
            Ok(Self(value))
        } else {
            Err(QkdError::InvalidWerner { value })
        }
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Fidelity of the Werner state with the ideal Bell pair,
    /// `F = (1 + 3 w) / 4`.
    pub fn fidelity(self) -> f64 {
        (1.0 + 3.0 * self.0) / 4.0
    }

    /// Quantum bit error rate (QBER) observed when measuring both halves of
    /// the Werner pair in the same basis, `Q = (1 - w) / 2`.
    pub fn qber(self) -> f64 {
        (1.0 - self.0) / 2.0
    }

    /// Composes this Werner parameter with another one, modeling entanglement
    /// swapping across two consecutive links: the end-to-end Werner parameter
    /// is the product of the per-link parameters (Eq. 5 of the paper).
    #[must_use]
    pub fn compose(self, other: WernerParameter) -> WernerParameter {
        // The product of two values in (0, 1] stays in (0, 1].
        WernerParameter(self.0 * other.0)
    }
}

impl TryFrom<f64> for WernerParameter {
    type Error = QkdError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Self::new(value)
    }
}

impl From<WernerParameter> for f64 {
    fn from(value: WernerParameter) -> f64 {
        value.value()
    }
}

impl std::fmt::Display for WernerParameter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}", self.0)
    }
}

/// Composes a chain of Werner parameters (entanglement swapping along a
/// route): the end-to-end parameter is the product of all link parameters.
///
/// Returns [`WernerParameter::MAX`] for an empty chain (a route of length
/// zero is a perfect local pair).
pub fn compose_chain<I>(links: I) -> WernerParameter
where
    I: IntoIterator<Item = WernerParameter>,
{
    links
        .into_iter()
        .fold(WernerParameter::MAX, WernerParameter::compose)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(WernerParameter::new(0.0).is_err());
        assert!(WernerParameter::new(-0.1).is_err());
        assert!(WernerParameter::new(1.0001).is_err());
        assert!(WernerParameter::new(f64::NAN).is_err());
        assert!(WernerParameter::new(1.0).is_ok());
        assert!(WernerParameter::new(1e-9).is_ok());
    }

    #[test]
    fn fidelity_and_qber_extremes() {
        let perfect = WernerParameter::MAX;
        assert_eq!(perfect.fidelity(), 1.0);
        assert_eq!(perfect.qber(), 0.0);
        let noisy = WernerParameter::new(0.5).unwrap();
        assert!((noisy.fidelity() - 0.625).abs() < 1e-12);
        assert!((noisy.qber() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn conversions_round_trip() {
        let w = WernerParameter::try_from(0.9).unwrap();
        let back: f64 = w.into();
        assert_eq!(back, 0.9);
        assert_eq!(w.to_string(), "0.900000");
    }

    #[test]
    fn compose_chain_of_empty_is_identity() {
        assert_eq!(compose_chain([]), WernerParameter::MAX);
    }

    proptest! {
        #[test]
        fn composition_stays_valid_and_decreases(a in 0.0001f64..=1.0, b in 0.0001f64..=1.0) {
            let wa = WernerParameter::new(a).unwrap();
            let wb = WernerParameter::new(b).unwrap();
            let c = wa.compose(wb);
            prop_assert!(c.value() > 0.0 && c.value() <= 1.0);
            prop_assert!(c.value() <= wa.value() + 1e-15);
            prop_assert!(c.value() <= wb.value() + 1e-15);
        }

        #[test]
        fn composition_is_commutative(a in 0.001f64..=1.0, b in 0.001f64..=1.0) {
            let wa = WernerParameter::new(a).unwrap();
            let wb = WernerParameter::new(b).unwrap();
            prop_assert!((wa.compose(wb).value() - wb.compose(wa).value()).abs() < 1e-15);
        }

        #[test]
        fn qber_fidelity_consistency(w in 0.001f64..=1.0) {
            // F = 1 - 3Q/2 for Werner states expressed via QBER Q = (1-w)/2.
            let wp = WernerParameter::new(w).unwrap();
            let expected = 1.0 - 1.5 * wp.qber();
            prop_assert!((wp.fidelity() - expected).abs() < 1e-12);
        }
    }
}
