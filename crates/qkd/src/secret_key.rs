//! Secret-key fraction of a Werner pair (Eq. 4 of the paper).
//!
//! For an entanglement-based BB84-style protocol run over a Werner state with
//! parameter `w`, the asymptotic secret-key fraction is
//!
//! ```text
//! F_skf(w) = max(0, 1 + (1 + w) log2((1 + w)/2) + (1 - w) log2((1 - w)/2))
//! ```
//!
//! which equals `1 - 2 h((1 - w)/2)` with `h` the binary entropy — the
//! familiar "one minus twice the entropy of the QBER" law. The fraction is
//! zero below the threshold `w ~ 0.779944` quoted by the paper (obtained
//! there with a graphing calculator; here we recover it by bisection and
//! expose it as [`SKF_THRESHOLD`]).

use crate::werner::WernerParameter;

/// The Werner parameter below which the secret-key fraction is exactly zero.
///
/// This is the root of `1 - 2 h((1 - w)/2) = 0`, i.e. the QBER threshold
/// (~11 %) of BB84 expressed in Werner-parameter form. The paper reports the
/// value `0.779944`.
pub const SKF_THRESHOLD: f64 = 0.779_944_271_123_280_9;

/// Binary entropy `h(p) = -p log2 p - (1-p) log2 (1-p)`, with the standard
/// convention `h(0) = h(1) = 0`.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// Secret-key fraction `F_skf(w)` of Eq. (4), for a raw Werner value.
///
/// Values of `w` outside `(0, 1]` are clamped into the interval before
/// evaluation; use [`secret_key_fraction`] with a validated
/// [`WernerParameter`] when the input is already checked.
pub fn secret_key_fraction_raw(w: f64) -> f64 {
    let w = w.clamp(f64::MIN_POSITIVE, 1.0);
    let plus = 1.0 + w;
    let minus = 1.0 - w;
    let mut value = 1.0 + plus * (plus / 2.0).log2();
    if minus > 0.0 {
        value += minus * (minus / 2.0).log2();
    }
    value.max(0.0)
}

/// Secret-key fraction `F_skf(w)` of Eq. (4) for a validated Werner
/// parameter.
pub fn secret_key_fraction(w: WernerParameter) -> f64 {
    secret_key_fraction_raw(w.value())
}

/// Derivative `d F_skf / d w` on the region where the fraction is positive
/// (zero elsewhere). Useful for gradient-based optimization of the QKD
/// utility.
pub fn secret_key_fraction_derivative(w: f64) -> f64 {
    if w <= SKF_THRESHOLD || w >= 1.0 {
        // At w = 1 the analytic derivative diverges; the optimizer never
        // needs it there because w = 1 means a noiseless link.
        if (w - 1.0).abs() < f64::EPSILON {
            return f64::INFINITY;
        }
        return 0.0;
    }
    // d/dw [ (1+w) log2((1+w)/2) + (1-w) log2((1-w)/2) ]
    //   = log2((1+w)/2) - log2((1-w)/2)
    ((1.0 + w) / 2.0).log2() - ((1.0 - w) / 2.0).log2()
}

/// Computes the zero-crossing of the secret-key fraction by bisection, used
/// in tests to confirm [`SKF_THRESHOLD`] and exposed for callers who want the
/// threshold to machine precision.
pub fn compute_threshold() -> f64 {
    let mut lo = 0.5_f64;
    let mut hi = 0.9_f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if secret_key_fraction_raw(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_state_has_unit_fraction() {
        assert!((secret_key_fraction_raw(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maximally_mixed_state_has_zero_fraction() {
        assert_eq!(secret_key_fraction_raw(1e-12), 0.0);
        assert_eq!(secret_key_fraction_raw(0.5), 0.0);
    }

    #[test]
    fn threshold_matches_papers_constant() {
        let threshold = compute_threshold();
        // The paper quotes 0.779944 (6 decimals, from Desmos).
        assert!((threshold - 0.779944).abs() < 1e-5, "threshold {threshold}");
        assert!((threshold - SKF_THRESHOLD).abs() < 1e-9);
        // Just above the threshold the fraction is positive, just below zero.
        assert!(secret_key_fraction_raw(SKF_THRESHOLD + 1e-6) > 0.0);
        assert_eq!(secret_key_fraction_raw(SKF_THRESHOLD - 1e-6), 0.0);
    }

    #[test]
    fn matches_entropy_formulation() {
        for w in [0.8, 0.85, 0.9, 0.95, 0.99] {
            let via_entropy = 1.0 - 2.0 * binary_entropy((1.0 - w) / 2.0);
            assert!(
                (secret_key_fraction_raw(w) - via_entropy).abs() < 1e-12,
                "mismatch at w={w}"
            );
        }
    }

    #[test]
    fn binary_entropy_extremes_and_symmetry() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!((binary_entropy(0.2) - binary_entropy(0.8)).abs() < 1e-12);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for w in [0.82, 0.9, 0.97] {
            let h = 1e-7;
            let fd = (secret_key_fraction_raw(w + h) - secret_key_fraction_raw(w - h)) / (2.0 * h);
            let an = secret_key_fraction_derivative(w);
            assert!((fd - an).abs() < 1e-5, "w={w}: fd={fd} an={an}");
        }
        assert_eq!(secret_key_fraction_derivative(0.5), 0.0);
    }

    proptest! {
        #[test]
        fn fraction_is_monotone_nondecreasing(a in 0.01f64..1.0, b in 0.01f64..1.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(secret_key_fraction_raw(lo) <= secret_key_fraction_raw(hi) + 1e-12);
        }

        #[test]
        fn fraction_is_bounded(w in 0.0001f64..=1.0) {
            let f = secret_key_fraction_raw(w);
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn validated_and_raw_agree(w in 0.0001f64..=1.0) {
            let wp = WernerParameter::new(w).unwrap();
            prop_assert_eq!(secret_key_fraction(wp), secret_key_fraction_raw(w));
        }
    }
}
