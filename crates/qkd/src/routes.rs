//! Routes and the link-route incidence matrix `A = [a_ln]`.

use crate::error::{QkdError, QkdResult};

/// A QKD route from the key center to one client node.
///
/// The paper identifies the `n`-th route with the `n`-th client node: the
/// destination of route `n` is client `n` (Section III-B).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Route {
    /// One-based route identifier (matches the paper's Table III).
    pub id: usize,
    /// Name of the source node (the key center).
    pub source: String,
    /// Name of the destination (client) node.
    pub destination: String,
    /// One-based identifiers of the links traversed, in order.
    pub link_ids: Vec<usize>,
}

impl Route {
    /// Creates a route.
    ///
    /// # Errors
    /// Returns [`QkdError::InvalidParameter`] if the route has no links.
    pub fn new(
        id: usize,
        source: impl Into<String>,
        destination: impl Into<String>,
        link_ids: Vec<usize>,
    ) -> QkdResult<Self> {
        if link_ids.is_empty() {
            return Err(QkdError::InvalidParameter {
                reason: format!("route {id} has no links"),
            });
        }
        Ok(Self {
            id,
            source: source.into(),
            destination: destination.into(),
            link_ids,
        })
    }

    /// Number of links (hops) on the route.
    pub fn hops(&self) -> usize {
        self.link_ids.len()
    }
}

/// The binary link-route incidence matrix `A = [a_ln]` of the paper
/// (Section III-B): `a_ln = 1` iff link `l` is part of route `n`.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct IncidenceMatrix {
    num_links: usize,
    num_routes: usize,
    /// Row-major storage, `entries[l * num_routes + n]`.
    entries: Vec<bool>,
}

impl IncidenceMatrix {
    /// Builds the incidence matrix from the route definitions for a network
    /// with `num_links` links (identified `1..=num_links`).
    ///
    /// # Errors
    /// Returns [`QkdError::UnknownLink`] if a route references a link id
    /// outside `1..=num_links`.
    pub fn from_routes(num_links: usize, routes: &[Route]) -> QkdResult<Self> {
        let num_routes = routes.len();
        let mut entries = vec![false; num_links * num_routes];
        for (n, route) in routes.iter().enumerate() {
            for &link_id in &route.link_ids {
                if link_id == 0 || link_id > num_links {
                    return Err(QkdError::UnknownLink { link_id });
                }
                entries[(link_id - 1) * num_routes + n] = true;
            }
        }
        Ok(Self {
            num_links,
            num_routes,
            entries,
        })
    }

    /// Number of links (rows).
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of routes (columns).
    pub fn num_routes(&self) -> usize {
        self.num_routes
    }

    /// Whether link `l` (0-based) is part of route `n` (0-based).
    ///
    /// # Panics
    /// Panics when an index is out of range.
    pub fn contains(&self, link: usize, route: usize) -> bool {
        assert!(
            link < self.num_links && route < self.num_routes,
            "index out of bounds"
        );
        self.entries[link * self.num_routes + route]
    }

    /// The 0-based indices of the routes that traverse link `l` (0-based).
    pub fn routes_using_link(&self, link: usize) -> Vec<usize> {
        (0..self.num_routes)
            .filter(|&n| self.contains(link, n))
            .collect()
    }

    /// The 0-based indices of the links on route `n` (0-based).
    pub fn links_on_route(&self, route: usize) -> Vec<usize> {
        (0..self.num_links)
            .filter(|&l| self.contains(l, route))
            .collect()
    }

    /// Total load `sum_n a_ln x_n` placed on link `l` (0-based) by the
    /// per-route quantities `x` (e.g. entanglement rates `phi`).
    ///
    /// # Errors
    /// Returns [`QkdError::DimensionMismatch`] if `x.len() != num_routes`.
    pub fn link_load(&self, link: usize, x: &[f64]) -> QkdResult<f64> {
        if x.len() != self.num_routes {
            return Err(QkdError::DimensionMismatch {
                expected: self.num_routes,
                actual: x.len(),
            });
        }
        Ok((0..self.num_routes)
            .filter(|&n| self.contains(link, n))
            .map(|n| x[n])
            .sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_routes() -> Vec<Route> {
        vec![
            Route::new(1, "KC", "A", vec![1, 2]).unwrap(),
            Route::new(2, "KC", "B", vec![2, 3]).unwrap(),
        ]
    }

    #[test]
    fn route_requires_links() {
        assert!(Route::new(1, "KC", "A", vec![]).is_err());
        let r = Route::new(1, "KC", "A", vec![4, 5, 6]).unwrap();
        assert_eq!(r.hops(), 3);
    }

    #[test]
    fn incidence_matrix_reflects_routes() {
        let m = IncidenceMatrix::from_routes(3, &sample_routes()).unwrap();
        assert_eq!(m.num_links(), 3);
        assert_eq!(m.num_routes(), 2);
        assert!(m.contains(0, 0));
        assert!(m.contains(1, 0));
        assert!(m.contains(1, 1));
        assert!(m.contains(2, 1));
        assert!(!m.contains(0, 1));
        assert_eq!(m.routes_using_link(1), vec![0, 1]);
        assert_eq!(m.links_on_route(0), vec![0, 1]);
    }

    #[test]
    fn unknown_link_is_rejected() {
        let routes = vec![Route::new(1, "KC", "A", vec![9]).unwrap()];
        assert_eq!(
            IncidenceMatrix::from_routes(3, &routes),
            Err(QkdError::UnknownLink { link_id: 9 })
        );
        let routes = vec![Route::new(1, "KC", "A", vec![0]).unwrap()];
        assert!(IncidenceMatrix::from_routes(3, &routes).is_err());
    }

    #[test]
    fn link_load_sums_route_rates() {
        let m = IncidenceMatrix::from_routes(3, &sample_routes()).unwrap();
        assert_eq!(m.link_load(1, &[2.0, 3.0]).unwrap(), 5.0);
        assert_eq!(m.link_load(0, &[2.0, 3.0]).unwrap(), 2.0);
        assert!(m.link_load(0, &[1.0]).is_err());
    }
}
