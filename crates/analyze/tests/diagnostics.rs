//! End-to-end pinning of the analyzer's diagnostics.
//!
//! The fixture files under `tests/fixtures/` seed one violation class per
//! pass — including the transitive alloc/panic walks and every determinism
//! source; the first test runs all five passes over them and pins the exact
//! `file:line: lint: message` output, so any drift in detection or wording
//! fails loudly. The last test asserts the workspace itself analyzes clean
//! under the checked-in `analyze.toml` — the same invariant CI enforces
//! with `cargo run -p quhe-analyze -- --workspace`.

use std::path::{Path, PathBuf};

use quhe_analyze::config::{AllowEntry, AnalyzeConfig, PanicAllow};
use quhe_analyze::scan::SourceFile;
use quhe_analyze::{analyze, collect_workspace_files};

/// The directory fixture-relative paths resolve against.
fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests")
}

/// A configuration scoped to the fixture files: the lock and panic passes
/// look only at their own fixture, the transitive passes get fixture roots,
/// the pinned list is the fixture's own format string, and the allowlists
/// exercise the exemption paths (including one deliberately stale
/// determinism entry, whose diagnostic is pinned below).
fn fixture_config() -> AnalyzeConfig {
    AnalyzeConfig {
        hot_functions: Vec::new(),
        lock_paths: vec!["fixtures/lock_discipline.rs".to_string()],
        panic_paths: vec!["fixtures/panic_discipline.rs".to_string()],
        panic_allow: vec![PanicAllow {
            file: "fixtures/panic_discipline.rs".to_string(),
            pattern: "expect(\"seeded allowlisted invariant\")".to_string(),
            reason: "fixture: exercises the allowlist path".to_string(),
        }],
        pinned: vec!["quhe-fixture/v1".to_string()],
        panic_roots: vec!["fixtures/transitive_panic.rs::seeded_entry".to_string()],
        determinism_roots: vec!["fixtures/determinism.rs::seeded_det_root".to_string()],
        determinism_allow: vec![
            AllowEntry {
                file: "fixtures/determinism.rs".to_string(),
                pattern: "index.iter()".to_string(),
                reason: "fixture: exercises the justified-allow path".to_string(),
            },
            AllowEntry {
                file: "fixtures/determinism.rs".to_string(),
                pattern: "seeded-stale-pattern".to_string(),
                reason: "fixture: deliberately stale".to_string(),
            },
        ],
    }
}

fn load_fixtures() -> Vec<SourceFile> {
    let root = fixture_root();
    [
        "fixtures/determinism.rs",
        "fixtures/hot_path_alloc.rs",
        "fixtures/lock_discipline.rs",
        "fixtures/panic_discipline.rs",
        "fixtures/pinned_contract.rs",
        "fixtures/transitive_alloc.rs",
        "fixtures/transitive_panic.rs",
    ]
    .iter()
    .map(|rel| SourceFile::load(&root, rel).expect("fixture file must load"))
    .collect()
}

#[test]
fn seeded_fixtures_produce_the_pinned_diagnostics() {
    let diags = analyze(&load_fixtures(), &fixture_config());
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    let expected = vec![
        "analyze.toml:0: config: stale [[allow.determinism]] entry: \
         `fixtures/determinism.rs` (pattern `seeded-stale-pattern`) matches no site",
        "fixtures/determinism.rs:12: determinism: determinism root `seeded_det_root` \
         reaches nondeterminism source `Instant::now()`: seeded_det_root -> \
         seeded_det_helper at fixtures/determinism.rs:12; make it order- and \
         host-independent, or annotate with `// quhe-analyze: allow(determinism)` \
         plus a justified [[allow.determinism]] entry in analyze.toml",
        "fixtures/determinism.rs:13: determinism: determinism root `seeded_det_root` \
         reaches nondeterminism source `SystemTime::now()`: seeded_det_root -> \
         seeded_det_helper at fixtures/determinism.rs:13; make it order- and \
         host-independent, or annotate with `// quhe-analyze: allow(determinism)` \
         plus a justified [[allow.determinism]] entry in analyze.toml",
        "fixtures/determinism.rs:14: determinism: determinism root `seeded_det_root` \
         reaches nondeterminism source `thread::current()`: seeded_det_root -> \
         seeded_det_helper at fixtures/determinism.rs:14; make it order- and \
         host-independent, or annotate with `// quhe-analyze: allow(determinism)` \
         plus a justified [[allow.determinism]] entry in analyze.toml",
        "fixtures/determinism.rs:15: determinism: determinism root `seeded_det_root` \
         reaches nondeterminism source `env::var()`: seeded_det_root -> \
         seeded_det_helper at fixtures/determinism.rs:15; make it order- and \
         host-independent, or annotate with `// quhe-analyze: allow(determinism)` \
         plus a justified [[allow.determinism]] entry in analyze.toml",
        "fixtures/determinism.rs:17: determinism: determinism root `seeded_det_root` \
         reaches nondeterminism source `for _ in seen`: seeded_det_root -> \
         seeded_det_helper at fixtures/determinism.rs:17; make it order- and \
         host-independent, or annotate with `// quhe-analyze: allow(determinism)` \
         plus a justified [[allow.determinism]] entry in analyze.toml",
        "fixtures/determinism.rs:20: determinism: determinism root `seeded_det_root` \
         reaches nondeterminism source `index.keys()`: seeded_det_root -> \
         seeded_det_helper at fixtures/determinism.rs:20; make it order- and \
         host-independent, or annotate with `// quhe-analyze: allow(determinism)` \
         plus a justified [[allow.determinism]] entry in analyze.toml",
        "fixtures/determinism.rs:24: determinism: `index.values()` carries \
         `// quhe-analyze: allow(determinism)` but no justifying \
         [[allow.determinism]] entry in analyze.toml matches fixtures/determinism.rs:24",
        "fixtures/hot_path_alloc.rs:8: hot-path-alloc: allocation-shaped call `Vec::new` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/hot_path_alloc.rs:9: hot-path-alloc: allocation-shaped call `vec!` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/hot_path_alloc.rs:10: hot-path-alloc: allocation-shaped call `.to_vec()` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/hot_path_alloc.rs:11: hot-path-alloc: allocation-shaped call `format!` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/lock_discipline.rs:10: lock-discipline: lock \
         `fixtures/lock_discipline.rs::handles` held across blocking call `.join(...)`",
        "fixtures/lock_discipline.rs:16: lock-discipline: acquiring \
         `fixtures/lock_discipline.rs::cache` while holding \
         `fixtures/lock_discipline.rs::queue` completes a lock-order cycle",
        "fixtures/lock_discipline.rs:22: lock-discipline: acquiring \
         `fixtures/lock_discipline.rs::queue` while holding \
         `fixtures/lock_discipline.rs::cache` completes a lock-order cycle",
        "fixtures/lock_discipline.rs:28: lock-discipline: re-acquisition of \
         `fixtures/lock_discipline.rs::queue` while its guard is live",
        "fixtures/panic_discipline.rs:7: panic-discipline: `.unwrap()` on a production \
         serve path; return a structured `QuheError` or add a justified [[allow.panic]] \
         entry in analyze.toml",
        "fixtures/panic_discipline.rs:8: panic-discipline: `.expect()` on a production \
         serve path; return a structured `QuheError` or add a justified [[allow.panic]] \
         entry in analyze.toml",
        "fixtures/panic_discipline.rs:10: panic-discipline: `panic!` on a production \
         serve path; return a structured `QuheError` or add a justified [[allow.panic]] \
         entry in analyze.toml",
        "fixtures/pinned_contract.rs:8: pinned-contract: duplicate const definition of \
         pinned string `quhe-fixture/v1` (canonical definition is \
         fixtures/pinned_contract.rs:6)",
        "fixtures/pinned_contract.rs:11: pinned-contract: pinned string `quhe-fixture/v1` \
         spelled as a literal; reference its const instead",
        "fixtures/pinned_contract.rs:15: pinned-contract: pinned string `quhe-fixture/v1` \
         embedded in a literal; reference its const instead",
        "fixtures/pinned_contract.rs:25: pinned-contract: call to deprecated shim \
         `legacy_format` from non-test code",
        "fixtures/transitive_alloc.rs:11: hot-path-alloc: hot path \
         `seeded_transitive_hot` reaches allocation-shaped call `.to_vec()`: \
         seeded_transitive_hot -> seeded_transitive_helper allocates at \
         fixtures/transitive_alloc.rs:11 (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/transitive_panic.rs:11: panic-discipline: serve entry `seeded_entry` \
         reaches `.unwrap()`: seeded_entry -> seeded_step panics at \
         fixtures/transitive_panic.rs:11; return a structured `QuheError` or add a \
         justified [[allow.panic]] entry in analyze.toml",
    ];
    assert_eq!(
        rendered,
        expected,
        "diagnostics drifted:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn each_fixture_trips_only_its_own_pass() {
    let diags = analyze(&load_fixtures(), &fixture_config());
    for diag in &diags {
        let expected_lint = match diag.file.as_str() {
            "analyze.toml" => "config",
            "fixtures/determinism.rs" => "determinism",
            "fixtures/hot_path_alloc.rs" => "hot-path-alloc",
            "fixtures/lock_discipline.rs" => "lock-discipline",
            "fixtures/panic_discipline.rs" => "panic-discipline",
            "fixtures/pinned_contract.rs" => "pinned-contract",
            "fixtures/transitive_alloc.rs" => "hot-path-alloc",
            "fixtures/transitive_panic.rs" => "panic-discipline",
            other => panic!("diagnostic in unexpected file `{other}`: {diag}"),
        };
        assert_eq!(diag.lint.name(), expected_lint, "{diag}");
    }
}

#[test]
fn transitive_findings_carry_their_call_chain() {
    let diags = analyze(&load_fixtures(), &fixture_config());
    let alloc = diags
        .iter()
        .find(|d| d.file == "fixtures/transitive_alloc.rs")
        .expect("transitive alloc finding");
    assert_eq!(
        alloc.chain,
        vec!["seeded_transitive_hot", "seeded_transitive_helper"]
    );
    let panic = diags
        .iter()
        .find(|d| d.file == "fixtures/transitive_panic.rs")
        .expect("transitive panic finding");
    assert_eq!(panic.chain, vec!["seeded_entry", "seeded_step"]);
}

#[test]
fn the_exercised_allowlist_entries_are_not_reported_stale() {
    let diags = analyze(&load_fixtures(), &fixture_config());
    let config_diags: Vec<_> = diags.iter().filter(|d| d.file == "analyze.toml").collect();
    // The only config diagnostic is the deliberately stale determinism
    // entry; the exercised panic and determinism allows are consumed.
    assert_eq!(config_diags.len(), 1, "{config_diags:?}");
    assert!(
        config_diags[0].message.contains("seeded-stale-pattern"),
        "{}",
        config_diags[0].message
    );
}

#[test]
fn the_workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = AnalyzeConfig::load(&root).expect("analyze.toml must parse");
    let files = collect_workspace_files(&root).expect("workspace sources must load");
    assert!(
        files.len() > 50,
        "workspace collection looks truncated: {} files",
        files.len()
    );
    let diags = analyze(&files, &config);
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "the workspace must analyze clean (CI runs the same check):\n{}",
        rendered.join("\n")
    );
}
