//! End-to-end pinning of the analyzer's diagnostics.
//!
//! The fixture files under `tests/fixtures/` seed one violation class per
//! pass; the first test runs all four passes over them and pins the exact
//! `file:line: lint: message` output, so any drift in detection or wording
//! fails loudly. The second test asserts the workspace itself analyzes
//! clean under the checked-in `analyze.toml` — the same invariant CI
//! enforces with `cargo run -p quhe-analyze -- --workspace`.

use std::path::{Path, PathBuf};

use quhe_analyze::config::{AnalyzeConfig, PanicAllow};
use quhe_analyze::scan::SourceFile;
use quhe_analyze::{analyze, collect_workspace_files};

/// The directory fixture-relative paths resolve against.
fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests")
}

/// A configuration scoped to the fixture files: the lock and panic passes
/// look only at their own fixture, the pinned list is the fixture's own
/// format string, and one allowlist entry exercises the exemption path.
fn fixture_config() -> AnalyzeConfig {
    AnalyzeConfig {
        hot_functions: Vec::new(),
        lock_paths: vec!["fixtures/lock_discipline.rs".to_string()],
        panic_paths: vec!["fixtures/panic_discipline.rs".to_string()],
        panic_allow: vec![PanicAllow {
            file: "fixtures/panic_discipline.rs".to_string(),
            pattern: "expect(\"seeded allowlisted invariant\")".to_string(),
            reason: "fixture: exercises the allowlist path".to_string(),
        }],
        pinned: vec!["quhe-fixture/v1".to_string()],
    }
}

fn load_fixtures() -> Vec<SourceFile> {
    let root = fixture_root();
    [
        "fixtures/hot_path_alloc.rs",
        "fixtures/lock_discipline.rs",
        "fixtures/panic_discipline.rs",
        "fixtures/pinned_contract.rs",
    ]
    .iter()
    .map(|rel| SourceFile::load(&root, rel).expect("fixture file must load"))
    .collect()
}

#[test]
fn seeded_fixtures_produce_the_pinned_diagnostics() {
    let diags = analyze(&load_fixtures(), &fixture_config());
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    let expected = vec![
        "fixtures/hot_path_alloc.rs:8: hot-path-alloc: allocation-shaped call `Vec::new` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/hot_path_alloc.rs:9: hot-path-alloc: allocation-shaped call `vec!` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/hot_path_alloc.rs:10: hot-path-alloc: allocation-shaped call `.to_vec()` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/hot_path_alloc.rs:11: hot-path-alloc: allocation-shaped call `format!` \
         in hot-path function `seeded_hot` (annotate the line with \
         `// quhe-analyze: allow(alloc)` if intended)",
        "fixtures/lock_discipline.rs:10: lock-discipline: lock \
         `fixtures/lock_discipline.rs::handles` held across blocking call `.join(...)`",
        "fixtures/lock_discipline.rs:16: lock-discipline: acquiring \
         `fixtures/lock_discipline.rs::cache` while holding \
         `fixtures/lock_discipline.rs::queue` completes a lock-order cycle",
        "fixtures/lock_discipline.rs:22: lock-discipline: acquiring \
         `fixtures/lock_discipline.rs::queue` while holding \
         `fixtures/lock_discipline.rs::cache` completes a lock-order cycle",
        "fixtures/lock_discipline.rs:28: lock-discipline: re-acquisition of \
         `fixtures/lock_discipline.rs::queue` while its guard is live",
        "fixtures/panic_discipline.rs:7: panic-discipline: `.unwrap()` on a production \
         serve path; return a structured `QuheError` or add a justified [[allow.panic]] \
         entry in analyze.toml",
        "fixtures/panic_discipline.rs:8: panic-discipline: `.expect()` on a production \
         serve path; return a structured `QuheError` or add a justified [[allow.panic]] \
         entry in analyze.toml",
        "fixtures/panic_discipline.rs:10: panic-discipline: `panic!` on a production \
         serve path; return a structured `QuheError` or add a justified [[allow.panic]] \
         entry in analyze.toml",
        "fixtures/pinned_contract.rs:8: pinned-contract: duplicate const definition of \
         pinned string `quhe-fixture/v1` (canonical definition is \
         fixtures/pinned_contract.rs:6)",
        "fixtures/pinned_contract.rs:11: pinned-contract: pinned string `quhe-fixture/v1` \
         spelled as a literal; reference its const instead",
        "fixtures/pinned_contract.rs:15: pinned-contract: pinned string `quhe-fixture/v1` \
         embedded in a literal; reference its const instead",
        "fixtures/pinned_contract.rs:25: pinned-contract: call to deprecated shim \
         `legacy_format` from non-test code",
    ];
    assert_eq!(
        rendered,
        expected,
        "diagnostics drifted:\n{}",
        rendered.join("\n")
    );
}

#[test]
fn each_fixture_trips_only_its_own_pass() {
    let diags = analyze(&load_fixtures(), &fixture_config());
    for diag in &diags {
        let expected_lint = match diag.file.as_str() {
            "fixtures/hot_path_alloc.rs" => "hot-path-alloc",
            "fixtures/lock_discipline.rs" => "lock-discipline",
            "fixtures/panic_discipline.rs" => "panic-discipline",
            "fixtures/pinned_contract.rs" => "pinned-contract",
            other => panic!("diagnostic in unexpected file `{other}`: {diag}"),
        };
        assert_eq!(diag.lint.name(), expected_lint, "{diag}");
    }
}

#[test]
fn the_exercised_allowlist_entry_is_not_reported_stale() {
    let diags = analyze(&load_fixtures(), &fixture_config());
    assert!(
        diags.iter().all(|d| d.file != "analyze.toml"),
        "fixture config should produce no config diagnostics: {diags:?}"
    );
}

#[test]
fn the_workspace_analyzes_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let config = AnalyzeConfig::load(&root).expect("analyze.toml must parse");
    let files = collect_workspace_files(&root).expect("workspace sources must load");
    assert!(
        files.len() > 50,
        "workspace collection looks truncated: {} files",
        files.len()
    );
    let diags = analyze(&files, &config);
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "the workspace must analyze clean (CI runs the same check):\n{}",
        rendered.join("\n")
    );
}
