//! Seeded violations for the hot-path allocation lint: four
//! allocation-shaped calls inside an annotated function, one call exempted
//! by `allow(alloc)`, and an unannotated function that allocates freely.
//! This file is analyzer test data; it is never compiled.

// quhe-analyze: hot-path
pub fn seeded_hot(xs: &[f64]) -> f64 {
    let mut out = Vec::new();
    let doubled = vec![0.0; 4];
    let copied = xs.to_vec();
    let label = format!("{}", copied.len());
    // quhe-analyze: allow(alloc)
    let exempt = copied.clone();
    out.push(exempt[0] + doubled[0] + label.len() as f64);
    out[0]
}

pub fn cold_path(xs: &[f64]) -> Vec<f64> {
    xs.to_vec()
}
