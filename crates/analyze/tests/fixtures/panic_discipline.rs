//! Seeded violations for the panic-discipline lint: `unwrap`, `expect` and
//! `panic!` on a production path, one allowlisted `expect`, and a test
//! module that may panic freely. This file is analyzer test data; it is
//! never compiled.

pub fn respond(input: Option<u32>) -> u32 {
    let value = input.unwrap();
    let checked = input.expect("value is present");
    if value != checked {
        panic!("mismatch between identical reads");
    }
    value
}

pub fn allowed_site(input: Option<u32>) -> u32 {
    input.expect("seeded allowlisted invariant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        None::<u32>.unwrap();
    }
}
