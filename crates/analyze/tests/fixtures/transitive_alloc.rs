//! Seeded violation for the transitive half of the hot-path allocation
//! lint: the annotated root is itself clean; the helper it calls allocates.
//! This file is analyzer test data; it is never compiled.

// quhe-analyze: hot-path
pub fn seeded_transitive_hot(xs: &[f64]) -> f64 {
    seeded_transitive_helper(xs)
}

fn seeded_transitive_helper(xs: &[f64]) -> f64 {
    let staged = xs.to_vec();
    staged[0]
}
