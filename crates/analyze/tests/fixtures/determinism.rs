//! Seeded violations for the determinism pass: one site per nondeterminism
//! source class, one justified allow (exercised by the test config), one
//! allow comment without a justifying entry, and the test config carries a
//! deliberately stale entry. This file is analyzer test data; it is never
//! compiled.

pub fn seeded_det_root(seen: &HashSet<u64>) -> u64 {
    seeded_det_helper(seen)
}

fn seeded_det_helper(seen: &HashSet<u64>) -> u64 {
    let started = Instant::now();
    let wall = SystemTime::now();
    let worker = thread::current();
    let host = std::env::var("QUHE_SEED");
    let mut index: HashMap<u64, u64> = HashMap::new();
    for key in seen {
        index.insert(*key, *key);
    }
    let first = index.keys().next().copied().unwrap_or(0);
    // quhe-analyze: allow(determinism)
    let justified = index.iter().count() as u64;
    // quhe-analyze: allow(determinism)
    let unjustified = index.values().count() as u64;
    first + justified + unjustified
}
