//! Call-graph fixture: names shadowed across modules — `helper` exists here
//! and in `solver.rs`, and `Patch::smooth` shares its name with the
//! `Smooth` trait method. This file is analyzer test data; it is never
//! compiled.

pub struct Patch {
    extent: f64,
}

impl Patch {
    fn smooth(&self, x: f64) -> f64 {
        x * self.extent
    }
}

pub fn area(x: f64) -> f64 {
    helper(x) * 2.0
}

fn helper(x: f64) -> f64 {
    x - 1.0
}
