//! Call-graph fixture: inherent and trait methods, a shadowed free
//! function, and an untyped receiver that over-approximates. This file is
//! analyzer test data; it is never compiled.

pub struct Refiner {
    passes: usize,
}

impl Refiner {
    pub fn run(&self, x: f64) -> f64 {
        self.step(x) + helper(x)
    }

    fn step(&self, x: f64) -> f64 {
        x * 0.5
    }
}

pub trait Smooth {
    fn smooth(&self, x: f64) -> f64;
}

impl Smooth for Refiner {
    fn smooth(&self, x: f64) -> f64 {
        Refiner::step(self, x)
    }
}

pub fn refine(x: f64) -> f64 {
    let refiner = Refiner { passes: 1 };
    refiner.smooth(x)
}

fn helper(x: f64) -> f64 {
    x + 1.0
}
