//! Call-graph fixture: free functions and cross-module calls. This file is
//! analyzer test data; it is never compiled.

pub fn drive(xs: &[f64]) -> f64 {
    let prepared = normalize(xs);
    solver::refine(prepared) + geometry::area(prepared)
}

fn normalize(x: &[f64]) -> f64 {
    x[0]
}
