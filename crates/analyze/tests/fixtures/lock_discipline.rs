//! Seeded violations for the lock-discipline lint: a guard held across a
//! blocking `.join(...)` call, two functions acquiring the same pair of
//! locks in opposite orders, and a re-acquisition of a lock whose guard is
//! still live. This file is analyzer test data; it is never compiled.

impl Server {
    pub fn join_under_lock(&self) {
        let workers = self.handles.lock();
        for handle in workers.iter() {
            handle.join();
        }
    }

    pub fn queue_then_cache(&self) -> usize {
        let queue = self.queue.lock();
        let cache = self.cache.lock();
        queue.len() + cache.len()
    }

    pub fn cache_then_queue(&self) -> usize {
        let cache = self.cache.lock();
        let queue = self.queue.lock();
        cache.len() + queue.len()
    }

    pub fn double_acquire(&self) -> usize {
        let first = self.queue.lock();
        let second = self.queue.lock();
        first.len() + second.len()
    }
}
