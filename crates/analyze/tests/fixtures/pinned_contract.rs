//! Seeded violations for the pinned-contract lint: a duplicate `const`
//! definition of a pinned string, a bare literal spelling, a literal that
//! embeds the pinned string, and a call to a `#[deprecated]` shim from
//! non-test code. This file is analyzer test data; it is never compiled.

pub const FIXTURE_FMT: &str = "quhe-fixture/v1";

pub const DUPLICATE_FMT: &str = "quhe-fixture/v1";

pub fn spell_it_out() -> &'static str {
    "quhe-fixture/v1"
}

pub fn embed_it() -> String {
    let banner = "format quhe-fixture/v1 ready";
    banner.to_string()
}

#[deprecated(note = "use spell_it_out")]
pub fn legacy_format() -> &'static str {
    FIXTURE_FMT
}

pub fn still_calls_legacy() -> &'static str {
    legacy_format()
}
