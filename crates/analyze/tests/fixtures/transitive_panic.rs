//! Seeded violation for the transitive half of the panic-discipline lint:
//! the entry point lives outside the configured panic paths and is listed
//! under `[panics] roots` in the test config; the helper it reaches panics.
//! This file is analyzer test data; it is never compiled.

pub fn seeded_entry(flag: Option<u32>) -> u32 {
    seeded_step(flag)
}

fn seeded_step(flag: Option<u32>) -> u32 {
    flag.unwrap()
}
