//! Resolution coverage for the whole-workspace call graph, over the fixture
//! crate under `tests/fixtures/callgraph/`: free functions, inherent and
//! trait methods, names shadowed across modules, cross-module calls, and
//! one deliberately untyped receiver whose over-approximation pins the
//! unresolved-call count reported by `--stats`.

use std::path::{Path, PathBuf};

use quhe_analyze::callgraph::CallGraph;
use quhe_analyze::scan::SourceFile;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests")
}

fn load() -> Vec<SourceFile> {
    [
        "fixtures/callgraph/engine.rs",
        "fixtures/callgraph/geometry.rs",
        "fixtures/callgraph/solver.rs",
    ]
    .iter()
    .map(|rel| SourceFile::load(&fixture_root(), rel).expect("fixture file must load"))
    .collect()
}

/// Node index by `(file suffix, display name)`.
fn node(graph: &CallGraph, file: &str, display: &str) -> usize {
    graph
        .nodes
        .iter()
        .position(|n| n.file.ends_with(file) && n.display() == display)
        .unwrap_or_else(|| panic!("no node {display} in {file}"))
}

/// Whether the graph has an edge `from -> to`.
fn has_edge(graph: &CallGraph, from: usize, to: usize) -> bool {
    graph.edges[from].iter().any(|e| e.to == to)
}

#[test]
fn free_fn_method_and_cross_module_edges_resolve() {
    let files = load();
    let graph = CallGraph::build(&files);

    let drive = node(&graph, "engine.rs", "drive");
    let normalize = node(&graph, "engine.rs", "normalize");
    let refine = node(&graph, "solver.rs", "refine");
    let area = node(&graph, "geometry.rs", "area");
    let run = node(&graph, "solver.rs", "Refiner::run");
    let step = node(&graph, "solver.rs", "Refiner::step");
    let smooth = node(&graph, "solver.rs", "Refiner::smooth");
    let solver_helper = node(&graph, "solver.rs", "helper");
    let geometry_helper = node(&graph, "geometry.rs", "helper");

    // Bare call to a same-file free fn.
    assert!(has_edge(&graph, drive, normalize));
    // `module::free_fn()` resolves across files by module path.
    assert!(has_edge(&graph, drive, refine));
    assert!(has_edge(&graph, drive, area));
    // `self.method()` resolves through the impl owner.
    assert!(has_edge(&graph, run, step));
    // `Type::method(self, ..)` resolves through the qualified owner.
    assert!(has_edge(&graph, smooth, step));
    // The shadowed free fn `helper` resolves to the caller's own file on
    // both sides — never across.
    assert!(has_edge(&graph, run, solver_helper));
    assert!(!has_edge(&graph, run, geometry_helper));
    assert!(has_edge(&graph, area, geometry_helper));
    assert!(!has_edge(&graph, area, solver_helper));
}

#[test]
fn untyped_receivers_over_approximate_and_the_stats_pin_it() {
    let files = load();
    let graph = CallGraph::build(&files);

    // `refiner.smooth(x)` cannot see the receiver's type, so it
    // over-approximates to both `smooth` implementors.
    let refine = node(&graph, "solver.rs", "refine");
    let refiner_smooth = node(&graph, "solver.rs", "Refiner::smooth");
    let patch_smooth = node(&graph, "geometry.rs", "Patch::smooth");
    assert!(has_edge(&graph, refine, refiner_smooth));
    assert!(has_edge(&graph, refine, patch_smooth));

    // Pinned resolution counters for the fixture crate — the same numbers
    // `--stats` reports. 7 precise sites, 1 over-approximated
    // (`refiner.smooth`, two candidate edges), and no call into code
    // outside the fixture.
    assert_eq!(graph.stats.resolved, 7, "{:?}", graph.stats);
    assert_eq!(graph.stats.unresolved, 1, "{:?}", graph.stats);
    assert_eq!(graph.stats.external, 0, "{:?}", graph.stats);
    assert_eq!(graph.stats.edges, 9, "{:?}", graph.stats);
    assert!(
        (graph.stats.unresolved_fraction() - 1.0 / 8.0).abs() < 1e-12,
        "{:?}",
        graph.stats
    );
}

#[test]
fn reachability_walks_over_approximated_edges_and_chains_render() {
    let files = load();
    let graph = CallGraph::build(&files);

    let drive = node(&graph, "engine.rs", "drive");
    let step = node(&graph, "solver.rs", "Refiner::step");
    let parent = graph.reachable(&[drive]);
    // drive -> refine -> refiner.smooth (over-approx) -> Refiner::smooth
    // -> Refiner::step: the walk crosses precise and over-approximated
    // edges alike.
    assert!(parent.contains_key(&step));
    let chain = graph.chain(&parent, step);
    assert_eq!(
        chain,
        vec!["drive", "refine", "Refiner::smooth", "Refiner::step"]
    );
    // `Refiner::run` has no incoming edges from `drive`.
    let run = node(&graph, "solver.rs", "Refiner::run");
    assert!(!parent.contains_key(&run));
}
