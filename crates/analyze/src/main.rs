//! The `quhe-analyze` command-line entry point.
//!
//! ```text
//! cargo run -p quhe-analyze -- --workspace [--root <dir>] [--config <file>]
//! ```
//!
//! Exit codes follow the `-D warnings` convention: `0` when the workspace is
//! clean, `1` when any diagnostic was produced, `2` on usage or
//! configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

use quhe_analyze::config::AnalyzeConfig;
use quhe_analyze::{analyze, collect_workspace_files, find_workspace_root};

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(message) => {
            eprintln!("quhe-analyze: {message}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<usize, String> {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config needs a file")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("nothing to do: pass --workspace\n{USAGE}"));
    }
    let root = match root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory (try --root)")?
        }
    };
    let config = match config_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            AnalyzeConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => AnalyzeConfig::load(&root)?,
    };
    let files = collect_workspace_files(&root).map_err(|e| e.to_string())?;
    let diags = analyze(&files, &config);
    for diagnostic in &diags {
        println!("{diagnostic}");
    }
    if diags.is_empty() {
        println!(
            "quhe-analyze: clean — {} files, 4 passes, 0 diagnostics",
            files.len()
        );
    } else {
        println!(
            "quhe-analyze: {} diagnostic(s) across {} files",
            diags.len(),
            files.len()
        );
    }
    Ok(diags.len())
}

const USAGE: &str = "usage: quhe-analyze --workspace [--root <dir>] [--config <file>]

  --workspace   analyze every crate source in the workspace
  --root DIR    workspace root (default: nearest ancestor with [workspace])
  --config FILE analyze.toml to use (default: <root>/analyze.toml if present)";
