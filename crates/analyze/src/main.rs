//! The `quhe-analyze` command-line entry point.
//!
//! ```text
//! cargo run -p quhe-analyze -- --workspace [--root <dir>] [--config <file>]
//!     [--stats] [--emit human|json] [--max-unresolved <fraction>]
//! ```
//!
//! Exit codes follow the `-D warnings` convention: `0` when the workspace is
//! clean (and the unresolved-call gate, if any, holds), `1` when any
//! diagnostic was produced or the gate failed, `2` on usage or
//! configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

use quhe_analyze::callgraph::GraphStats;
use quhe_analyze::config::AnalyzeConfig;
use quhe_analyze::diag::Diagnostic;
use quhe_analyze::{analyze_with_stats, collect_workspace_files, find_workspace_root};
use quhe_core::json::JsonValue;

/// The versioned schema tag of `--emit json` output.
const JSON_SCHEMA: &str = "quhe-analyze/v1";

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("quhe-analyze: {message}");
            ExitCode::from(2)
        }
    }
}

#[derive(PartialEq)]
enum Emit {
    Human,
    Json,
}

fn run() -> Result<bool, String> {
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut stats = false;
    let mut emit = Emit::Human;
    let mut max_unresolved: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().ok_or("--root needs a directory")?,
                ));
            }
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config needs a file")?));
            }
            "--stats" => stats = true,
            "--emit" => {
                emit = match args.next().as_deref() {
                    Some("human") => Emit::Human,
                    Some("json") => Emit::Json,
                    Some(other) => return Err(format!("unknown --emit format `{other}`")),
                    None => return Err("--emit needs `human` or `json`".to_string()),
                };
            }
            "--max-unresolved" => {
                let raw = args.next().ok_or("--max-unresolved needs a fraction")?;
                let value: f64 = raw
                    .parse()
                    .map_err(|_| format!("--max-unresolved: `{raw}` is not a number"))?;
                if !(0.0..=1.0).contains(&value) {
                    return Err(format!("--max-unresolved: `{raw}` is not in [0, 1]"));
                }
                max_unresolved = Some(value);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !workspace {
        return Err(format!("nothing to do: pass --workspace\n{USAGE}"));
    }
    let root = match root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory (try --root)")?
        }
    };
    let config = match config_path {
        Some(path) => {
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            AnalyzeConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => AnalyzeConfig::load(&root)?,
    };
    let files = collect_workspace_files(&root).map_err(|e| e.to_string())?;
    let (diags, graph_stats) = analyze_with_stats(&files, &config);

    let fraction = graph_stats.unresolved_fraction();
    let gate_failed = max_unresolved.is_some_and(|limit| fraction > limit);

    match emit {
        Emit::Json => {
            let doc = json_report(&diags, &graph_stats, files.len());
            println!("{}", doc.to_pretty_string());
        }
        Emit::Human => {
            for diagnostic in &diags {
                println!("{diagnostic}");
            }
            if diags.is_empty() {
                println!(
                    "quhe-analyze: clean — {} files, 5 passes, 0 diagnostics",
                    files.len()
                );
            } else {
                println!(
                    "quhe-analyze: {} diagnostic(s) across {} files",
                    diags.len(),
                    files.len()
                );
            }
            if stats {
                println!(
                    "quhe-analyze: call graph: {} functions, {} edges; {} call sites — \
                     {} resolved, {} unresolved (over-approximated), {} external; \
                     unresolved fraction {fraction:.4}",
                    graph_stats.functions,
                    graph_stats.edges,
                    graph_stats.call_sites,
                    graph_stats.resolved,
                    graph_stats.unresolved,
                    graph_stats.external,
                );
            }
        }
    }
    if gate_failed {
        eprintln!(
            "quhe-analyze: unresolved-call fraction {fraction:.4} exceeds --max-unresolved {}",
            max_unresolved.unwrap_or_default()
        );
    }
    Ok(diags.is_empty() && !gate_failed)
}

/// The `quhe-analyze/v1` JSON document: diagnostics (with structured call
/// chains), call-graph stats and the overall verdict.
fn json_report(diags: &[Diagnostic], stats: &GraphStats, files: usize) -> JsonValue {
    let diagnostics: Vec<JsonValue> = diags
        .iter()
        .map(|d| {
            JsonValue::object()
                .with("pass", JsonValue::String(d.lint.name().to_string()))
                .with("file", JsonValue::String(d.file.clone()))
                .with("line", JsonValue::from_u64(u64::from(d.line)))
                .with("message", JsonValue::String(d.message.clone()))
                .with(
                    "chain",
                    JsonValue::Array(
                        d.chain
                            .iter()
                            .map(|name| JsonValue::String(name.clone()))
                            .collect(),
                    ),
                )
        })
        .collect();
    JsonValue::object()
        .with("schema", JsonValue::String(JSON_SCHEMA.to_string()))
        .with("files", JsonValue::from_usize(files))
        .with("clean", JsonValue::Bool(diags.is_empty()))
        .with("diagnostics", JsonValue::Array(diagnostics))
        .with(
            "call_graph",
            JsonValue::object()
                .with("functions", JsonValue::from_usize(stats.functions))
                .with("edges", JsonValue::from_usize(stats.edges))
                .with("call_sites", JsonValue::from_usize(stats.call_sites))
                .with("resolved", JsonValue::from_usize(stats.resolved))
                .with("unresolved", JsonValue::from_usize(stats.unresolved))
                .with("external", JsonValue::from_usize(stats.external))
                .with(
                    "unresolved_fraction",
                    JsonValue::from_f64(stats.unresolved_fraction()),
                ),
        )
}

const USAGE: &str = "usage: quhe-analyze --workspace [--root <dir>] [--config <file>]
                    [--stats] [--emit human|json] [--max-unresolved <fraction>]

  --workspace          analyze every crate source in the workspace
  --root DIR           workspace root (default: nearest ancestor with [workspace])
  --config FILE        analyze.toml to use (default: <root>/analyze.toml if present)
  --stats              print call-graph resolution counters after the diagnostics
  --emit FORMAT        human (default) or json (stable `quhe-analyze/v1` schema)
  --max-unresolved F   exit 1 if the unresolved-call fraction exceeds F";
