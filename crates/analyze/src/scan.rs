//! Brace-aware item scanner: finds functions, impl owners, test regions and
//! annotations in a token stream without building a full AST.
//!
//! The scanner tracks exactly what the lint passes need: every `fn` item with
//! its body token range, the `impl` block owner type it belongs to, whether
//! it is test code (`#[test]` attribute or inside a `#[cfg(test)]` module),
//! and the `// quhe-analyze: ...` annotations attached to it. Function bodies
//! are skipped wholesale once recorded, so nested braces inside a body never
//! confuse item-level tracking.

use std::io;
use std::path::Path;

use crate::lexer::{lex, Token, TokenKind};

/// A `fn` item found in a source file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` block's self type, for methods (`None` for free functions).
    pub owner: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Token index of the `fn` keyword (the signature runs from here to the
    /// body open).
    pub decl: usize,
    /// Token indices of the body's `{` and `}` (`None` for bodyless
    /// declarations such as trait method signatures).
    pub body: Option<(usize, usize)>,
    /// Test code: `#[test]`/`#[cfg(test)]` on the item or an enclosing module.
    pub is_test: bool,
    /// Marked `// quhe-analyze: hot-path` directly above the item.
    pub hot_path: bool,
    /// Carries a `#[deprecated]` attribute.
    pub is_deprecated: bool,
    /// Carries `#[allow(deprecated)]` (directly or from an enclosing module).
    pub allows_deprecated: bool,
}

/// A scanned source file: tokens plus the item structure over them.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// The raw source lines (for allowlist pattern matching).
    pub lines: Vec<String>,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Token ranges of `#[cfg(test)]` module bodies.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lexes and scans `source` under the given workspace-relative path.
    pub fn parse(path: impl Into<String>, source: &str) -> Self {
        let tokens = lex(source);
        let mut scanner = Scanner {
            tokens: &tokens,
            i: 0,
            fns: Vec::new(),
            test_regions: Vec::new(),
        };
        scanner.run();
        let Scanner {
            fns, test_regions, ..
        } = scanner;
        SourceFile {
            path: path.into(),
            lines: source.lines().map(str::to_string).collect(),
            tokens,
            fns,
            test_regions,
        }
    }

    /// Reads and scans the file at `root.join(rel)`.
    pub fn load(root: &Path, rel: &str) -> io::Result<Self> {
        let source = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &source))
    }

    /// Whether the token at `idx` lies inside test code: a `#[cfg(test)]`
    /// module body or the body of a `#[test]` function.
    pub fn is_test_token(&self, idx: usize) -> bool {
        if self
            .test_regions
            .iter()
            .any(|&(open, close)| idx > open && idx < close)
        {
            return true;
        }
        self.fns.iter().any(|f| {
            f.is_test
                && f.body
                    .is_some_and(|(open, close)| idx >= open && idx <= close)
        })
    }

    /// The text of the 1-indexed source line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(String::as_str)
            .unwrap_or("")
    }
}

/// Attributes pending on the next item.
#[derive(Debug, Default, Clone, Copy)]
struct Attrs {
    test: bool,
    cfg_test: bool,
    deprecated: bool,
    allow_deprecated: bool,
}

/// What an open `{` introduced.
struct Ctx {
    open: usize,
    owner: Option<String>,
    test: bool,
    allow_dep: bool,
    is_test_mod: bool,
}

struct Scanner<'a> {
    tokens: &'a [Token],
    i: usize,
    fns: Vec<FnItem>,
    test_regions: Vec<(usize, usize)>,
}

/// The annotation marking a function as hot-path.
pub const HOT_PATH_MARK: &str = "quhe-analyze: hot-path";

impl Scanner<'_> {
    fn run(&mut self) {
        let mut pending = Attrs::default();
        let mut pending_hot = false;
        let mut stack: Vec<Ctx> = Vec::new();
        while self.i < self.tokens.len() {
            let tok = &self.tokens[self.i];
            match &tok.kind {
                TokenKind::LineComment(text) => {
                    if text.contains(HOT_PATH_MARK) {
                        pending_hot = true;
                    }
                    self.i += 1;
                }
                TokenKind::Punct('#') => {
                    self.attribute(&mut pending);
                }
                TokenKind::Ident(name) => match name.as_str() {
                    "impl" => {
                        self.impl_block(&mut stack, pending);
                        pending = Attrs::default();
                        pending_hot = false;
                    }
                    "mod" => {
                        self.module(&mut stack, pending);
                        pending = Attrs::default();
                        pending_hot = false;
                    }
                    "fn" => {
                        self.function(&stack, pending, pending_hot);
                        pending = Attrs::default();
                        pending_hot = false;
                    }
                    "struct" | "enum" | "trait" | "type" | "static" | "use" => {
                        pending = Attrs::default();
                        pending_hot = false;
                        self.i += 1;
                    }
                    _ => self.i += 1,
                },
                TokenKind::Punct('{') => {
                    let (owner, test, allow_dep) = match stack.last() {
                        Some(top) => (top.owner.clone(), top.test, top.allow_dep),
                        None => (None, false, false),
                    };
                    stack.push(Ctx {
                        open: self.i,
                        owner,
                        test,
                        allow_dep,
                        is_test_mod: false,
                    });
                    self.i += 1;
                }
                TokenKind::Punct('}') => {
                    if let Some(ctx) = stack.pop() {
                        if ctx.is_test_mod {
                            self.test_regions.push((ctx.open, self.i));
                        }
                    }
                    self.i += 1;
                }
                TokenKind::Punct(';') => {
                    pending = Attrs::default();
                    pending_hot = false;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Parses `#[...]` starting at the current `#`, folding recognized
    /// attributes into `pending`. Inner attributes (`#![...]`) are skipped.
    fn attribute(&mut self, pending: &mut Attrs) {
        let inner = self.tokens.get(self.i + 1).is_some_and(|t| t.is_punct('!'));
        let open = self.i + if inner { 2 } else { 1 };
        if !self.tokens.get(open).is_some_and(|t| t.is_punct('[')) {
            self.i += 1;
            return;
        }
        let mut depth = 0usize;
        let mut idents: Vec<&str> = Vec::new();
        let mut j = open;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(name) => idents.push(name),
                _ => {}
            }
            j += 1;
        }
        if !inner {
            match idents.first().copied() {
                Some("test") => pending.test = true,
                Some("cfg") if idents.contains(&"test") && !idents.contains(&"not") => {
                    pending.cfg_test = true;
                }
                Some("deprecated") => pending.deprecated = true,
                Some("allow") if idents.contains(&"deprecated") => {
                    pending.allow_deprecated = true;
                }
                _ => {}
            }
        }
        self.i = j + 1;
    }

    /// Parses an `impl` header starting at the `impl` keyword and pushes the
    /// body context with the self type as owner.
    fn impl_block(&mut self, stack: &mut Vec<Ctx>, pending: Attrs) {
        let mut j = self.i + 1;
        // Skip the generic parameter list, if any.
        if self.tokens.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j);
        }
        // Collect the type path; `for` resets it (what came before was the
        // trait), `where`/`{`/`;` end the header.
        let mut path: Vec<&str> = Vec::new();
        let mut body = None;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Ident(name) if name == "for" => {
                    path.clear();
                    j += 1;
                }
                TokenKind::Ident(name) if name == "where" => {
                    j = self.find_body_open(j);
                    if self.tokens.get(j).is_some_and(|t| t.is_punct('{')) {
                        body = Some(j);
                    }
                    break;
                }
                TokenKind::Ident(name) => {
                    path.push(name);
                    j += 1;
                }
                TokenKind::Punct('<') => j = self.skip_angles(j),
                TokenKind::Punct('{') => {
                    body = Some(j);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => j += 1,
            }
        }
        let owner = path.last().map(|s| s.to_string());
        match body {
            Some(open) => {
                let inherited = stack.last();
                stack.push(Ctx {
                    open,
                    owner,
                    test: pending.cfg_test || inherited.is_some_and(|c| c.test),
                    allow_dep: pending.allow_deprecated || inherited.is_some_and(|c| c.allow_dep),
                    is_test_mod: false,
                });
                self.i = open + 1;
            }
            None => self.i = j + 1,
        }
    }

    /// Parses a `mod` item starting at the `mod` keyword.
    fn module(&mut self, stack: &mut Vec<Ctx>, pending: Attrs) {
        let mut j = self.i + 1;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('{') => {
                    let inherited = stack.last();
                    let test = pending.cfg_test || inherited.is_some_and(|c| c.test);
                    stack.push(Ctx {
                        open: j,
                        owner: None,
                        test,
                        allow_dep: pending.allow_deprecated
                            || inherited.is_some_and(|c| c.allow_dep),
                        is_test_mod: pending.cfg_test,
                    });
                    self.i = j + 1;
                    return;
                }
                TokenKind::Punct(';') => {
                    self.i = j + 1;
                    return;
                }
                _ => j += 1,
            }
        }
        self.i = j;
    }

    /// Parses a `fn` item starting at the `fn` keyword.
    fn function(&mut self, stack: &[Ctx], pending: Attrs, hot: bool) {
        let Some(name) = self.tokens.get(self.i + 1).and_then(|t| t.ident()) else {
            // `fn(i32) -> i32` pointer type, not an item.
            self.i += 1;
            return;
        };
        let name = name.to_string();
        let line = self.tokens[self.i].line;
        let decl = self.i;
        let open = self.find_body_open(self.i + 2);
        let body = if self.tokens.get(open).is_some_and(|t| t.is_punct('{')) {
            Some((open, self.match_brace(open)))
        } else {
            None
        };
        let top = stack.last();
        self.fns.push(FnItem {
            name,
            owner: top.and_then(|c| c.owner.clone()),
            line,
            decl,
            body,
            is_test: pending.test || pending.cfg_test || top.is_some_and(|c| c.test),
            hot_path: hot,
            is_deprecated: pending.deprecated,
            allows_deprecated: pending.allow_deprecated || top.is_some_and(|c| c.allow_dep),
        });
        self.i = match body {
            Some((_, close)) => close + 1,
            None => open + 1, // `open` is the terminating `;` (or end)
        };
    }

    /// From `start`, finds the index of the first `{` or `;` outside any
    /// parenthesized/bracketed group — the item's body open or terminator.
    fn find_body_open(&self, start: usize) -> usize {
        let mut depth = 0usize;
        let mut j = start;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('(' | '[') => depth += 1,
                TokenKind::Punct(')' | ']') => depth = depth.saturating_sub(1),
                TokenKind::Punct('{' | ';') if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// The index of the `}` matching the `{` at `open` (end of stream if
    /// unbalanced).
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j.min(self.tokens.len().saturating_sub(1))
    }

    /// Skips a balanced `<...>` group starting at the `<` at `start`,
    /// returning the index just past the matching `>`.
    fn skip_angles(&self, start: usize) -> usize {
        let mut depth = 0isize;
        let mut j = start;
        while j < self.tokens.len() {
            match &self.tokens[j].kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth <= 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(source: &str) -> SourceFile {
        SourceFile::parse("test.rs", source)
    }

    #[test]
    fn free_and_method_fns_with_owners() {
        let f = scan(
            "fn free() { 1 }\n\
             struct Foo;\n\
             impl Foo { pub fn method(&self) -> u32 { 2 } }\n\
             impl std::fmt::Display for Foo {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }",
        );
        let names: Vec<_> = f
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.owner.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("Foo")),
                ("fmt", Some("Foo"))
            ]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_the_self_type() {
        let f = scan("impl<'a, T: Clone> Wrapper<'a, T> { fn get(&self) -> &T { &self.0 } }");
        assert_eq!(f.fns[0].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn test_attributes_and_cfg_test_modules() {
        let f = scan(
            "fn prod() {}\n\
             #[test]\n\
             fn direct_test() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
                 #[test]\n\
                 fn inner() { let s = \"lit\"; }\n\
             }",
        );
        let by_name = |n: &str| f.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("direct_test").is_test);
        assert!(by_name("helper").is_test);
        assert!(by_name("inner").is_test);
        let lit_idx = f
            .tokens
            .iter()
            .position(|t| matches!(&t.kind, TokenKind::Str { value, .. } if value == "lit"))
            .unwrap();
        assert!(f.is_test_token(lit_idx));
    }

    #[test]
    fn hot_path_annotation_attaches_to_the_next_fn_only() {
        let f = scan(
            "// quhe-analyze: hot-path\n\
             #[inline]\n\
             pub fn marked(x: f64) -> f64 { x }\n\
             pub fn unmarked(x: f64) -> f64 { x }",
        );
        assert!(f.fns[0].hot_path);
        assert!(!f.fns[1].hot_path);
    }

    #[test]
    fn deprecated_attributes_are_recorded() {
        let f = scan(
            "#[deprecated(since = \"0.5.0\", note = \"use solve_batch\")]\n\
             pub fn olaa() {}\n\
             #[allow(deprecated)]\n\
             fn caller() { olaa(); }",
        );
        assert!(f.fns[0].is_deprecated);
        assert!(!f.fns[0].allows_deprecated);
        assert!(f.fns[1].allows_deprecated);
    }

    #[test]
    fn bodyless_trait_methods_do_not_derail_scanning() {
        let f = scan(
            "trait Solver {\n\
                 fn solve(&self) -> f64;\n\
                 fn name(&self) -> &str { \"base\" }\n\
             }\n\
             fn after() {}",
        );
        assert_eq!(f.fns.len(), 3);
        assert!(f.fns[0].body.is_none());
        assert!(f.fns[1].body.is_some());
        assert_eq!(f.fns[2].name, "after");
    }

    #[test]
    fn fn_bodies_are_skipped_wholesale() {
        let f = scan(
            "fn outer() {\n\
                 let closure = |x: u32| { x + 1 };\n\
                 if true { () } else { () }\n\
             }\n\
             fn next() {}",
        );
        assert_eq!(f.fns.len(), 2);
        assert_eq!(f.fns[1].name, "next");
    }

    #[test]
    fn where_clauses_and_returns_do_not_hide_the_body() {
        let f = scan(
            "fn generic<T>(x: T) -> Vec<T>\n\
             where\n\
                 T: Clone,\n\
             {\n\
                 vec![x]\n\
             }",
        );
        assert_eq!(f.fns.len(), 1);
        assert!(f.fns[0].body.is_some());
    }
}
