//! `analyze.toml` parsing and the built-in default configuration.
//!
//! The parser covers exactly the subset of TOML the analyzer's configuration
//! uses — `[section]` headers, `[[array.of.tables]]` headers, `key = "string"`
//! / `key = 'literal string'` assignments, string arrays (single- or
//! multi-line), and `#` comments. It is hand-rolled in the same spirit as
//! `quhe-core::json`: the workspace takes no dependencies for tooling.

use std::path::Path;

/// One `[[allow.panic]]` / `[[allow.determinism]]` entry: a justified
/// exemption from the corresponding lint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative file the exemption applies to.
    pub file: String,
    /// Substring that must appear on the flagged source line.
    pub pattern: String,
    /// Required human justification; an empty reason is itself a diagnostic.
    pub reason: String,
}

/// The historical name of [`AllowEntry`], kept for the panic-allow list.
pub type PanicAllow = AllowEntry;

/// The analyzer's effective configuration.
#[derive(Debug, Clone)]
pub struct AnalyzeConfig {
    /// Extra hot-path functions named `"<file-suffix>::<fn-name>"`, on top of
    /// `// quhe-analyze: hot-path` annotations in the sources.
    pub hot_functions: Vec<String>,
    /// Path prefixes the lock-discipline lint scans.
    pub lock_paths: Vec<String>,
    /// Path prefixes the panic-discipline lint scans.
    pub panic_paths: Vec<String>,
    /// Serve entry points named `"<file>::<fn-name>"`: the roots the
    /// transitive panic-discipline walk starts from.
    pub panic_roots: Vec<String>,
    /// Justified panic-discipline exemptions.
    pub panic_allow: Vec<AllowEntry>,
    /// Determinism roots named `"<file>::<fn-name>"`: everything reachable
    /// from them must be free of nondeterminism sources.
    pub determinism_roots: Vec<String>,
    /// Justified determinism exemptions (paired with per-line
    /// `// quhe-analyze: allow(determinism)` comments).
    pub determinism_allow: Vec<AllowEntry>,
    /// Pinned contract strings each requiring exactly one `const` definition.
    pub pinned: Vec<String>,
}

impl Default for AnalyzeConfig {
    /// The built-in configuration. The pinned list references the
    /// workspace's real constants so the default can never drift from the
    /// definitions it enforces.
    fn default() -> Self {
        AnalyzeConfig {
            hot_functions: Vec::new(),
            lock_paths: vec![
                "crates/serve/src".to_string(),
                "crates/core/src".to_string(),
            ],
            panic_paths: vec!["crates/serve/src".to_string()],
            panic_roots: Vec::new(),
            panic_allow: Vec::new(),
            determinism_roots: Vec::new(),
            determinism_allow: Vec::new(),
            pinned: vec![
                quhe_core::fingerprint::SCENARIO_FMT.to_string(),
                quhe_core::fingerprint::DRIFT_DIST_FMT.to_string(),
                quhe_serve::wire::PROTOCOL_V2.to_string(),
                quhe_serve::cache::SNAPSHOT_SCHEMA.to_string(),
            ],
        }
    }
}

impl AnalyzeConfig {
    /// Parses `analyze.toml` text and merges it over the defaults: `paths`
    /// keys replace the default scopes, list keys extend them.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = AnalyzeConfig::default();
        let mut section = String::new();
        let mut pending_allow: Option<(String, AllowEntry)> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let lineno = idx + 1;
            if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
                flush_allow(&mut config, &mut pending_allow, lineno)?;
                let header = header.trim();
                if header != "allow.panic" && header != "allow.determinism" {
                    return Err(format!("line {lineno}: unknown table `[[{header}]]`"));
                }
                pending_allow = Some((
                    header.to_string(),
                    AllowEntry {
                        file: String::new(),
                        pattern: String::new(),
                        reason: String::new(),
                    },
                ));
                section = header.to_string();
            } else if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                flush_allow(&mut config, &mut pending_allow, lineno)?;
                section = header.trim().to_string();
                if !matches!(
                    section.as_str(),
                    "hot_path" | "locks" | "panics" | "determinism" | "contract"
                ) {
                    return Err(format!("line {lineno}: unknown section `[{section}]`"));
                }
            } else if let Some((key, value)) = line.split_once('=') {
                let key = key.trim();
                let mut value = value.trim().to_string();
                // A multi-line array: keep consuming until the closing `]`.
                while value.starts_with('[') && !balanced_array(&value) {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {lineno}: unterminated array for `{key}`"));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
                apply(
                    &mut config,
                    &mut pending_allow,
                    &section,
                    key,
                    &value,
                    lineno,
                )?;
            } else {
                return Err(format!("line {lineno}: cannot parse `{line}`"));
            }
        }
        flush_allow(&mut config, &mut pending_allow, text.lines().count() + 1)?;
        Ok(config)
    }

    /// Loads `analyze.toml` from `root` if present; otherwise the defaults.
    pub fn load(root: &Path) -> Result<Self, String> {
        match std::fs::read_to_string(root.join("analyze.toml")) {
            Ok(text) => Self::parse(&text).map_err(|e| format!("analyze.toml: {e}")),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(AnalyzeConfig::default()),
            Err(e) => Err(format!("analyze.toml: {e}")),
        }
    }
}

fn apply(
    config: &mut AnalyzeConfig,
    pending_allow: &mut Option<(String, AllowEntry)>,
    section: &str,
    key: &str,
    value: &str,
    lineno: usize,
) -> Result<(), String> {
    match (section, key) {
        ("allow.panic" | "allow.determinism", "file" | "pattern" | "reason") => {
            let (_, entry) = pending_allow
                .as_mut()
                .ok_or_else(|| format!("line {lineno}: `{key}` outside `[[{section}]]`"))?;
            let s = parse_string(value)
                .ok_or_else(|| format!("line {lineno}: `{key}` must be a string"))?;
            match key {
                "file" => entry.file = s,
                "pattern" => entry.pattern = s,
                _ => entry.reason = s,
            }
        }
        ("hot_path", "functions") => config.hot_functions.extend(parse_array(value, lineno)?),
        ("locks", "paths") => config.lock_paths = parse_array(value, lineno)?,
        ("panics", "paths") => config.panic_paths = parse_array(value, lineno)?,
        ("panics", "roots") => config.panic_roots.extend(parse_array(value, lineno)?),
        ("determinism", "roots") => config.determinism_roots.extend(parse_array(value, lineno)?),
        ("contract", "pinned") => {
            for s in parse_array(value, lineno)? {
                if !config.pinned.contains(&s) {
                    config.pinned.push(s);
                }
            }
        }
        _ => {
            return Err(format!(
                "line {lineno}: unknown key `{key}` in section `[{section}]`"
            ))
        }
    }
    Ok(())
}

fn flush_allow(
    config: &mut AnalyzeConfig,
    pending: &mut Option<(String, AllowEntry)>,
    lineno: usize,
) -> Result<(), String> {
    if let Some((kind, entry)) = pending.take() {
        if entry.file.is_empty() || entry.pattern.is_empty() {
            return Err(format!(
                "line {lineno}: `[[{kind}]]` entry needs both `file` and `pattern`"
            ));
        }
        match kind.as_str() {
            "allow.panic" => config.panic_allow.push(entry),
            _ => config.determinism_allow.push(entry),
        }
    }
    Ok(())
}

/// Strips a trailing `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str: Option<char> = None;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match in_str {
            Some(quote) => {
                if escaped {
                    escaped = false;
                } else if quote == '"' && c == '\\' {
                    escaped = true;
                } else if c == quote {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => in_str = Some(c),
                '#' => return &line[..i],
                _ => {}
            },
        }
    }
    line
}

/// Whether an array value has its closing `]` (quote-aware).
fn balanced_array(value: &str) -> bool {
    let mut in_str: Option<char> = None;
    let mut escaped = false;
    for c in value.chars() {
        match in_str {
            Some(quote) => {
                if escaped {
                    escaped = false;
                } else if quote == '"' && c == '\\' {
                    escaped = true;
                } else if c == quote {
                    in_str = None;
                }
            }
            None => match c {
                '"' | '\'' => in_str = Some(c),
                ']' => return true,
                _ => {}
            },
        }
    }
    false
}

/// Parses a `"..."` (with `\"`/`\\` escapes) or `'...'` (literal) string.
fn parse_string(value: &str) -> Option<String> {
    let value = value.trim();
    if let Some(body) = value.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')) {
        return Some(body.to_string());
    }
    let body = value.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some(other) => out.push(other),
                None => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Parses `[ "a", 'b', ... ]` into its string elements.
fn parse_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let value = value.trim();
    let body = value
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected a string array"))?;
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let quote = rest
            .chars()
            .next()
            .filter(|c| *c == '"' || *c == '\'')
            .ok_or_else(|| format!("line {lineno}: expected a quoted string in array"))?;
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices().skip(1) {
            if escaped {
                escaped = false;
            } else if quote == '"' && c == '\\' {
                escaped = true;
            } else if c == quote {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("line {lineno}: unterminated string in array"))?;
        let element = parse_string(&rest[..=end])
            .ok_or_else(|| format!("line {lineno}: bad string in array"))?;
        out.push(element);
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_track_the_real_constants() {
        let config = AnalyzeConfig::default();
        assert!(config.pinned.contains(&"QUHE-SCN-v1".to_string()));
        assert!(config.pinned.contains(&"quhe-serve/v2".to_string()));
        assert!(config
            .pinned
            .contains(&"quhe-cache-snapshot/v1".to_string()));
        assert!(config.pinned.contains(&"QUHE-DRIFT-DIST-v1".to_string()));
    }

    #[test]
    fn parses_sections_arrays_and_allow_tables() {
        let config = AnalyzeConfig::parse(
            r#"
# comment
[hot_path]
functions = [
    "crates/opt/src/line_search.rs::search_into",  # trailing comment
    "crates/core/src/stage3.rs::rate",
]

[locks]
paths = ["crates/serve/src"]

[[allow.panic]]
file = "crates/serve/src/cache.rs"
pattern = 'expect("linked node")'
reason = "intrusive-LRU invariant"

[[allow.panic]]
file = "crates/serve/src/service.rs"
pattern = "panic!"
reason = ""
"#,
        )
        .unwrap();
        assert_eq!(config.hot_functions.len(), 2);
        assert_eq!(config.lock_paths, vec!["crates/serve/src".to_string()]);
        assert_eq!(config.panic_allow.len(), 2);
        assert_eq!(config.panic_allow[0].pattern, "expect(\"linked node\")");
        assert_eq!(config.panic_allow[1].reason, "");
    }

    #[test]
    fn rejects_unknown_sections_and_incomplete_allows() {
        assert!(AnalyzeConfig::parse("[nope]\n").is_err());
        assert!(AnalyzeConfig::parse("[[allow.panic]]\nfile = \"x.rs\"\n").is_err());
        assert!(AnalyzeConfig::parse("[hot_path]\nfunctions = \"not-an-array\"\n").is_err());
    }

    #[test]
    fn parses_roots_and_determinism_allow_tables() {
        let config = AnalyzeConfig::parse(
            r#"
[panics]
roots = ["crates/serve/src/service.rs::handle"]

[determinism]
roots = [
    "crates/core/src/fingerprint.rs::fingerprint",
    "crates/serve/src/cache.rs::lookup_exact",
]

[[allow.determinism]]
file = "crates/core/src/solver.rs"
pattern = "Instant::now"
reason = "wall-clock telemetry only; never feeds the solution"
"#,
        )
        .unwrap();
        assert_eq!(
            config.panic_roots,
            vec!["crates/serve/src/service.rs::handle".to_string()]
        );
        assert_eq!(config.determinism_roots.len(), 2);
        assert_eq!(config.determinism_allow.len(), 1);
        assert_eq!(config.determinism_allow[0].pattern, "Instant::now");
        assert!(AnalyzeConfig::parse("[[allow.nope]]\n").is_err());
    }

    #[test]
    fn contract_pinned_extends_rather_than_replaces() {
        let config = AnalyzeConfig::parse("[contract]\npinned = [\"extra-fmt/v9\"]\n").unwrap();
        assert!(config.pinned.contains(&"extra-fmt/v9".to_string()));
        assert!(config.pinned.contains(&"QUHE-SCN-v1".to_string()));
    }
}
