//! The diagnostic model: what a lint reports and how it prints.

use std::fmt;

/// Which lint pass produced a diagnostic. The kebab-case name is part of the
/// output contract — fixture tests pin it verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// Allocation-shaped call inside a hot-path function.
    HotPathAlloc,
    /// Lock-order cycle or a guard held across a blocking call.
    LockDiscipline,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` on a production serve path.
    PanicDiscipline,
    /// Pinned version string spelled as a literal, defined twice, or a
    /// deprecated shim called from non-test code.
    PinnedContract,
    /// A nondeterminism source reachable from a determinism root.
    Determinism,
    /// A stale or malformed `analyze.toml` entry.
    Config,
}

impl Lint {
    /// The stable kebab-case name used in output.
    pub fn name(self) -> &'static str {
        match self {
            Lint::HotPathAlloc => "hot-path-alloc",
            Lint::LockDiscipline => "lock-discipline",
            Lint::PanicDiscipline => "panic-discipline",
            Lint::PinnedContract => "pinned-contract",
            Lint::Determinism => "determinism",
            Lint::Config => "config",
        }
    }
}

/// One finding, anchored to a file and 1-indexed line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-indexed line the finding anchors to (0 for file-level findings).
    pub line: u32,
    /// The pass that produced it.
    pub lint: Lint,
    /// Human-readable description of the violation.
    pub message: String,
    /// For transitive findings, the root-to-site call chain of function
    /// display names (empty for direct findings). The chain is also spelled
    /// inside `message`; this field carries it structured for `--emit json`.
    pub chain: Vec<String>,
}

impl Diagnostic {
    /// Builds a direct (chainless) diagnostic.
    pub fn new(file: impl Into<String>, line: u32, lint: Lint, message: impl Into<String>) -> Self {
        Diagnostic {
            file: file.into(),
            line,
            lint,
            message: message.into(),
            chain: Vec::new(),
        }
    }

    /// Builds a transitive diagnostic carrying its call chain.
    pub fn with_chain(
        file: impl Into<String>,
        line: u32,
        lint: Lint,
        message: impl Into<String>,
        chain: Vec<String>,
    ) -> Self {
        Diagnostic {
            chain,
            ..Diagnostic::new(file, line, lint, message)
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file,
            self.line,
            self.lint.name(),
            self.message
        )
    }
}

/// Sorts diagnostics into the stable output order: by file, then line, then
/// lint, then message.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_file_line_lint_message() {
        let d = Diagnostic::new(
            "crates/serve/src/net.rs",
            314,
            Lint::LockDiscipline,
            "guard held across `.join(`",
        );
        assert_eq!(
            d.to_string(),
            "crates/serve/src/net.rs:314: lock-discipline: guard held across `.join(`"
        );
    }
}
