//! Pass 3: panic-discipline lint — direct and transitive.
//!
//! Production code in the configured paths (the serving layer by default)
//! must not call `unwrap()`/`expect()` or invoke `panic!`/`unreachable!`:
//! a panic in a worker or connection thread silently removes capacity, and
//! every recoverable failure already has a structured `QuheError` kind with
//! a wire tag. Sites that are genuinely unreachable-or-corrupt (documented
//! startup panics, intrusive-LRU internal invariants) are exempted through
//! `[[allow.panic]]` entries in `analyze.toml` — each entry names the file,
//! a substring of the offending line, and a non-empty justification.
//!
//! The *transitive* half extends the guarantee past the configured paths:
//! serve entry points listed under `[panics] roots` are walked through the
//! workspace call graph, and a panic site anywhere they can reach — a
//! solver helper in `core`, a projection in `opt` — is reported with its
//! full call chain, because a panic two calls below `handle` takes the
//! worker down just as surely as one inside it.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::scan::{FnItem, SourceFile};

/// Runs the pass over all files.
pub fn run(
    files: &[SourceFile],
    config: &AnalyzeConfig,
    graph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let mut used = vec![false; config.panic_allow.len()];
    for (idx, entry) in config.panic_allow.iter().enumerate() {
        if entry.reason.trim().is_empty() {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!(
                    "[[allow.panic]] entry for `{}` (pattern `{}`) has an empty reason; \
                     every exemption needs a justification",
                    entry.file, entry.pattern
                ),
            ));
            used[idx] = true; // don't also report it as stale
        }
    }

    // Direct findings: every production function under the configured paths.
    let methods = owned_methods(files);
    let in_paths = |path: &str| config.panic_paths.iter().any(|p| path.starts_with(p));
    for file in files {
        if !in_paths(&file.path) {
            continue;
        }
        for item in &file.fns {
            if item.is_test {
                continue;
            }
            let Some((open, close)) = item.body else {
                continue;
            };
            for (line, what) in panic_sites(file, item, open, close, &methods) {
                if allowed(file, line, config, &mut used) {
                    continue;
                }
                diags.push(Diagnostic::new(
                    &file.path,
                    line,
                    Lint::PanicDiscipline,
                    format!(
                        "`{what}` on a production serve path; return a structured `QuheError` \
                         or add a justified [[allow.panic]] entry in analyze.toml"
                    ),
                ));
            }
        }
    }

    // Transitive findings: panic sites reachable from the configured serve
    // entry points, outside the directly-scanned paths.
    let mut roots: Vec<usize> = Vec::new();
    for spec in &config.panic_roots {
        let matched = graph.find_roots(spec);
        if matched.is_empty() {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!("[panics] roots entry `{spec}` matches no function in the workspace"),
            ));
        }
        roots.extend(matched);
    }
    let parent = graph.reachable(&roots);
    for &node_idx in parent.keys() {
        let node = &graph.nodes[node_idx];
        if in_paths(&node.file) {
            // Direct-covered above (roots usually live inside the serve
            // paths); re-reporting with a chain would duplicate the finding.
            continue;
        }
        let file = &files[node.file_idx];
        let item = &file.fns[node.fn_idx];
        let Some((open, close)) = item.body else {
            continue;
        };
        for (line, what) in panic_sites(file, item, open, close, &methods) {
            if allowed(file, line, config, &mut used) {
                continue;
            }
            let chain = graph.chain(&parent, node_idx);
            let root = chain[0].clone();
            let rendered = chain.join(" -> ");
            diags.push(Diagnostic::with_chain(
                &file.path,
                line,
                Lint::PanicDiscipline,
                format!(
                    "serve entry `{root}` reaches `{what}`: {rendered} panics at {}:{line}; \
                     return a structured `QuheError` or add a justified [[allow.panic]] \
                     entry in analyze.toml",
                    file.path
                ),
                chain,
            ));
        }
    }

    for (idx, entry) in config.panic_allow.iter().enumerate() {
        if !used[idx] {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!(
                    "stale [[allow.panic]] entry: `{}` (pattern `{}`) matches no site",
                    entry.file, entry.pattern
                ),
            ));
        }
    }
}

/// Whether a site line is covered by a justified `[[allow.panic]]` entry,
/// marking every matching entry used.
fn allowed(file: &SourceFile, line: u32, config: &AnalyzeConfig, used: &mut [bool]) -> bool {
    let text = file.line_text(line);
    let mut hit = false;
    for (idx, entry) in config.panic_allow.iter().enumerate() {
        if entry.file == file.path && text.contains(&entry.pattern) {
            used[idx] = true;
            if !entry.reason.trim().is_empty() {
                hit = true;
            }
        }
    }
    hit
}

/// `(owner, method)` pairs for every inherent/trait method in the workspace,
/// used to tell `self.expect(...)` on a type with its own fallible `expect`
/// apart from `Option::expect`/`Result::expect`.
pub(crate) fn owned_methods(files: &[SourceFile]) -> BTreeSet<(String, String)> {
    let mut methods = BTreeSet::new();
    for file in files {
        for item in &file.fns {
            if let Some(owner) = &item.owner {
                methods.insert((owner.clone(), item.name.clone()));
            }
        }
    }
    methods
}

/// Panic-shaped sites in `item`'s body, as `(line, rendered)` pairs.
///
/// A `self.unwrap()`/`self.expect(...)` call is *not* a site when the
/// caller's own impl owner defines a method of that name — it dispatches to
/// that (fallible) method, not to the std combinator.
pub(crate) fn panic_sites(
    file: &SourceFile,
    item: &FnItem,
    open: usize,
    close: usize,
    methods: &BTreeSet<(String, String)>,
) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    let ident = |i: usize| tokens.get(i).and_then(|t| t.ident());
    let punct = |i: usize, c: char| tokens.get(i).is_some_and(|t| t.is_punct(c));
    let own_method = |name: &str| {
        item.owner
            .as_ref()
            .is_some_and(|owner| methods.contains(&(owner.clone(), name.to_string())))
    };
    let hi = close.min(tokens.len().saturating_sub(1));
    let mut sites = Vec::new();
    for (i, token) in tokens.iter().enumerate().take(hi + 1).skip(open) {
        let what = match &token.kind {
            TokenKind::Punct('.')
                if matches!(ident(i + 1), Some("unwrap" | "expect")) && punct(i + 2, '(') =>
            {
                let name = ident(i + 1).unwrap_or_default();
                let self_receiver = i > 0 && ident(i - 1) == Some("self");
                if self_receiver && own_method(name) {
                    None
                } else {
                    Some(format!(".{name}()"))
                }
            }
            TokenKind::Ident(name)
                if (name == "panic" || name == "unreachable") && punct(i + 1, '!') =>
            {
                Some(format!("{name}!"))
            }
            _ => None,
        };
        if let Some(what) = what {
            sites.push((tokens[i].line, what));
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PanicAllow;

    fn run_on(source: &str, allow: Vec<PanicAllow>) -> Vec<Diagnostic> {
        run_with(&[("crates/serve/src/x.rs", source)], allow, Vec::new())
    }

    fn run_with(
        sources: &[(&str, &str)],
        allow: Vec<PanicAllow>,
        roots: Vec<String>,
    ) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| SourceFile::parse(*path, src))
            .collect();
        let config = AnalyzeConfig {
            panic_paths: vec!["crates/serve/src".to_string()],
            panic_allow: allow,
            panic_roots: roots,
            ..AnalyzeConfig::default()
        };
        let graph = CallGraph::build(&files);
        let mut diags = Vec::new();
        run(&files, &config, &graph, &mut diags);
        crate::diag::sort(&mut diags);
        diags
    }

    #[test]
    fn flags_unwrap_expect_panic_unreachable() {
        let diags = run_on(
            "fn f(x: Option<u32>) -> u32 {\n\
                 let a = x.unwrap();\n\
                 let b = x.expect(\"present\");\n\
                 if a > b { panic!(\"impossible\"); }\n\
                 unreachable!()\n\
             }",
            Vec::new(),
        );
        let whats: Vec<_> = diags
            .iter()
            .map(|d| d.message.split('`').nth(1).unwrap().to_string())
            .collect();
        assert_eq!(
            whats,
            vec![".unwrap()", ".expect()", "panic!", "unreachable!"]
        );
    }

    #[test]
    fn adapters_and_similar_names_are_not_flagged() {
        let diags = run_on(
            "fn f(x: Result<u32, u32>) -> u32 {\n\
                 x.unwrap_or_else(|e| e)\n\
             }\n\
             fn g(x: Result<u32, u32>) -> u32 { x.unwrap_or(0) }",
            Vec::new(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn justified_allowlist_entries_exempt_their_site() {
        let allow = vec![PanicAllow {
            file: "crates/serve/src/x.rs".to_string(),
            pattern: "expect(\"linked node\")".to_string(),
            reason: "intrusive-list invariant".to_string(),
        }];
        let diags = run_on(
            "fn f(x: Option<u32>) -> u32 { x.expect(\"linked node\") }",
            allow,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn empty_reason_and_stale_entries_are_config_diagnostics() {
        let allow = vec![
            PanicAllow {
                file: "crates/serve/src/x.rs".to_string(),
                pattern: "unwrap()".to_string(),
                reason: String::new(),
            },
            PanicAllow {
                file: "crates/serve/src/x.rs".to_string(),
                pattern: "never matches".to_string(),
                reason: "justified".to_string(),
            },
        ];
        let diags = run_on("fn f(x: Option<u32>) -> u32 { x.unwrap() }", allow);
        // Empty reason → config diagnostic AND the site still flagged;
        // unmatched pattern → stale-entry diagnostic.
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("empty reason")));
        assert!(diags.iter().any(|d| d.message.contains("stale")));
        assert!(diags.iter().any(|d| d.lint == Lint::PanicDiscipline));
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = run_on(
            "#[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { Some(1).unwrap(); panic!(\"in tests this is fine\"); }\n\
             }",
            Vec::new(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn serve_roots_reach_panics_outside_the_configured_paths() {
        let diags = run_with(
            &[
                (
                    "crates/serve/src/service.rs",
                    "pub fn handle() { deep_solve(); }\nfn deep_solve() { core_step(); }",
                ),
                (
                    "crates/core/src/solver.rs",
                    "pub fn core_step() { Some(1).unwrap(); }",
                ),
            ],
            Vec::new(),
            vec!["crates/serve/src/service.rs::handle".to_string()],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, "crates/core/src/solver.rs");
        assert_eq!(diags[0].chain, vec!["handle", "deep_solve", "core_step"]);
        assert!(
            diags[0].message.contains(
                "handle -> deep_solve -> core_step panics at crates/core/src/solver.rs:1"
            ),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn self_calls_to_an_owners_own_expect_are_not_sites() {
        let diags = run_on(
            "struct Parser { pos: usize }\n\
             impl Parser {\n\
                 fn expect(&mut self, byte: u8) -> Result<(), String> { Ok(()) }\n\
                 fn parse(&mut self, opt: Option<u8>) -> Result<(), String> {\n\
                     self.expect(b'{')?;\n\
                     opt.expect(\"still the std combinator\");\n\
                     Ok(())\n\
                 }\n\
             }",
            Vec::new(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 6, "{diags:?}");
    }

    #[test]
    fn stale_roots_are_config_diagnostics() {
        let diags = run_with(
            &[("crates/serve/src/x.rs", "fn ok() {}")],
            Vec::new(),
            vec!["crates/serve/src/x.rs::missing".to_string()],
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0]
            .message
            .contains("[panics] roots entry `crates/serve/src/x.rs::missing`"));
    }
}
