//! Pass 3: panic-discipline lint.
//!
//! Production code in the configured paths (the serving layer by default)
//! must not call `unwrap()`/`expect()` or invoke `panic!`/`unreachable!`:
//! a panic in a worker or connection thread silently removes capacity, and
//! every recoverable failure already has a structured `QuheError` kind with
//! a wire tag. Sites that are genuinely unreachable-or-corrupt (documented
//! startup panics, intrusive-LRU internal invariants) are exempted through
//! `[[allow.panic]]` entries in `analyze.toml` — each entry names the file,
//! a substring of the offending line, and a non-empty justification.

use crate::config::AnalyzeConfig;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// Runs the pass over all files.
pub fn run(files: &[SourceFile], config: &AnalyzeConfig, diags: &mut Vec<Diagnostic>) {
    let mut used = vec![false; config.panic_allow.len()];
    for (idx, entry) in config.panic_allow.iter().enumerate() {
        if entry.reason.trim().is_empty() {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!(
                    "[[allow.panic]] entry for `{}` (pattern `{}`) has an empty reason; \
                     every exemption needs a justification",
                    entry.file, entry.pattern
                ),
            ));
            used[idx] = true; // don't also report it as stale
        }
    }
    for file in files {
        if !config.panic_paths.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for item in &file.fns {
            if item.is_test {
                continue;
            }
            let Some((open, close)) = item.body else {
                continue;
            };
            check_body(file, open, close, config, &mut used, diags);
        }
    }
    for (idx, entry) in config.panic_allow.iter().enumerate() {
        if !used[idx] {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!(
                    "stale [[allow.panic]] entry: `{}` (pattern `{}`) matches no site",
                    entry.file, entry.pattern
                ),
            ));
        }
    }
}

fn check_body(
    file: &SourceFile,
    open: usize,
    close: usize,
    config: &AnalyzeConfig,
    used: &mut [bool],
    diags: &mut Vec<Diagnostic>,
) {
    let tokens = &file.tokens;
    let ident = |i: usize| tokens.get(i).and_then(|t| t.ident());
    let punct = |i: usize, c: char| tokens.get(i).is_some_and(|t| t.is_punct(c));
    let hi = close.min(tokens.len().saturating_sub(1));
    for (i, token) in tokens.iter().enumerate().take(hi + 1).skip(open) {
        let what = match &token.kind {
            TokenKind::Punct('.')
                if matches!(ident(i + 1), Some("unwrap" | "expect")) && punct(i + 2, '(') =>
            {
                ident(i + 1).map(|m| format!(".{m}()"))
            }
            TokenKind::Ident(name)
                if (name == "panic" || name == "unreachable") && punct(i + 1, '!') =>
            {
                Some(format!("{name}!"))
            }
            _ => None,
        };
        let Some(what) = what else { continue };
        let line = tokens[i].line;
        let text = file.line_text(line);
        let mut allowed = false;
        for (idx, entry) in config.panic_allow.iter().enumerate() {
            if entry.file == file.path && text.contains(&entry.pattern) {
                used[idx] = true;
                if !entry.reason.trim().is_empty() {
                    allowed = true;
                }
            }
        }
        if !allowed {
            diags.push(Diagnostic::new(
                &file.path,
                line,
                Lint::PanicDiscipline,
                format!(
                    "`{what}` on a production serve path; return a structured `QuheError` \
                     or add a justified [[allow.panic]] entry in analyze.toml"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PanicAllow;

    fn run_on(source: &str, allow: Vec<PanicAllow>) -> Vec<Diagnostic> {
        let file = SourceFile::parse("crates/serve/src/x.rs", source);
        let config = AnalyzeConfig {
            panic_paths: vec!["crates/serve/src".to_string()],
            panic_allow: allow,
            ..AnalyzeConfig::default()
        };
        let mut diags = Vec::new();
        run(std::slice::from_ref(&file), &config, &mut diags);
        diags
    }

    #[test]
    fn flags_unwrap_expect_panic_unreachable() {
        let diags = run_on(
            "fn f(x: Option<u32>) -> u32 {\n\
                 let a = x.unwrap();\n\
                 let b = x.expect(\"present\");\n\
                 if a > b { panic!(\"impossible\"); }\n\
                 unreachable!()\n\
             }",
            Vec::new(),
        );
        let whats: Vec<_> = diags
            .iter()
            .map(|d| d.message.split('`').nth(1).unwrap().to_string())
            .collect();
        assert_eq!(
            whats,
            vec![".unwrap()", ".expect()", "panic!", "unreachable!"]
        );
    }

    #[test]
    fn adapters_and_similar_names_are_not_flagged() {
        let diags = run_on(
            "fn f(x: Result<u32, u32>) -> u32 {\n\
                 x.unwrap_or_else(|e| e)\n\
             }\n\
             fn g(x: Result<u32, u32>) -> u32 { x.unwrap_or(0) }",
            Vec::new(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn justified_allowlist_entries_exempt_their_site() {
        let allow = vec![PanicAllow {
            file: "crates/serve/src/x.rs".to_string(),
            pattern: "expect(\"linked node\")".to_string(),
            reason: "intrusive-list invariant".to_string(),
        }];
        let diags = run_on(
            "fn f(x: Option<u32>) -> u32 { x.expect(\"linked node\") }",
            allow,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn empty_reason_and_stale_entries_are_config_diagnostics() {
        let allow = vec![
            PanicAllow {
                file: "crates/serve/src/x.rs".to_string(),
                pattern: "unwrap()".to_string(),
                reason: String::new(),
            },
            PanicAllow {
                file: "crates/serve/src/x.rs".to_string(),
                pattern: "never matches".to_string(),
                reason: "justified".to_string(),
            },
        ];
        let diags = run_on("fn f(x: Option<u32>) -> u32 { x.unwrap() }", allow);
        // Empty reason → config diagnostic AND the site still flagged;
        // unmatched pattern → stale-entry diagnostic.
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert!(diags.iter().any(|d| d.message.contains("empty reason")));
        assert!(diags.iter().any(|d| d.message.contains("stale")));
        assert!(diags.iter().any(|d| d.lint == Lint::PanicDiscipline));
    }

    #[test]
    fn test_code_is_exempt() {
        let diags = run_on(
            "#[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { Some(1).unwrap(); panic!(\"in tests this is fine\"); }\n\
             }",
            Vec::new(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
