//! Pass 4: pinned-contract lint.
//!
//! Two rules keep the workspace's compatibility surface honest:
//!
//! 1. **Pinned version strings have exactly one home.** Each string in the
//!    configured `pinned` list (`QUHE-SCN-v1`, `quhe-serve/v2`, …) must be
//!    defined by exactly one non-test `const`/`static` across the scanned
//!    sources, and must never be spelled as a literal anywhere else —
//!    including embedded inside a larger literal. Tests that deliberately
//!    pin wire bytes are exempt.
//! 2. **Deprecated shims are not load-bearing.** A function carrying
//!    `#[deprecated]` must not be called from non-test workspace code.
//!    Detection covers path-qualified calls (`Type::shim(...)`) and free
//!    calls (`shim(...)`); plain method-call syntax (`value.shim(...)`) is
//!    out of reach for a token-level scan and left to rustc's own
//!    deprecation warnings, which CI promotes to errors.

use std::collections::BTreeSet;

use crate::config::AnalyzeConfig;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// Runs the pass over all files.
pub fn run(files: &[SourceFile], config: &AnalyzeConfig, diags: &mut Vec<Diagnostic>) {
    check_pinned_strings(files, config, diags);
    check_deprecated_calls(files, diags);
}

fn check_pinned_strings(files: &[SourceFile], config: &AnalyzeConfig, diags: &mut Vec<Diagnostic>) {
    for pinned in &config.pinned {
        let mut definitions: Vec<(String, u32)> = Vec::new();
        let mut uses: Vec<(String, u32, bool)> = Vec::new(); // (file, line, embedded)
        for file in files {
            for (idx, token) in file.tokens.iter().enumerate() {
                let TokenKind::Str { value, .. } = &token.kind else {
                    continue;
                };
                if value == pinned {
                    if file.is_test_token(idx) {
                        continue;
                    }
                    if is_const_definition(file, idx) {
                        definitions.push((file.path.clone(), token.line));
                    } else {
                        uses.push((file.path.clone(), token.line, false));
                    }
                } else if value.contains(pinned.as_str()) && !file.is_test_token(idx) {
                    uses.push((file.path.clone(), token.line, true));
                }
            }
        }
        for (file, line, embedded) in uses {
            let how = if embedded {
                "embedded in a literal"
            } else {
                "spelled as a literal"
            };
            diags.push(Diagnostic::new(
                file,
                line,
                Lint::PinnedContract,
                format!("pinned string `{pinned}` {how}; reference its const instead"),
            ));
        }
        match definitions.len() {
            0 => diags.push(Diagnostic::new(
                "workspace",
                0,
                Lint::PinnedContract,
                format!("pinned string `{pinned}` has no const definition in the workspace"),
            )),
            1 => {}
            _ => {
                let (first_file, first_line) = definitions[0].clone();
                for (file, line) in &definitions[1..] {
                    diags.push(Diagnostic::new(
                        file,
                        *line,
                        Lint::PinnedContract,
                        format!(
                            "duplicate const definition of pinned string `{pinned}` \
                             (canonical definition is {first_file}:{first_line})"
                        ),
                    ));
                }
            }
        }
    }
}

/// Whether the string token at `idx` is the initializer of a `const` or
/// `static` item: scan backward to the start of the current statement/item
/// and look for the keyword.
fn is_const_definition(file: &SourceFile, idx: usize) -> bool {
    let tokens = &file.tokens;
    let mut j = idx;
    while j > 0 {
        match &tokens[j - 1].kind {
            TokenKind::Punct(';' | '{' | '}') => return false,
            TokenKind::Ident(name) if name == "const" || name == "static" => return true,
            _ => j -= 1,
        }
    }
    false
}

fn check_deprecated_calls(files: &[SourceFile], diags: &mut Vec<Diagnostic>) {
    // (owner, name) of every #[deprecated] fn in the workspace.
    let mut shims: BTreeSet<(Option<String>, String)> = BTreeSet::new();
    for file in files {
        for item in &file.fns {
            if item.is_deprecated && !item.is_test {
                shims.insert((item.owner.clone(), item.name.clone()));
            }
        }
    }
    if shims.is_empty() {
        return;
    }
    for file in files {
        for item in &file.fns {
            if item.is_test || item.allows_deprecated || item.is_deprecated {
                continue;
            }
            let Some((open, close)) = item.body else {
                continue;
            };
            check_calls(file, open, close, &shims, diags);
        }
    }
}

fn check_calls(
    file: &SourceFile,
    open: usize,
    close: usize,
    shims: &BTreeSet<(Option<String>, String)>,
    diags: &mut Vec<Diagnostic>,
) {
    let tokens = &file.tokens;
    let ident = |i: usize| tokens.get(i).and_then(|t| t.ident());
    let punct = |i: usize, c: char| tokens.get(i).is_some_and(|t| t.is_punct(c));
    let hi = close.min(tokens.len().saturating_sub(1));
    for (i, token) in tokens.iter().enumerate().take(hi + 1).skip(open) {
        let Some(name) = token.ident() else { continue };
        if !punct(i + 1, '(') {
            continue;
        }
        // Path-qualified call `Owner::name(...)`.
        if i >= 3 && punct(i - 1, ':') && punct(i - 2, ':') {
            if let Some(owner) = ident(i - 3) {
                if shims.contains(&(Some(owner.to_string()), name.to_string())) {
                    diags.push(Diagnostic::new(
                        &file.path,
                        tokens[i].line,
                        Lint::PinnedContract,
                        format!("call to deprecated shim `{owner}::{name}` from non-test code"),
                    ));
                }
            }
            continue;
        }
        // Free-function call `name(...)` — not a method, not a definition.
        let prev_blocks =
            i > 0 && (punct(i - 1, '.') || punct(i - 1, ':') || ident(i - 1) == Some("fn"));
        if !prev_blocks && shims.contains(&(None, name.to_string())) {
            diags.push(Diagnostic::new(
                &file.path,
                tokens[i].line,
                Lint::PinnedContract,
                format!("call to deprecated shim `{name}` from non-test code"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(sources: &[(&str, &str)], pinned: Vec<String>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| SourceFile::parse(*path, src))
            .collect();
        let config = AnalyzeConfig {
            pinned,
            ..AnalyzeConfig::default()
        };
        let mut diags = Vec::new();
        run(&files, &config, &mut diags);
        diags
    }

    fn pinned_only(sources: &[(&str, &str)], pin: &str) -> Vec<Diagnostic> {
        run_on(sources, vec![pin.to_string()])
            .into_iter()
            .filter(|d| d.message.contains(pin))
            .collect()
    }

    #[test]
    fn one_const_definition_and_const_references_are_clean() {
        let diags = pinned_only(
            &[
                ("a.rs", "pub const FMT: &str = \"fmt/v1\";"),
                ("b.rs", "fn f() -> &'static str { crate::FMT }"),
            ],
            "fmt/v1",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn literal_uses_and_embedded_literals_are_flagged() {
        let diags = pinned_only(
            &[
                ("a.rs", "pub const FMT: &str = \"fmt/v1\";"),
                (
                    "b.rs",
                    "fn f() { let x = \"fmt/v1\"; let y = \"schema: fmt/v1 here\"; }",
                ),
            ],
            "fmt/v1",
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("spelled as a literal"));
        assert!(diags[1].message.contains("embedded in a literal"));
    }

    #[test]
    fn missing_and_duplicate_definitions_are_flagged() {
        let missing = pinned_only(&[("a.rs", "fn f() {}")], "fmt/v1");
        assert_eq!(missing.len(), 1);
        assert!(missing[0].message.contains("no const definition"));
        assert_eq!(missing[0].file, "workspace");

        let dup = pinned_only(
            &[
                ("a.rs", "pub const FMT: &str = \"fmt/v1\";"),
                ("b.rs", "pub const ALSO: &str = \"fmt/v1\";"),
            ],
            "fmt/v1",
        );
        assert_eq!(dup.len(), 1);
        assert!(dup[0].message.contains("duplicate const definition"));
        assert_eq!(dup[0].file, "b.rs");
    }

    #[test]
    fn test_code_may_pin_literals() {
        let diags = pinned_only(
            &[(
                "a.rs",
                "pub const FMT: &str = \"fmt/v1\";\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                     #[test]\n\
                     fn stability() { assert_eq!(crate::FMT, \"fmt/v1\"); }\n\
                 }",
            )],
            "fmt/v1",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn deprecated_shim_calls_are_flagged_where_detectable() {
        let diags = run_on(
            &[
                (
                    "a.rs",
                    "#[deprecated(note = \"use solve_batch\")]\n\
                     pub fn olaa(x: u32) -> u32 { x }\n\
                     struct Algo;\n\
                     impl Algo {\n\
                         #[deprecated]\n\
                         pub fn solve(&self) -> u32 { 1 }\n\
                     }",
                ),
                (
                    "b.rs",
                    "fn qualified(a: &a::Algo) -> u32 { a::Algo::solve(a) }\n\
                     fn free() -> u32 { olaa(2) }\n\
                     #[allow(deprecated)]\n\
                     fn allowed() -> u32 { olaa(3) }\n\
                     fn unrelated(s: &MySolver) -> u32 { s.solve() }",
                ),
            ],
            Vec::new(),
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("`Algo::solve`"));
        assert!(diags[1].message.contains("`olaa`"));
    }
}
