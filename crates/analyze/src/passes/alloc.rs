//! Pass 1: hot-path allocation lint — direct and transitive.
//!
//! Functions marked `// quhe-analyze: hot-path` (or listed under
//! `[hot_path] functions` in `analyze.toml`) must not contain
//! allocation-shaped calls. This is the static half of the PR-7 fast-path
//! contract: the warm/cold solve inner loops reuse caller-owned workspaces,
//! and an allocation creeping into one shows up as a latency regression long
//! before anyone re-reads the code. A line can opt out with an explicit
//! `// quhe-analyze: allow(alloc)` comment on the line or the line above.
//!
//! The *transitive* half walks the workspace call graph from every hot-path
//! root: a helper the root can reach must be just as allocation-free as the
//! root itself, and a violation prints the full call chain
//! (`root -> helper -> callee allocates at file:line`) so the offending
//! path is obvious without re-deriving it by hand.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// The annotation exempting one line from this pass.
pub const ALLOW_MARK: &str = "quhe-analyze: allow(alloc)";

/// Runs the pass over all files.
pub fn run(
    files: &[SourceFile],
    config: &AnalyzeConfig,
    graph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let mut unused: BTreeSet<&str> = config.hot_functions.iter().map(String::as_str).collect();
    let mut roots: Vec<usize> = Vec::new();
    for (node_idx, node) in graph.nodes.iter().enumerate() {
        let item = &files[node.file_idx].fns[node.fn_idx];
        let listed = config.hot_functions.contains(&node.qualified());
        if listed {
            unused.remove(node.qualified().as_str());
        }
        if !item.is_test && (item.hot_path || listed) {
            roots.push(node_idx);
        }
    }

    // Direct findings: the roots themselves.
    for &node_idx in &roots {
        let node = &graph.nodes[node_idx];
        let file = &files[node.file_idx];
        let item = &file.fns[node.fn_idx];
        let Some((open, close)) = item.body else {
            continue;
        };
        let allowed = allowed_lines(file);
        for (line, what) in alloc_sites(file, open, close) {
            if allowed.contains(&line) {
                continue;
            }
            diags.push(Diagnostic::new(
                &file.path,
                line,
                Lint::HotPathAlloc,
                format!(
                    "allocation-shaped call `{what}` in hot-path function `{}` \
                     (annotate the line with `// {ALLOW_MARK}` if intended)",
                    item.name
                ),
            ));
        }
    }

    // Transitive findings: everything a root can reach that is not itself a
    // root (roots are direct-covered above).
    let root_set: BTreeSet<usize> = roots.iter().copied().collect();
    let parent = graph.reachable(&roots);
    for &node_idx in parent.keys() {
        if root_set.contains(&node_idx) {
            continue;
        }
        let node = &graph.nodes[node_idx];
        let file = &files[node.file_idx];
        let item = &file.fns[node.fn_idx];
        let Some((open, close)) = item.body else {
            continue;
        };
        let allowed = allowed_lines(file);
        for (line, what) in alloc_sites(file, open, close) {
            if allowed.contains(&line) {
                continue;
            }
            let chain = graph.chain(&parent, node_idx);
            let root = chain[0].clone();
            let rendered = chain.join(" -> ");
            diags.push(Diagnostic::with_chain(
                &file.path,
                line,
                Lint::HotPathAlloc,
                format!(
                    "hot path `{root}` reaches allocation-shaped call `{what}`: \
                     {rendered} allocates at {}:{line} \
                     (annotate the line with `// {ALLOW_MARK}` if intended)",
                    file.path
                ),
                chain,
            ));
        }
    }

    for entry in unused {
        diags.push(Diagnostic::new(
            "analyze.toml",
            0,
            Lint::Config,
            format!("[hot_path] entry `{entry}` matches no function in the workspace"),
        ));
    }
}

/// Lines covered by an `allow(alloc)` comment: the comment's own line (for
/// trailing comments) and the line after it (for a comment above the call).
fn allowed_lines(file: &SourceFile) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    for token in &file.tokens {
        if let TokenKind::LineComment(text) = &token.kind {
            if text.contains(ALLOW_MARK) {
                lines.insert(token.line);
                lines.insert(token.line + 1);
            }
        }
    }
    lines
}

/// Allocation-shaped call sites in the body token range, as
/// `(line, rendered call)` pairs. Allow comments are *not* applied here.
pub(crate) fn alloc_sites(file: &SourceFile, open: usize, close: usize) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    let ident = |i: usize| tokens.get(i).and_then(|t| t.ident());
    let punct = |i: usize, c: char| tokens.get(i).is_some_and(|t| t.is_punct(c));
    let hi = close.min(tokens.len().saturating_sub(1));
    let mut sites = Vec::new();
    for (i, token) in tokens.iter().enumerate().take(hi + 1).skip(open) {
        let what = match &token.kind {
            // `vec![...]` / `format!(...)` macro invocations.
            TokenKind::Ident(name) if (name == "vec" || name == "format") && punct(i + 1, '!') => {
                Some(format!("{name}!"))
            }
            // `Vec::new(`, `Box::new(`, `String::from(` constructor paths.
            TokenKind::Ident(name)
                if matches!(name.as_str(), "Vec" | "Box" | "String")
                    && punct(i + 1, ':')
                    && punct(i + 2, ':')
                    && punct(i + 4, '(') =>
            {
                let method = ident(i + 3);
                match (name.as_str(), method) {
                    ("Vec" | "Box", Some("new")) => Some(format!("{name}::new")),
                    ("String", Some("from")) => Some("String::from".to_string()),
                    _ => None,
                }
            }
            // `.clone()`, `.to_vec()`, `.collect()` / `.collect::<T>()`.
            TokenKind::Punct('.')
                if matches!(ident(i + 1), Some("clone" | "to_vec" | "collect"))
                    && (punct(i + 2, '(') || (punct(i + 2, ':') && punct(i + 3, ':'))) =>
            {
                ident(i + 1).map(|m| format!(".{m}()"))
            }
            _ => None,
        };
        if let Some(what) = what {
            sites.push((tokens[i].line, what));
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(source: &str, hot_functions: Vec<String>) -> Vec<Diagnostic> {
        run_on_files(&[("hot.rs", source)], hot_functions)
    }

    fn run_on_files(sources: &[(&str, &str)], hot_functions: Vec<String>) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| SourceFile::parse(*path, src))
            .collect();
        let config = AnalyzeConfig {
            hot_functions,
            ..AnalyzeConfig::default()
        };
        let graph = CallGraph::build(&files);
        let mut diags = Vec::new();
        run(&files, &config, &graph, &mut diags);
        crate::diag::sort(&mut diags);
        diags
    }

    #[test]
    fn flags_each_allocation_shape_in_annotated_fns() {
        let diags = run_on(
            "// quhe-analyze: hot-path\n\
             fn hot(xs: &[f64]) -> f64 {\n\
                 let v = Vec::new();\n\
                 let w = vec![1.0];\n\
                 let c = xs.to_vec();\n\
                 let d = w.clone();\n\
                 let e: Vec<f64> = xs.iter().copied().collect();\n\
                 let s = format!(\"{}\", d[0]);\n\
                 let b = Box::new(1.0);\n\
                 let t = String::from(\"x\");\n\
                 0.0\n\
             }",
            Vec::new(),
        );
        let kinds: Vec<_> = diags
            .iter()
            .map(|d| d.message.split('`').nth(1).unwrap().to_string())
            .collect();
        assert_eq!(
            kinds,
            vec![
                "Vec::new",
                "vec!",
                ".to_vec()",
                ".clone()",
                ".collect()",
                "format!",
                "Box::new",
                "String::from"
            ]
        );
    }

    #[test]
    fn allow_comment_exempts_same_line_and_next_line() {
        let diags = run_on(
            "// quhe-analyze: hot-path\n\
             fn hot() {\n\
                 let a = vec![1]; // quhe-analyze: allow(alloc)\n\
                 // quhe-analyze: allow(alloc)\n\
                 let b = a.clone();\n\
                 let c = b.clone();\n\
             }",
            Vec::new(),
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 6);
    }

    #[test]
    fn config_listing_and_stale_entries() {
        let diags = run_on(
            "fn listed() { let v = vec![1]; }\nfn clean() {}",
            vec!["hot.rs::listed".to_string(), "hot.rs::missing".to_string()],
        );
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().any(|d| d.lint == Lint::HotPathAlloc));
        assert!(diags
            .iter()
            .any(|d| d.lint == Lint::Config && d.message.contains("hot.rs::missing")));
    }

    #[test]
    fn unannotated_and_test_fns_are_exempt() {
        let diags = run_on(
            "fn cold() { let v = vec![1]; }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 // quhe-analyze: hot-path\n\
                 fn helper() { let v = vec![1]; }\n\
             }",
            Vec::new(),
        );
        assert!(diags.is_empty());
    }

    #[test]
    fn turbofish_collect_is_flagged() {
        let diags = run_on(
            "// quhe-analyze: hot-path\n\
             fn hot(xs: &[f64]) -> Vec<f64> { xs.iter().copied().collect::<Vec<f64>>() }",
            Vec::new(),
        );
        assert_eq!(diags.len(), 1);
    }

    #[test]
    fn transitive_findings_print_the_call_chain() {
        let diags = run_on(
            "// quhe-analyze: hot-path\n\
             fn hot(xs: &[f64]) -> f64 { middle(xs) }\n\
             fn middle(xs: &[f64]) -> f64 { leaf(xs) }\n\
             fn leaf(xs: &[f64]) -> f64 { xs.to_vec()[0] }",
            Vec::new(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4);
        assert_eq!(diags[0].chain, vec!["hot", "middle", "leaf"]);
        assert!(
            diags[0]
                .message
                .contains("hot -> middle -> leaf allocates at hot.rs:4"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn transitive_walk_respects_allow_comments_in_callees() {
        let diags = run_on(
            "// quhe-analyze: hot-path\n\
             fn hot() { helper(); }\n\
             fn helper() {\n\
                 // quhe-analyze: allow(alloc)\n\
                 let v = vec![1];\n\
                 let _ = v;\n\
             }",
            Vec::new(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unreachable_allocating_fns_stay_unflagged() {
        let diags = run_on(
            "// quhe-analyze: hot-path\n\
             fn hot() { helper(); }\n\
             fn helper() {}\n\
             fn elsewhere() { let v = vec![1]; }",
            Vec::new(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
