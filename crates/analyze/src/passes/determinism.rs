//! Pass 5: determinism lint.
//!
//! Every parity test in the workspace leans on bit-identity: cache hits
//! return the producing solve's report byte-for-byte, `QUHE-SCN-v1`
//! fingerprints must hash the same scenario to the same digest on every
//! host, and warm starts must re-derive the exact floor-guard comparisons.
//! Those contracts die quietly the moment a `HashMap` iteration order, a
//! wall-clock read, or an environment variable leaks into a value that
//! feeds them.
//!
//! This pass walks the call graph from the configured `[determinism] roots`
//! (fingerprint, cache and solver-kernel entry points) and flags every
//! reachable *nondeterminism source*:
//!
//! | source                 | why it breaks bit-identity                    |
//! |------------------------|-----------------------------------------------|
//! | `HashMap`/`HashSet` iteration (`.iter()`, `.keys()`, `.values()`, `for` over a map binding) | random per-process hash seed → random order |
//! | `Instant::now()` / `SystemTime::now()` | wall-clock values differ per run     |
//! | `thread::current()`    | thread identity depends on scheduling         |
//! | `env::var` family      | host environment leaks into output            |
//!
//! A site can opt out with `// quhe-analyze: allow(determinism)` on the
//! line or the line above — but only when `analyze.toml` carries a matching
//! `[[allow.determinism]]` entry with a non-empty justification. An allow
//! comment without its config entry, and a config entry matching no site,
//! are both diagnostics: exemptions cannot drift.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::config::AnalyzeConfig;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// The annotation exempting one line from this pass (when justified in
/// `analyze.toml`).
pub const ALLOW_MARK: &str = "quhe-analyze: allow(determinism)";

/// Map-iteration method names flagged on receivers bound to a map type.
const MAP_ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
];

/// Environment-reading functions under `env::`.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os"];

/// Runs the pass over all files.
pub fn run(
    files: &[SourceFile],
    config: &AnalyzeConfig,
    graph: &CallGraph,
    diags: &mut Vec<Diagnostic>,
) {
    let mut used = vec![false; config.determinism_allow.len()];
    for (idx, entry) in config.determinism_allow.iter().enumerate() {
        if entry.reason.trim().is_empty() {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!(
                    "[[allow.determinism]] entry for `{}` (pattern `{}`) has an empty reason; \
                     every exemption needs a justification",
                    entry.file, entry.pattern
                ),
            ));
            used[idx] = true; // don't also report it as stale
        }
    }

    let mut roots: Vec<usize> = Vec::new();
    for spec in &config.determinism_roots {
        let matched = graph.find_roots(spec);
        if matched.is_empty() {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!("[determinism] roots entry `{spec}` matches no function in the workspace"),
            ));
        }
        roots.extend(matched);
    }
    let parent = graph.reachable(&roots);
    for &node_idx in parent.keys() {
        let node = &graph.nodes[node_idx];
        let file = &files[node.file_idx];
        let item = &file.fns[node.fn_idx];
        let Some((open, close)) = item.body else {
            continue;
        };
        let allow_comments = allow_comment_lines(file);
        for (line, what) in nondeterminism_sites(file, item.decl, open, close) {
            let chain = graph.chain(&parent, node_idx);
            let root = chain[0].clone();
            let rendered = chain.join(" -> ");
            if allow_comments.contains(&line) {
                let text = file.line_text(line);
                let mut justified = false;
                for (idx, entry) in config.determinism_allow.iter().enumerate() {
                    if entry.file == file.path
                        && text.contains(&entry.pattern)
                        && !entry.reason.trim().is_empty()
                    {
                        used[idx] = true;
                        justified = true;
                    }
                }
                if justified {
                    continue;
                }
                diags.push(Diagnostic::with_chain(
                    &file.path,
                    line,
                    Lint::Determinism,
                    format!(
                        "`{what}` carries `// {ALLOW_MARK}` but no justifying \
                         [[allow.determinism]] entry in analyze.toml matches {}:{line}",
                        file.path
                    ),
                    chain,
                ));
                continue;
            }
            diags.push(Diagnostic::with_chain(
                &file.path,
                line,
                Lint::Determinism,
                format!(
                    "determinism root `{root}` reaches nondeterminism source `{what}`: \
                     {rendered} at {}:{line}; make it order- and host-independent, or \
                     annotate with `// {ALLOW_MARK}` plus a justified [[allow.determinism]] \
                     entry in analyze.toml",
                    file.path
                ),
                chain,
            ));
        }
    }

    for (idx, entry) in config.determinism_allow.iter().enumerate() {
        if !used[idx] {
            diags.push(Diagnostic::new(
                "analyze.toml",
                0,
                Lint::Config,
                format!(
                    "stale [[allow.determinism]] entry: `{}` (pattern `{}`) matches no site",
                    entry.file, entry.pattern
                ),
            ));
        }
    }
}

/// Lines covered by an `allow(determinism)` comment: the comment's own line
/// and the line after it.
fn allow_comment_lines(file: &SourceFile) -> BTreeSet<u32> {
    let mut lines = BTreeSet::new();
    for token in &file.tokens {
        if let TokenKind::LineComment(text) = &token.kind {
            if text.contains(ALLOW_MARK) {
                lines.insert(token.line);
                lines.insert(token.line + 1);
            }
        }
    }
    lines
}

/// Nondeterminism sites in one function, as `(line, rendered source)`
/// pairs. `decl` is the `fn` keyword token (the signature is scanned for
/// map-typed parameters), `(open, close)` the body range.
pub(crate) fn nondeterminism_sites(
    file: &SourceFile,
    decl: usize,
    open: usize,
    close: usize,
) -> Vec<(u32, String)> {
    let tokens = &file.tokens;
    let ident = |i: usize| tokens.get(i).and_then(|t| t.ident());
    let punct = |i: usize, c: char| tokens.get(i).is_some_and(|t| t.is_punct(c));
    let hi = close.min(tokens.len().saturating_sub(1));

    // Map-typed names bound in this function: parameters whose type names
    // `HashMap`/`HashSet`, and `let` bindings whose type annotation or
    // initializer does.
    let mut map_bindings: BTreeSet<String> = BTreeSet::new();
    // Parameters: `name: ... HashMap/HashSet ...` within the signature.
    let mut i = decl;
    while i < open {
        if let Some(name) = ident(i) {
            if punct(i + 1, ':') && !punct(i + 2, ':') {
                let mut j = i + 2;
                while j < open && !tokens[j].is_punct(',') {
                    if matches!(ident(j), Some("HashMap" | "HashSet")) {
                        map_bindings.insert(name.to_string());
                        break;
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
    // Let bindings: `let [mut] name [: T] = init;` where T or init names a
    // map type.
    let mut i = open;
    while i <= hi {
        if ident(i) == Some("let") {
            let mut j = i + 1;
            if ident(j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident(j) {
                let mut k = j + 1;
                let mut is_map = false;
                let mut depth = 0usize;
                while k <= hi {
                    match &tokens[k].kind {
                        TokenKind::Punct('(' | '[' | '{') => depth += 1,
                        TokenKind::Punct(')' | ']' | '}') => depth = depth.saturating_sub(1),
                        TokenKind::Punct(';') if depth == 0 => break,
                        TokenKind::Ident(t) if t == "HashMap" || t == "HashSet" => {
                            is_map = true;
                        }
                        _ => {}
                    }
                    k += 1;
                }
                if is_map {
                    map_bindings.insert(name.to_string());
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }

    let mut sites = Vec::new();
    for i in open..=hi {
        let line = tokens[i].line;
        match &tokens[i].kind {
            // `Instant::now(` / `SystemTime::now(` / `thread::current(`.
            TokenKind::Ident(name)
                if punct(i + 1, ':') && punct(i + 2, ':') && punct(i + 4, '(') =>
            {
                match (name.as_str(), ident(i + 3)) {
                    ("Instant", Some("now")) => sites.push((line, "Instant::now()".to_string())),
                    ("SystemTime", Some("now")) => {
                        sites.push((line, "SystemTime::now()".to_string()));
                    }
                    ("thread", Some("current")) => {
                        sites.push((line, "thread::current()".to_string()));
                    }
                    ("env", Some(read)) if ENV_READS.contains(&read) => {
                        sites.push((line, format!("env::{read}()")));
                    }
                    _ => {}
                }
            }
            // `map.iter()` / `.keys()` / `.values()` ... on a map binding.
            TokenKind::Punct('.')
                if i >= 1
                    && ident(i.wrapping_sub(1)).is_some_and(|recv| map_bindings.contains(recv))
                    && ident(i + 1).is_some_and(|m| MAP_ITER_METHODS.contains(&m))
                    && punct(i + 2, '(') =>
            {
                let recv = ident(i - 1).unwrap_or("");
                let method = ident(i + 1).unwrap_or("");
                sites.push((line, format!("{recv}.{method}()")));
            }
            // `for pat in [&[mut]] map {`.
            TokenKind::Ident(name) if name == "for" => {
                let mut j = i + 1;
                // Find the `in` at angle/paren depth 0 within the header.
                let mut depth = 0usize;
                while j <= hi {
                    match &tokens[j].kind {
                        TokenKind::Punct('(' | '[') => depth += 1,
                        TokenKind::Punct(')' | ']') => depth = depth.saturating_sub(1),
                        TokenKind::Punct('{') if depth == 0 => break,
                        TokenKind::Ident(kw) if kw == "in" && depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if ident(j) != Some("in") {
                    continue;
                }
                let mut k = j + 1;
                while tokens.get(k).is_some_and(|t| t.is_punct('&')) || ident(k) == Some("mut") {
                    k += 1;
                }
                if let Some(name) = ident(k) {
                    if map_bindings.contains(name) && punct(k + 1, '{') {
                        sites.push((tokens[k].line, format!("for _ in {name}")));
                    }
                }
            }
            _ => {}
        }
    }
    sites.sort();
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllowEntry;

    fn run_with(
        sources: &[(&str, &str)],
        roots: Vec<String>,
        allow: Vec<AllowEntry>,
    ) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| SourceFile::parse(*path, src))
            .collect();
        let config = AnalyzeConfig {
            determinism_roots: roots,
            determinism_allow: allow,
            ..AnalyzeConfig::default()
        };
        let graph = CallGraph::build(&files);
        let mut diags = Vec::new();
        run(&files, &config, &graph, &mut diags);
        crate::diag::sort(&mut diags);
        diags
    }

    fn run_on(source: &str) -> Vec<Diagnostic> {
        run_with(
            &[("a.rs", source)],
            vec!["a.rs::root".to_string()],
            Vec::new(),
        )
    }

    #[test]
    fn clock_thread_and_env_sources_are_flagged_with_chains() {
        let diags = run_on(
            "pub fn root() { helper(); }\n\
             fn helper() {\n\
                 let t = Instant::now();\n\
                 let s = SystemTime::now();\n\
                 let id = thread::current().id();\n\
                 let v = std::env::var(\"HOME\");\n\
             }",
        );
        let whats: Vec<_> = diags
            .iter()
            .map(|d| d.message.split('`').nth(3).unwrap().to_string())
            .collect();
        assert_eq!(
            whats,
            vec![
                "Instant::now()",
                "SystemTime::now()",
                "thread::current()",
                "env::var()"
            ]
        );
        assert!(diags
            .iter()
            .all(|d| d.chain == vec!["root".to_string(), "helper".to_string()]));
    }

    #[test]
    fn map_iteration_over_in_function_bindings_is_flagged() {
        let diags = run_on(
            "pub fn root(seen: &HashSet<u64>) {\n\
                 let mut index: HashMap<u64, u64> = HashMap::new();\n\
                 for key in seen { index.remove(key); }\n\
                 let ks: Vec<_> = index.keys().collect();\n\
                 let vs: Vec<_> = index.values().collect();\n\
                 let it = index.iter();\n\
             }",
        );
        let whats: Vec<_> = diags
            .iter()
            .map(|d| d.message.split('`').nth(3).unwrap().to_string())
            .collect();
        assert_eq!(
            whats,
            vec![
                "for _ in seen",
                "index.keys()",
                "index.values()",
                "index.iter()"
            ]
        );
    }

    #[test]
    fn vec_iteration_and_map_point_lookups_are_fine() {
        let diags = run_on(
            "pub fn root(xs: &[f64]) -> f64 {\n\
                 let mut map: HashMap<u64, f64> = HashMap::new();\n\
                 map.insert(1, 2.0);\n\
                 let hit = map.get(&1).copied().unwrap_or(0.0);\n\
                 let mut sum = hit;\n\
                 for x in xs { sum += x; }\n\
                 sum + xs.iter().sum::<f64>()\n\
             }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unreachable_sources_are_not_flagged() {
        let diags = run_on(
            "pub fn root() {}\n\
             fn elsewhere() { let t = Instant::now(); let _ = t; }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn justified_allow_comment_exempts_and_marks_the_entry_used() {
        let diags = run_with(
            &[(
                "a.rs",
                "pub fn root() {\n\
                     // quhe-analyze: allow(determinism)\n\
                     let t = Instant::now();\n\
                     let _ = t;\n\
                 }",
            )],
            vec!["a.rs::root".to_string()],
            vec![AllowEntry {
                file: "a.rs".to_string(),
                pattern: "Instant::now".to_string(),
                reason: "wall-clock telemetry only".to_string(),
            }],
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allow_comment_without_config_entry_is_flagged() {
        let diags = run_on(
            "pub fn root() {\n\
                 // quhe-analyze: allow(determinism)\n\
                 let t = Instant::now();\n\
                 let _ = t;\n\
             }",
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0]
                .message
                .contains("no justifying [[allow.determinism]] entry"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn stale_allow_entries_and_stale_roots_are_config_diagnostics() {
        let diags = run_with(
            &[("a.rs", "pub fn root() {}")],
            vec!["a.rs::root".to_string(), "a.rs::missing".to_string()],
            vec![AllowEntry {
                file: "a.rs".to_string(),
                pattern: "never matches".to_string(),
                reason: "justified".to_string(),
            }],
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags
            .iter()
            .any(|d| d.message.contains("stale [[allow.determinism]] entry")));
        assert!(diags.iter().any(|d| d
            .message
            .contains("[determinism] roots entry `a.rs::missing`")));
    }
}
