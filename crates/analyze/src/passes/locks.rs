//! Pass 2: lock-discipline lint.
//!
//! Builds an intraprocedural model of guard lifetimes from the `Mutex` /
//! `Condvar` acquisition sites in the configured paths, then enforces two
//! rules:
//!
//! 1. **No acquisition-order cycles.** Every `lock B while holding A` site
//!    contributes an `A → B` edge to a global graph; any edge on a cycle
//!    (including `A → A` re-acquisition) is a diagnostic. Lock identity is
//!    `file::receiver-path`, so ordering is tracked between the locks of one
//!    file — which is where the real pairs live (admission queue +
//!    connection-handle registry in `net.rs`, flight table + cache in the
//!    service) — and the graph itself is merged across the whole codebase.
//! 2. **No guard held across a blocking call.** While any guard is live,
//!    a `.join(...)`, `.recv(...)`/`.recv_timeout(...)` or `.solve*(...)`
//!    call is a diagnostic: these block for unbounded time and turn a
//!    short critical section into a server-wide stall. `Condvar::wait` is
//!    exempt — it releases the guard while parked.
//!
//! Acquisitions are `.lock()` method calls and calls to the repo's
//! poison-recovering `lock(...)` helpers. Guard lifetime follows the repo's
//! idiom: a `let` binding whose right-hand side is the acquisition (plus
//! `unwrap`/`expect`/`unwrap_or_else` adapters) lives to the end of the
//! enclosing block or an explicit `drop(guard)`; an acquisition in a
//! `for`/`if`/`while`/`match` header lives to the end of that statement's
//! body; any other acquisition is a temporary that dies at the statement's
//! `;`.

use std::collections::BTreeMap;

use crate::config::AnalyzeConfig;
use crate::diag::{Diagnostic, Lint};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// Runs the pass over all files.
pub fn run(files: &[SourceFile], config: &AnalyzeConfig, diags: &mut Vec<Diagnostic>) {
    // Edge (held → acquired) → first witness site.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for file in files {
        if !config.lock_paths.iter().any(|p| file.path.starts_with(p)) {
            continue;
        }
        for item in &file.fns {
            if item.is_test {
                continue;
            }
            if let Some((open, close)) = item.body {
                walk_body(file, open, close, &mut edges, diags);
            }
        }
    }
    report_cycles(&edges, diags);
}

/// A live guard inside one function body.
struct Guard {
    /// Lock identity: `file::receiver-path`.
    key: String,
    /// The `let` binding name, when bound (enables `drop(name)` release).
    name: Option<String>,
    /// Token index past which the guard is dead.
    release: usize,
}

fn walk_body(
    file: &SourceFile,
    open: usize,
    close: usize,
    edges: &mut BTreeMap<(String, String), (String, u32)>,
    diags: &mut Vec<Diagnostic>,
) {
    let tokens = &file.tokens;
    let ident = |i: usize| tokens.get(i).and_then(|t| t.ident());
    let punct = |i: usize, c: char| tokens.get(i).is_some_and(|t| t.is_punct(c));
    let mut held: Vec<Guard> = Vec::new();
    let mut i = open + 1;
    while i < close {
        held.retain(|g| g.release > i);
        // `drop(name)` releases the named guard early.
        if ident(i) == Some("drop") && punct(i + 1, '(') && punct(i + 3, ')') && !punct(i - 1, '.')
        {
            if let Some(name) = ident(i + 2) {
                held.retain(|g| g.name.as_deref() != Some(name));
            }
        }
        // A blocking call while any guard is live.
        if punct(i, '.') && punct(i + 2, '(') {
            if let Some(method) = ident(i + 1) {
                let blocking = method == "join"
                    || method == "recv"
                    || method == "recv_timeout"
                    || method.starts_with("solve");
                if blocking {
                    for guard in &held {
                        diags.push(Diagnostic::new(
                            &file.path,
                            tokens[i].line,
                            Lint::LockDiscipline,
                            format!(
                                "lock `{}` held across blocking call `.{method}(...)`",
                                guard.key
                            ),
                        ));
                    }
                }
            }
        }
        // A new acquisition.
        if let Some(acq) = acquisition_at(file, i) {
            for guard in &held {
                if guard.key == acq.key {
                    diags.push(Diagnostic::new(
                        &file.path,
                        tokens[i].line,
                        Lint::LockDiscipline,
                        format!("re-acquisition of `{}` while its guard is live", acq.key),
                    ));
                } else {
                    edges
                        .entry((guard.key.clone(), acq.key.clone()))
                        .or_insert_with(|| (file.path.clone(), tokens[i].line));
                }
            }
            let (name, release) = guard_extent(file, i, acq.start, acq.end, close);
            held.push(Guard {
                key: acq.key,
                name,
                release,
            });
            i = acq.end + 1;
            continue;
        }
        i += 1;
    }
}

/// An acquisition site: the token range of the lock expression and the lock's
/// identity key.
struct Acquisition {
    key: String,
    /// First token of the acquisition expression (receiver or helper name).
    start: usize,
    /// Last token of the acquisition call (its closing `)`).
    end: usize,
}

fn acquisition_at(file: &SourceFile, i: usize) -> Option<Acquisition> {
    let tokens = &file.tokens;
    let ident = |j: usize| tokens.get(j).and_then(|t| t.ident());
    let punct = |j: usize, c: char| tokens.get(j).is_some_and(|t| t.is_punct(c));
    // `receiver.lock()`
    if punct(i, '.') && ident(i + 1) == Some("lock") && punct(i + 2, '(') && punct(i + 3, ')') {
        let (path, start) = receiver_before(file, i);
        return Some(Acquisition {
            key: format!("{}::{}", file.path, path),
            start,
            end: i + 3,
        });
    }
    // A poison-recovering helper: `lock(&self.field)` — a call to a free
    // function named `lock` (not a method, not its own definition).
    if ident(i) == Some("lock")
        && punct(i + 1, '(')
        && i > 0
        && !punct(i - 1, '.')
        && !punct(i - 1, ':')
        && ident(i - 1) != Some("fn")
    {
        let mut depth = 0usize;
        let mut path_parts: Vec<&str> = Vec::new();
        let mut j = i + 1;
        while j < tokens.len() {
            match &tokens[j].kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(name) if name != "mut" && name != "self" => {
                    path_parts.push(name);
                }
                _ => {}
            }
            j += 1;
        }
        let path = if path_parts.is_empty() {
            "<expr>".to_string()
        } else {
            path_parts.join(".")
        };
        return Some(Acquisition {
            key: format!("{}::{}", file.path, path),
            start: i,
            end: j,
        });
    }
    None
}

/// The receiver path of a `.lock()` call: walks backward over the
/// `ident(.ident)*` chain ending at the `.` at index `i`, dropping a leading
/// `self`.
fn receiver_before(file: &SourceFile, i: usize) -> (String, usize) {
    let tokens = &file.tokens;
    let mut parts: Vec<&str> = Vec::new();
    let mut j = i;
    while j >= 1 {
        match &tokens[j - 1].kind {
            TokenKind::Ident(name) => {
                // Chain elements must be separated by `.`; stop otherwise.
                parts.push(name);
                j -= 1;
                if j >= 1 && tokens[j - 1].is_punct('.') {
                    j -= 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    if parts.first() == Some(&"self") {
        parts.remove(0);
    }
    let path = if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    };
    (path, j)
}

/// Decides how long the guard acquired at `acq_start..=acq_end` lives, and
/// under what name. Returns `(let-binding name, release token index)`.
fn guard_extent(
    file: &SourceFile,
    _site: usize,
    acq_start: usize,
    acq_end: usize,
    body_close: usize,
) -> (Option<String>, usize) {
    let tokens = &file.tokens;
    let ident = |j: usize| tokens.get(j).and_then(|t| t.ident());
    // Find the statement head: the token after the previous `;`, `{` or `}`.
    let mut stmt = acq_start;
    while stmt > 0 && !matches!(&tokens[stmt - 1].kind, TokenKind::Punct(';' | '{' | '}')) {
        stmt -= 1;
    }
    match ident(stmt) {
        Some("let") => {
            // Guard-binding form: `let [mut] name = <acquisition><adapters>;`
            // where the RHS starts at the acquisition and any trailing calls
            // are guard-preserving adapters.
            let mut k = stmt + 1;
            if ident(k) == Some("mut") {
                k += 1;
            }
            let name = ident(k).map(str::to_string);
            let eq = (k + 1..acq_start).find(|&j| tokens[j].is_punct('='));
            let rhs_is_acquisition = eq == Some(acq_start.saturating_sub(1))
                && adapters_only(file, acq_end + 1, body_close);
            if rhs_is_acquisition {
                (name, enclosing_block_close(file, acq_start, body_close))
            } else {
                (None, statement_end(file, acq_end, body_close))
            }
        }
        Some("for" | "if" | "while" | "match") => {
            // Header temporary: lives until the end of the statement's body.
            (None, header_body_close(file, acq_end, body_close))
        }
        _ => (None, statement_end(file, acq_end, body_close)),
    }
}

/// Whether everything from `from` to the statement's `;` is a chain of
/// guard-preserving adapters (`.unwrap()`, `.expect(..)`, `.unwrap_or_else(..)`).
fn adapters_only(file: &SourceFile, from: usize, body_close: usize) -> bool {
    let tokens = &file.tokens;
    let mut j = from;
    while j < body_close {
        match &tokens[j].kind {
            TokenKind::Punct(';') => return true,
            TokenKind::Punct('.') => {
                let Some(name) = tokens.get(j + 1).and_then(|t| t.ident()) else {
                    return false;
                };
                if !matches!(name, "unwrap" | "expect" | "unwrap_or_else") {
                    return false;
                }
                // Skip the adapter's argument list.
                let Some(open) = (j + 2..body_close).find(|&k| tokens[k].is_punct('(')) else {
                    return false;
                };
                let mut depth = 0usize;
                let mut k = open;
                while k < body_close {
                    match &tokens[k].kind {
                        TokenKind::Punct('(') => depth += 1,
                        TokenKind::Punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                j = k + 1;
            }
            _ => return false,
        }
    }
    true
}

/// The index of the `}` closing the block that encloses `from`.
fn enclosing_block_close(file: &SourceFile, from: usize, body_close: usize) -> usize {
    let tokens = &file.tokens;
    let mut depth = 0isize;
    let mut j = from;
    while j <= body_close {
        match &tokens[j].kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    body_close
}

/// The next `;` at group depth 0 after `from` — the end of the statement a
/// temporary guard dies at.
fn statement_end(file: &SourceFile, from: usize, body_close: usize) -> usize {
    let tokens = &file.tokens;
    let mut depth = 0isize;
    let mut j = from + 1;
    while j <= body_close {
        match &tokens[j].kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            // A closing group the acquisition was nested inside drops us back
            // to statement level, never below it.
            TokenKind::Punct(')' | ']') => depth = (depth - 1).max(0),
            TokenKind::Punct('}') => {
                if depth == 0 {
                    return j; // tail expression: the enclosing block ends it
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth == 0 => return j,
            _ => {}
        }
        j += 1;
    }
    body_close
}

/// For a `for`/`if`/`while`/`match` header acquisition: the `}` closing the
/// statement's body block.
fn header_body_close(file: &SourceFile, from: usize, body_close: usize) -> usize {
    let tokens = &file.tokens;
    let mut depth = 0isize;
    let mut j = from + 1;
    // Find the body `{` at group depth 0…
    while j <= body_close {
        match &tokens[j].kind {
            TokenKind::Punct('(' | '[') => depth += 1,
            TokenKind::Punct(')' | ']') => depth = (depth - 1).max(0),
            TokenKind::Punct('{') if depth == 0 => break,
            TokenKind::Punct(';') if depth == 0 => return j, // headless (e.g. `while …;`)
            _ => {}
        }
        j += 1;
    }
    // …then its matching `}`.
    let mut braces = 0isize;
    while j <= body_close {
        match &tokens[j].kind {
            TokenKind::Punct('{') => braces += 1,
            TokenKind::Punct('}') => {
                braces -= 1;
                if braces == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    body_close
}

/// Reports every edge that lies on an acquisition-order cycle.
fn report_cycles(edges: &BTreeMap<(String, String), (String, u32)>, diags: &mut Vec<Diagnostic>) {
    for ((held, acquired), (file, line)) in edges {
        if reaches(edges, acquired, held) {
            diags.push(Diagnostic::new(
                file,
                *line,
                Lint::LockDiscipline,
                format!(
                    "acquiring `{acquired}` while holding `{held}` completes a lock-order cycle"
                ),
            ));
        }
    }
}

/// Whether `from` reaches `to` in the acquisition graph.
fn reaches(edges: &BTreeMap<(String, String), (String, u32)>, from: &str, to: &str) -> bool {
    let mut stack = vec![from.to_string()];
    let mut seen = std::collections::BTreeSet::new();
    while let Some(node) = stack.pop() {
        if node == to {
            return true;
        }
        if !seen.insert(node.clone()) {
            continue;
        }
        for (held, acquired) in edges.keys() {
            if *held == node {
                stack.push(acquired.clone());
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, src)| SourceFile::parse(*path, src))
            .collect();
        let config = AnalyzeConfig {
            lock_paths: vec!["crates/".to_string()],
            ..AnalyzeConfig::default()
        };
        let mut diags = Vec::new();
        run(&files, &config, &mut diags);
        diags
    }

    #[test]
    fn guard_held_across_join_is_flagged() {
        let diags = run_on(&[(
            "crates/serve/src/x.rs",
            "fn shutdown(&self) {\n\
                 for handle in std::mem::take(&mut *lock(&self.handles)) {\n\
                     let _ = handle.join();\n\
                 }\n\
             }",
        )]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 3);
        assert!(diags[0]
            .message
            .contains("held across blocking call `.join(...)`"));
    }

    #[test]
    fn taking_the_handles_before_iterating_is_clean() {
        let diags = run_on(&[(
            "crates/serve/src/x.rs",
            "fn shutdown(&self) {\n\
                 let handles = std::mem::take(&mut *lock(&self.handles));\n\
                 for handle in handles {\n\
                     let _ = handle.join();\n\
                 }\n\
             }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn let_bound_guard_lives_to_block_end_and_drop_releases() {
        let flagged = run_on(&[(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n\
                 let mut q = self.queue.lock();\n\
                 q.push(1);\n\
                 self.engine.solve(2);\n\
             }",
        )]);
        assert_eq!(flagged.len(), 1);
        assert!(flagged[0].message.contains(".solve(...)"));

        let released = run_on(&[(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n\
                 let mut q = self.queue.lock();\n\
                 q.push(1);\n\
                 drop(q);\n\
                 self.engine.solve(2);\n\
             }",
        )]);
        assert!(released.is_empty(), "{released:?}");
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let diags = run_on(&[(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n\
                 self.queue.lock().push(1);\n\
                 self.engine.solve(2);\n\
             }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn deref_copy_binding_is_a_temporary_not_a_guard() {
        let diags = run_on(&[(
            "crates/serve/src/x.rs",
            "fn f(&self) -> u64 {\n\
                 let n = *lock(&self.counter);\n\
                 self.engine.solve(n);\n\
                 n\n\
             }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn lock_order_cycles_across_functions_are_flagged() {
        let diags = run_on(&[(
            "crates/serve/src/x.rs",
            "fn ab(&self) {\n\
                 let a = self.a.lock();\n\
                 let b = self.b.lock();\n\
             }\n\
             fn ba(&self) {\n\
                 let b = self.b.lock();\n\
                 let a = self.a.lock();\n\
             }",
        )]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.message.contains("lock-order cycle")));
    }

    #[test]
    fn consistent_nesting_order_is_clean_and_reacquisition_is_not() {
        let nested = run_on(&[(
            "crates/serve/src/x.rs",
            "fn ab(&self) {\n\
                 let a = self.a.lock();\n\
                 let b = self.b.lock();\n\
             }\n\
             fn ab_again(&self) {\n\
                 let a = self.a.lock();\n\
                 let b = self.b.lock();\n\
             }",
        )]);
        assert!(nested.is_empty(), "{nested:?}");

        let reacquired = run_on(&[(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n\
                 let a = self.a.lock();\n\
                 let b = self.a.lock();\n\
             }",
        )]);
        assert_eq!(reacquired.len(), 1);
        assert!(reacquired[0].message.contains("re-acquisition"));
    }

    #[test]
    fn condvar_wait_is_not_a_blocking_violation() {
        let diags = run_on(&[(
            "crates/serve/src/x.rs",
            "fn f(&self) {\n\
                 let mut q = lock(&self.queue);\n\
                 while q.is_empty() {\n\
                     q = self.cv.wait(q).unwrap_or_else(|e| e.into_inner());\n\
                 }\n\
             }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn files_outside_the_configured_paths_are_skipped() {
        let diags = run_on(&[(
            "benches/other.rs",
            "fn f(&self) {\n\
                 let g = self.a.lock();\n\
                 self.engine.solve(1);\n\
             }",
        )]);
        assert!(diags.is_empty());
    }
}
