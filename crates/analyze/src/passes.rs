//! The five lint passes.
//!
//! Each pass has the same shape: `run(files, config, ..., diags)` appends
//! [`crate::diag::Diagnostic`]s for every violation it finds. Passes never
//! mutate files and never depend on each other's output, so their order is
//! irrelevant; [`crate::analyze`] runs all five over one shared
//! [`crate::callgraph::CallGraph`] and sorts the result.

pub mod alloc;
pub mod contract;
pub mod determinism;
pub mod locks;
pub mod panics;
