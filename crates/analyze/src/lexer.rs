//! A lightweight Rust lexer: the token stream the lint passes walk.
//!
//! This is deliberately **not** a full Rust parser — the lints need exactly
//! what a token stream with line numbers gives them: identifiers, punctuation,
//! string-literal *values* (for the pinned-contract pass), and line comments
//! (for the `// quhe-analyze: ...` annotations). Everything that could
//! confuse a naive text scan is handled here once: nested block comments,
//! raw/byte strings, character literals vs. lifetimes, escapes.

/// What a token is. Keywords are plain [`TokenKind::Ident`]s — the scanner
/// matches them by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (raw identifiers lose their `r#` prefix).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// A string literal with its decoded relevance: `value` is the raw
    /// source text between the quotes (escapes are *not* resolved — the
    /// pinned strings contain no escapes, so source text equality is value
    /// equality for them).
    Str {
        /// The text between the delimiters, as written.
        value: String,
        /// `b"..."` / `br"..."` byte strings.
        byte: bool,
    },
    /// A character or byte literal (value irrelevant to every pass).
    Char,
    /// A numeric literal (value irrelevant to every pass).
    Num,
    /// A `//` line comment, with everything after the two slashes.
    LineComment(String),
}

/// One token with the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-indexed line of the token's first character.
    pub line: u32,
    /// The token itself.
    pub kind: TokenKind,
}

/// Tokenizes `source`. Unterminated constructs (a string running to end of
/// file) terminate the affected token at end of input instead of erroring —
/// the workspace's own sources compile, so this only matters for hostile
/// fixtures, where a best-effort stream is still the most useful output.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: u32, kind: TokenKind) {
        self.tokens.push(Token { line, kind });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, false),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line, true);
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line, true);
                }
                'r' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.raw_string(line, false);
                }
                'r' if self.peek(1) == Some('#') => {
                    // `r#"..."#` is a raw string, `r#ident` a raw identifier.
                    let mut ahead = 1;
                    while self.peek(ahead) == Some('#') {
                        ahead += 1;
                    }
                    if self.peek(ahead) == Some('"') {
                        self.bump();
                        self.raw_string(line, false);
                    } else {
                        self.bump();
                        self.bump();
                        self.ident(line);
                    }
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c => {
                    self.bump();
                    self.push(line, TokenKind::Punct(c));
                }
            }
        }
        self.tokens
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, TokenKind::LineComment(text));
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return,
            }
        }
    }

    /// A `"..."` string with escape handling; the opening quote is pending.
    fn string(&mut self, line: u32, byte: bool) {
        self.bump(); // the opening quote
        let mut value = String::new();
        while let Some(c) = self.bump() {
            match c {
                '"' => break,
                '\\' => {
                    value.push('\\');
                    if let Some(escaped) = self.bump() {
                        value.push(escaped);
                    }
                }
                c => value.push(c),
            }
        }
        self.push(line, TokenKind::Str { value, byte });
    }

    /// A raw string; the pending input starts at the `#`s or the quote.
    fn raw_string(&mut self, line: u32, byte: bool) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // the opening quote
        let mut value = String::new();
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                // A closing quote must be followed by `hashes` hashes.
                for ahead in 0..hashes {
                    if self.peek(ahead) != Some('#') {
                        value.push('"');
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
            value.push(c);
        }
        self.push(line, TokenKind::Str { value, byte });
    }

    /// Distinguishes `'a` (lifetime) from `'x'` / `'\n'` (char literal): a
    /// quote starting an identifier char that is not closed immediately
    /// after is a lifetime.
    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // the quote
        let first = self.peek(0);
        let is_lifetime =
            matches!(first, Some(c) if c.is_alphabetic() || c == '_') && self.peek(1) != Some('\'');
        if is_lifetime {
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(line, TokenKind::Lifetime(name));
            return;
        }
        // A char literal: consume (with escapes) through the closing quote.
        while let Some(c) = self.bump() {
            match c {
                '\'' => break,
                '\\' => {
                    self.bump();
                }
                _ => {}
            }
        }
        self.push(line, TokenKind::Char);
    }

    fn number(&mut self, line: u32) {
        // Integer/float bodies, suffixes and underscores all collapse into
        // one Num token; `1..n` ranges keep their dots as punctuation.
        while let Some(c) = self.peek(0) {
            let float_dot = c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit());
            if c.is_ascii_alphanumeric() || c == '_' || float_dot {
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokenKind::Num);
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, TokenKind::Ident(name));
    }
}

impl Token {
    /// The identifier name, when this token is one.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// Whether this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        lex(source).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let tokens = lex("fn main() {\n  x.lock();\n}");
        assert_eq!(tokens[0].kind, TokenKind::Ident("fn".to_string()));
        assert_eq!(tokens[0].line, 1);
        let lock = tokens.iter().find(|t| t.ident() == Some("lock")).unwrap();
        assert_eq!(lock.line, 2);
    }

    #[test]
    fn strings_carry_their_value_and_escape_quotes() {
        assert_eq!(
            kinds(r#"let s = "quhe-serve/v2";"#)[3],
            TokenKind::Str {
                value: "quhe-serve/v2".to_string(),
                byte: false
            }
        );
        assert_eq!(
            kinds(r#""a \" b""#)[0],
            TokenKind::Str {
                value: "a \\\" b".to_string(),
                byte: false
            }
        );
        assert_eq!(
            kinds(r##"r#"raw "inner" text"#"##)[0],
            TokenKind::Str {
                value: "raw \"inner\" text".to_string(),
                byte: false
            }
        );
        assert_eq!(
            kinds(r#"b"QUHE-SCN-v1""#)[0],
            TokenKind::Str {
                value: "QUHE-SCN-v1".to_string(),
                byte: true
            }
        );
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let tokens = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(tokens.contains(&TokenKind::Lifetime("a".to_string())));
        assert_eq!(tokens.iter().filter(|k| **k == TokenKind::Char).count(), 2);
    }

    #[test]
    fn comments_are_tokens_with_text_and_block_comments_nest() {
        let tokens = kinds("// quhe-analyze: hot-path\nfn f() {} /* a /* b */ c */ fn g() {}");
        assert_eq!(
            tokens[0],
            TokenKind::LineComment(" quhe-analyze: hot-path".to_string())
        );
        assert_eq!(
            tokens
                .iter()
                .filter(|k| matches!(k, TokenKind::Ident(n) if n == "fn"))
                .count(),
            2
        );
    }

    #[test]
    fn raw_identifiers_and_numbers() {
        let tokens = kinds("let r#type = 1_000.5e3; let range = 1..n;");
        assert!(tokens.contains(&TokenKind::Ident("type".to_string())));
        assert_eq!(
            tokens.iter().filter(|k| **k == TokenKind::Num).count(),
            2,
            "{tokens:?}"
        );
    }

    #[test]
    fn strings_containing_comment_markers_stay_strings() {
        let tokens = kinds(r#"let u = "https://example.com/*x*/"; y"#);
        assert!(tokens.contains(&TokenKind::Ident("y".to_string())));
        assert!(matches!(
            &tokens[3],
            TokenKind::Str { value, .. } if value.contains("//")
        ));
    }
}
