//! `quhe-analyze`: in-repo static analysis for the QuHE workspace.
//!
//! The stack rests on three conventions that rustc and clippy cannot check:
//! the no-allocation hot-path contract in the solver fast path, the lock
//! discipline of the serving layer, and the pinned protocol/format version
//! strings that gate wire and artifact compatibility. This crate enforces
//! them the way clippy gates style — a token-level scan of the workspace's
//! own sources (hand-rolled in the same offline spirit as
//! `quhe-core::json`), five lint passes over a whole-workspace call graph,
//! `file:line` diagnostics (transitive findings print their call chain) and
//! a non-zero exit code on any finding.
//!
//! Run it from the repository root:
//!
//! ```text
//! cargo run -p quhe-analyze -- --workspace
//! ```
//!
//! Configuration lives in `analyze.toml` at the workspace root (see
//! [`config::AnalyzeConfig`]); annotations live in the sources themselves
//! (`// quhe-analyze: hot-path`, `// quhe-analyze: allow(alloc)`).

pub mod callgraph;
pub mod config;
pub mod diag;
pub mod lexer;
pub mod passes;
pub mod scan;

use std::io;
use std::path::Path;

use callgraph::{CallGraph, GraphStats};
use config::AnalyzeConfig;
use diag::Diagnostic;
use scan::SourceFile;

/// Runs all five passes over the given files and returns the sorted
/// diagnostics.
pub fn analyze(files: &[SourceFile], config: &AnalyzeConfig) -> Vec<Diagnostic> {
    analyze_with_stats(files, config).0
}

/// [`analyze`], additionally returning the call-graph resolution counters
/// behind `--stats`.
pub fn analyze_with_stats(
    files: &[SourceFile],
    config: &AnalyzeConfig,
) -> (Vec<Diagnostic>, GraphStats) {
    let graph = CallGraph::build(files);
    let mut diags = Vec::new();
    passes::alloc::run(files, config, &graph, &mut diags);
    passes::locks::run(files, config, &mut diags);
    passes::panics::run(files, config, &graph, &mut diags);
    passes::contract::run(files, config, &mut diags);
    passes::determinism::run(files, config, &graph, &mut diags);
    diag::sort(&mut diags);
    (diags, graph.stats)
}

/// Collects the workspace's analyzable sources under `root`: every `.rs`
/// file in `crates/*/src/**` plus the top-level `examples/*.rs`. Integration
/// tests, benches, `target/` and `vendor/` are deliberately out of scope —
/// the lints govern production code, and tests are exempt by design.
/// Paths are workspace-relative with `/` separators, sorted for
/// deterministic output.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut rel_paths: Vec<String> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in std::fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let src = entry.path().join("src");
            if src.is_dir() {
                let crate_name = entry.file_name().to_string_lossy().into_owned();
                collect_rs_files(&src, &format!("crates/{crate_name}/src"), &mut rel_paths)?;
            }
        }
    }
    let examples = root.join("examples");
    if examples.is_dir() {
        for entry in std::fs::read_dir(&examples)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "rs") {
                if let Some(name) = path.file_name() {
                    rel_paths.push(format!("examples/{}", name.to_string_lossy()));
                }
            }
        }
    }
    rel_paths.sort();
    rel_paths
        .iter()
        .map(|rel| SourceFile::load(root, rel))
        .collect()
}

fn collect_rs_files(dir: &Path, rel: &str, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            collect_rs_files(&path, &format!("{rel}/{name}"), out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(format!("{rel}/{name}"));
        }
    }
    Ok(())
}

/// Locates the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table is found.
pub fn find_workspace_root(start: &Path) -> Option<std::path::PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
