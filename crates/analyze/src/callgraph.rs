//! The workspace call graph: who can call whom, resolved from the token
//! stream without type information.
//!
//! The graph is the substrate for the transitive passes — hot-path
//! allocation, panic discipline and determinism all walk reachability from
//! configured roots, so the contract a root promises ("never allocates",
//! "never panics", "bit-identical output") extends through every helper it
//! can reach instead of stopping at the function boundary.
//!
//! Resolution is heuristic and deliberately *over-approximates*:
//!
//! - `self.method(...)` and `Self::method(...)` resolve through the calling
//!   function's `impl` owner — precise.
//! - `Type::method(...)` resolves by `(owner, name)` — precise when the
//!   owner defines the method.
//! - `module::free_fn(...)` prefers free functions whose defining file
//!   matches the module path segment, then falls back to all free functions
//!   of that name.
//! - `receiver.method(...)` with an untyped receiver resolves to *every*
//!   workspace method of that name (trait calls dispatch to any impl), so a
//!   chain through a trait object is never missed. Method names that shadow
//!   ubiquitous std-collection methods (`len`, `insert`, `get`, ...) are
//!   exempt from this fallback — an edge from every `.get(` into an
//!   unrelated workspace `get` would drown the graph in noise.
//! - Call sites whose callee name exists nowhere in the workspace are
//!   *external* (std or vendored) and produce no edge.
//!
//! A call with more than one candidate keeps **all** candidate edges and is
//! counted as *unresolved* in [`GraphStats`]; `--stats` surfaces the
//! unresolved fraction so the precision of the heuristics is measurable and
//! CI can pin it.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// One function node in the graph, addressing back into the scanned files.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the defining file in the `files` slice the graph was built
    /// from.
    pub file_idx: usize,
    /// Index of the [`crate::scan::FnItem`] within that file.
    pub fn_idx: usize,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// The function name.
    pub name: String,
    /// The `impl` owner for methods.
    pub owner: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub line: u32,
    /// Whether the function is test code (excluded from reachability).
    pub is_test: bool,
}

impl FnNode {
    /// The display name used in call-chain diagnostics: `Owner::name` for
    /// methods, plain `name` for free functions.
    pub fn display(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// The qualified `<file>::<name>` form used by `analyze.toml` roots.
    pub fn qualified(&self) -> String {
        format!("{}::{}", self.file, self.name)
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Callee node index.
    pub to: usize,
    /// 1-indexed line of the call site in the caller's file.
    pub line: u32,
}

/// Call-site resolution counters; the denominator of the unresolved
/// fraction is the sites that produced at least one edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Non-test function nodes.
    pub functions: usize,
    /// Total resolved edges.
    pub edges: usize,
    /// Call sites examined (external ones included).
    pub call_sites: usize,
    /// Sites that resolved to exactly one candidate.
    pub resolved: usize,
    /// Sites kept with more than one candidate edge (over-approximated).
    pub unresolved: usize,
    /// Sites whose callee name is not defined anywhere in the workspace.
    pub external: usize,
}

impl GraphStats {
    /// `unresolved / (resolved + unresolved)`, `0.0` when no site produced
    /// an edge.
    pub fn unresolved_fraction(&self) -> f64 {
        let denominator = self.resolved + self.unresolved;
        if denominator == 0 {
            0.0
        } else {
            self.unresolved as f64 / denominator as f64
        }
    }
}

/// The whole-workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// All function nodes, ordered by (file, source order) — deterministic.
    pub nodes: Vec<FnNode>,
    /// Adjacency: `edges[i]` are the calls out of node `i`, in call-site
    /// order with duplicates (same callee, later line) removed.
    pub edges: Vec<Vec<Edge>>,
    /// Resolution counters.
    pub stats: GraphStats,
}

/// Dotted-call names that shadow ubiquitous std-collection/iterator methods:
/// an untyped `receiver.len()` is a std call for every receiver the
/// workspace actually has, so these never resolve through the
/// any-method-of-that-name fallback (self-receiver and `Type::`-qualified
/// calls still resolve precisely).
const STD_SHADOWED_METHODS: &[&str] = &[
    "clear",
    "clone",
    "cmp",
    "contains",
    "contains_key",
    "drain",
    "entry",
    "eq",
    "extend",
    "first",
    "fmt",
    "get",
    "get_mut",
    "hash",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "iter_mut",
    "keys",
    "last",
    "len",
    "next",
    "pop",
    "push",
    "remove",
    "retain",
    "values",
    "write_str",
];

/// Keywords that look like a call when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

/// How a call site names its callee.
enum Callee {
    /// `receiver.name(...)` — `self_receiver` when the receiver token is
    /// literally `self`.
    Method { name: String, self_receiver: bool },
    /// `Owner::name(...)` with a capitalized owner segment (`Self` counts).
    Qualified { owner: String, name: String },
    /// `module::name(...)` with a lowercase path segment.
    Path { module: String, name: String },
    /// Bare `name(...)`.
    Bare { name: String },
}

impl CallGraph {
    /// Builds the graph over the scanned files.
    pub fn build(files: &[SourceFile]) -> Self {
        let mut nodes = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            for (fn_idx, item) in file.fns.iter().enumerate() {
                nodes.push(FnNode {
                    file_idx,
                    fn_idx,
                    file: file.path.clone(),
                    name: item.name.clone(),
                    owner: item.owner.clone(),
                    line: item.line,
                    is_test: item.is_test,
                });
            }
        }

        // Name indexes over non-test nodes. Methods and free functions are
        // kept apart: a dotted call never targets a free function and a
        // bare call never targets a method.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_owner: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (idx, node) in nodes.iter().enumerate() {
            if node.is_test {
                continue;
            }
            match &node.owner {
                Some(owner) => {
                    methods.entry(&node.name).or_default().push(idx);
                    by_owner
                        .entry((owner.as_str(), node.name.as_str()))
                        .or_default()
                        .push(idx);
                }
                None => free_fns.entry(&node.name).or_default().push(idx),
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        let mut stats = GraphStats {
            functions: nodes.iter().filter(|n| !n.is_test).count(),
            ..GraphStats::default()
        };

        for (caller_idx, node) in nodes.iter().enumerate() {
            if node.is_test {
                continue;
            }
            let file = &files[node.file_idx];
            let item = &file.fns[node.fn_idx];
            let Some((open, close)) = item.body else {
                continue;
            };
            for site in call_sites(file, open, close) {
                stats.call_sites += 1;
                let candidates = resolve(
                    &site.callee,
                    node,
                    files,
                    &nodes,
                    &methods,
                    &by_owner,
                    &free_fns,
                );
                match candidates.len() {
                    0 => stats.external += 1,
                    1 => stats.resolved += 1,
                    _ => stats.unresolved += 1,
                }
                for to in candidates {
                    if edges[caller_idx].iter().all(|e| e.to != to) {
                        edges[caller_idx].push(Edge {
                            to,
                            line: site.line,
                        });
                    }
                }
            }
        }
        stats.edges = edges.iter().map(Vec::len).sum();
        CallGraph {
            nodes,
            edges,
            stats,
        }
    }

    /// Node indices matching a `"<file>::<name>"` root specification (every
    /// non-test overload of the name in that file matches).
    pub fn find_roots(&self, spec: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.is_test && n.qualified() == spec)
            .map(|(idx, _)| idx)
            .collect()
    }

    /// Breadth-first reachability from `roots`: for every reachable node,
    /// the predecessor on a shortest chain back to a root (`parent[i]` is
    /// `i` itself for roots). Test nodes are never entered.
    pub fn reachable(&self, roots: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let ordered: BTreeSet<usize> = roots.iter().copied().collect();
        for &root in &ordered {
            if !self.nodes[root].is_test {
                parent.insert(root, root);
                queue.push_back(root);
            }
        }
        while let Some(node) = queue.pop_front() {
            for edge in &self.edges[node] {
                if self.nodes[edge.to].is_test || parent.contains_key(&edge.to) {
                    continue;
                }
                parent.insert(edge.to, node);
                queue.push_back(edge.to);
            }
        }
        parent
    }

    /// The root-to-`node` call chain of display names implied by a
    /// [`CallGraph::reachable`] parent map.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, node: usize) -> Vec<String> {
        let mut chain = Vec::new();
        let mut cursor = node;
        loop {
            chain.push(self.nodes[cursor].display());
            let up = parent[&cursor];
            if up == cursor {
                break;
            }
            cursor = up;
        }
        chain.reverse();
        chain
    }
}

/// One syntactic call site inside a function body.
struct CallSite {
    line: u32,
    callee: Callee,
}

/// Extracts call sites from the body token range `(open, close)`.
fn call_sites(file: &SourceFile, open: usize, close: usize) -> Vec<CallSite> {
    let tokens = &file.tokens;
    let hi = close.min(tokens.len().saturating_sub(1));
    let mut sites = Vec::new();
    for i in open..=hi {
        let TokenKind::Ident(name) = &tokens[i].kind else {
            continue;
        };
        if NON_CALL_KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // The callee name must be followed by `(` directly or through a
        // `::<...>` turbofish.
        let after = i + 1;
        let is_call = if tokens.get(after).is_some_and(|t| t.is_punct('(')) {
            true
        } else if tokens.get(after).is_some_and(|t| t.is_punct(':'))
            && tokens.get(after + 1).is_some_and(|t| t.is_punct(':'))
            && tokens.get(after + 2).is_some_and(|t| t.is_punct('<'))
        {
            let past = skip_angles(tokens, after + 2);
            tokens.get(past).is_some_and(|t| t.is_punct('('))
        } else {
            false
        };
        if !is_call {
            continue;
        }
        // Classify by what precedes the name.
        let callee = if i >= 1 && tokens[i - 1].is_punct('.') {
            // `receiver.name(...)`: macro bang impossible here.
            let self_receiver = i >= 2 && tokens[i - 2].ident() == Some("self");
            Callee::Method {
                name: name.clone(),
                self_receiver,
            }
        } else if i >= 2 && tokens[i - 1].is_punct(':') && tokens[i - 2].is_punct(':') {
            match tokens.get(i.wrapping_sub(3)).and_then(|t| t.ident()) {
                Some(segment) if starts_upper(segment) || segment == "Self" => Callee::Qualified {
                    owner: segment.to_string(),
                    name: name.clone(),
                },
                Some(segment) => Callee::Path {
                    module: segment.to_string(),
                    name: name.clone(),
                },
                // `<Type as Trait>::name(...)` and friends: treat as an
                // untyped method call so trait over-approximation applies.
                None => Callee::Method {
                    name: name.clone(),
                    self_receiver: false,
                },
            }
        } else {
            // A bare call. Skip definitions (`fn name(`) and macro bangs
            // were already excluded; tuple-struct constructors are
            // capitalized and skipped here.
            if i >= 1 && tokens[i - 1].ident() == Some("fn") {
                continue;
            }
            if starts_upper(name) {
                continue;
            }
            Callee::Bare { name: name.clone() }
        };
        sites.push(CallSite {
            line: tokens[i].line,
            callee,
        });
    }
    sites
}

/// Resolves a callee to candidate node indices (empty = external).
fn resolve(
    callee: &Callee,
    caller: &FnNode,
    files: &[SourceFile],
    nodes: &[FnNode],
    methods: &BTreeMap<&str, Vec<usize>>,
    by_owner: &BTreeMap<(&str, &str), Vec<usize>>,
    free_fns: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    match callee {
        Callee::Method {
            name,
            self_receiver,
        } => {
            if *self_receiver {
                if let Some(owner) = &caller.owner {
                    if let Some(precise) = by_owner.get(&(owner.as_str(), name.as_str())) {
                        return precise.clone();
                    }
                }
            }
            if !*self_receiver && STD_SHADOWED_METHODS.contains(&name.as_str()) {
                return Vec::new();
            }
            methods.get(name.as_str()).cloned().unwrap_or_default()
        }
        Callee::Qualified { owner, name } => {
            let owner = if owner == "Self" {
                match &caller.owner {
                    Some(own) => own.as_str(),
                    None => return Vec::new(),
                }
            } else {
                owner.as_str()
            };
            by_owner
                .get(&(owner, name.as_str()))
                .cloned()
                .unwrap_or_default()
        }
        Callee::Path { module, name } => {
            let candidates = free_fns.get(name.as_str()).cloned().unwrap_or_default();
            let by_module: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&idx| file_matches_module(&files[nodes[idx].file_idx].path, module))
                .collect();
            if by_module.is_empty() {
                candidates
            } else {
                by_module
            }
        }
        Callee::Bare { name } => {
            let candidates = free_fns.get(name.as_str()).cloned().unwrap_or_default();
            // Prefer the caller's own file (the common unqualified call),
            // then fall back to every free function of that name.
            let same_file: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&idx| nodes[idx].file_idx == caller.file_idx)
                .collect();
            if same_file.is_empty() {
                candidates
            } else {
                same_file
            }
        }
    }
}

/// Whether a file path defines the module named by a call-path segment:
/// `.../<module>.rs` or `.../<module>/mod.rs` (and crate roots `lib.rs` /
/// `main.rs` match the segment `crate`).
fn file_matches_module(path: &str, module: &str) -> bool {
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|name| name.strip_suffix(".rs"))
        .unwrap_or("");
    if stem == module {
        return true;
    }
    if stem == "mod" || stem == "lib" || stem == "main" {
        let parent = path.rsplit('/').nth(1).unwrap_or("");
        return parent == module || ((stem == "lib" || stem == "main") && module == "crate");
    }
    false
}

fn starts_upper(name: &str) -> bool {
    name.chars().next().is_some_and(char::is_uppercase)
}

/// Skips a balanced `<...>` group starting at the `<` at `start`, returning
/// the index just past the matching `>`.
fn skip_angles(tokens: &[crate::lexer::Token], start: usize) -> usize {
    let mut depth = 0isize;
    let mut j = start;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') => {
                depth -= 1;
                if depth <= 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sources: &[(&str, &str)]) -> CallGraph {
        let files: Vec<SourceFile> = sources
            .iter()
            .map(|(path, source)| SourceFile::parse(*path, source))
            .collect();
        CallGraph::build(&files)
    }

    fn edge_names(g: &CallGraph, from: &str) -> Vec<String> {
        let idx = g.nodes.iter().position(|n| n.display() == from).unwrap();
        g.edges[idx]
            .iter()
            .map(|e| g.nodes[e.to].display())
            .collect()
    }

    #[test]
    fn bare_calls_prefer_the_same_file() {
        let g = graph(&[
            ("a.rs", "fn helper() {}\nfn caller() { helper(); }"),
            ("b.rs", "fn helper() {}"),
        ]);
        assert_eq!(edge_names(&g, "caller"), vec!["helper"]);
        let idx = g
            .nodes
            .iter()
            .position(|n| n.display() == "caller")
            .unwrap();
        assert_eq!(g.nodes[g.edges[idx][0].to].file, "a.rs");
        assert_eq!(g.stats.resolved, 1);
        assert_eq!(g.stats.unresolved, 0);
    }

    #[test]
    fn self_method_calls_resolve_through_the_impl_owner() {
        let g = graph(&[(
            "a.rs",
            "struct Foo;\n\
             struct Bar;\n\
             impl Foo { fn work(&self) {} fn run(&self) { self.work(); } }\n\
             impl Bar { fn work(&self) {} }",
        )]);
        assert_eq!(edge_names(&g, "Foo::run"), vec!["Foo::work"]);
        assert_eq!(g.stats.resolved, 1);
    }

    #[test]
    fn untyped_receivers_over_approximate_to_every_impl() {
        let g = graph(&[(
            "a.rs",
            "struct Foo;\n\
             struct Bar;\n\
             impl Foo { fn work(&self) {} }\n\
             impl Bar { fn work(&self) {} }\n\
             fn dispatch(x: &Foo) { x.work(); }",
        )]);
        assert_eq!(edge_names(&g, "dispatch"), vec!["Foo::work", "Bar::work"]);
        assert_eq!(g.stats.unresolved, 1);
    }

    #[test]
    fn std_shadowed_method_names_stay_external() {
        let g = graph(&[(
            "a.rs",
            "struct Cache;\n\
             impl Cache { fn len(&self) -> usize { 0 } }\n\
             fn count(xs: &[u32]) -> usize { xs.len() }",
        )]);
        assert_eq!(edge_names(&g, "count"), Vec::<String>::new());
        assert_eq!(g.stats.external, 1);
    }

    #[test]
    fn module_paths_disambiguate_shadowed_free_fns() {
        let g = graph(&[
            ("crates/x/src/alpha.rs", "pub fn run() {}"),
            ("crates/x/src/beta.rs", "pub fn run() {}"),
            (
                "crates/x/src/lib.rs",
                "fn main_loop() { alpha::run(); beta::run(); }",
            ),
        ]);
        let idx = g
            .nodes
            .iter()
            .position(|n| n.display() == "main_loop")
            .unwrap();
        let files: Vec<&str> = g.edges[idx]
            .iter()
            .map(|e| g.nodes[e.to].file.as_str())
            .collect();
        assert_eq!(files, vec!["crates/x/src/alpha.rs", "crates/x/src/beta.rs"]);
        assert_eq!(g.stats.resolved, 2);
    }

    #[test]
    fn turbofish_calls_and_qualified_owners() {
        let g = graph(&[(
            "a.rs",
            "struct Foo;\n\
             impl Foo { fn make() -> Foo { Foo } }\n\
             fn generic<T>() {}\n\
             fn caller() { let f = Foo::make(); generic::<u32>(); let _ = f; }",
        )]);
        assert_eq!(edge_names(&g, "caller"), vec!["Foo::make", "generic"]);
    }

    #[test]
    fn test_functions_are_excluded_from_nodes_and_reachability() {
        let g = graph(&[(
            "a.rs",
            "fn prod() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)]\n\
             mod tests { fn t() { super::helper(); } }",
        )]);
        assert_eq!(g.stats.functions, 2);
        let roots = g.find_roots("a.rs::prod");
        let parent = g.reachable(&roots);
        assert_eq!(parent.len(), 2);
        let helper = g
            .nodes
            .iter()
            .position(|n| n.display() == "helper")
            .unwrap();
        assert_eq!(g.chain(&parent, helper), vec!["prod", "helper"]);
    }
}
