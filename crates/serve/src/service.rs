//! The solve service: request resolution, cache consultation, warm-start
//! reuse and the response protocol.
//!
//! [`SolveService::handle`] processes one [`SolveRequest`] through a fixed
//! preference order:
//!
//! 1. **Exact hit** — the resolved scenario's full fingerprint, the solver
//!    name and the canonical spec key match a cached entry (with scenario
//!    equality verified): the cached [`SolveReport`] is returned
//!    bit-identically with zero solver work. The report keeps the
//!    `runtime_s` of the solve that produced it; the lookup's own wall goes
//!    to [`SolveResponse::service_wall_s`].
//! 2. **Warm near miss** — no exact hit, but a cached *anchor* (a cold
//!    multi-start solve) shares the scenario's shape fingerprint: the
//!    nearest such anchor by the pinned drift distance (see
//!    [`crate::cache`]) donates its optimum, and the
//!    request is solved [`SolveSpec::warm_from`] the anchor's optimum at the
//!    online engine's scale-aware tracking tolerance, then checked against
//!    the cold single-start floor of this exact scenario (the same fallback
//!    guarantee [`quhe_core::online::solve_online_with`] enforces per step).
//!    A warm solve that reaches the floor is returned as
//!    [`CacheOutcome::Warm`]; one that regresses triggers a full cold
//!    re-solve and the best of the three candidates is returned as
//!    [`CacheOutcome::WarmFallback`] — a response therefore never reports an
//!    objective below the single-start cold floor.
//! 3. **Cold** — no reusable state: the request is solved as specified and
//!    cached for future requests.
//!
//! [`SolveService::handle_batch`] shards a request stream across the scoped
//! worker pool; the cache is shared, so duplicates arriving on different
//! workers still collapse to one solve plus hits (modulo racing workers that
//! start the same scenario before either finishes — both results are
//! correct, and the cache keeps one).

use std::time::Instant;

use parking_lot::Mutex;
use quhe_core::error::{QuheError, QuheResult};
use quhe_core::fingerprint::Fingerprint;
use quhe_core::json::JsonValue;
use quhe_core::online::{prepare_warm_tracking, OnlineTraceConfig, SystemTrace};
use quhe_core::params::QuheConfig;
use quhe_core::registry::ScenarioCatalog;
use quhe_core::scenario::SystemScenario;
use quhe_core::solver::{SolveReport, SolveSpec, Solver, SolverRegistry, StartMode};
use quhe_mec::scenario::MecScenario;
use quhe_qkd::topology::synthetic_scenario;

use crate::cache::{CacheEntry, CacheStats, ScenarioCache};
use crate::coalesce::{FlightKey, FlightResult, Join, Singleflight};
use crate::request::{InlineScenario, ScenarioSpec, SolveRequest};
use crate::wire;

/// Per-step relative drift amplitude of the serve protocol's fixed drift
/// model (applied to both MEC channel gains and QKD key rates by
/// [`ScenarioSpec::Drifted`] resolution) — the gentle ±1 % regime of
/// `online_eval`.
pub const DRIFT_AMPLITUDE: f64 = 0.01;

/// Default number of cached reports ([`ServiceConfig::with_cache_capacity`]
/// overrides).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Default bound of the network front end's admission queue: requests past
/// this many pending are shed with an `overloaded` error envelope.
pub const DEFAULT_QUEUE_BOUND: usize = 64;

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Exact fingerprint hit: the cached report, bit-identical, zero solver
    /// work.
    Hit,
    /// Warm near miss: solved from a same-shape anchor's optimum and kept
    /// (met the single-start cold floor).
    Warm,
    /// Warm near miss that regressed: the best of the warm, floor and cold
    /// candidates.
    WarmFallback,
    /// Solved from scratch as requested.
    Cold,
    /// Coalesced onto an identical request already in flight: this request
    /// spent no solver work and received the leader's report bit-identically
    /// the moment the leader finished.
    Coalesced,
}

impl CacheOutcome {
    /// Stable machine-readable tag (the response JSON's `cache` field).
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm => "warm",
            CacheOutcome::WarmFallback => "warm_fallback",
            CacheOutcome::Cold => "cold",
            CacheOutcome::Coalesced => "coalesced",
        }
    }

    /// Parses a [`CacheOutcome::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "hit" => Some(CacheOutcome::Hit),
            "warm" => Some(CacheOutcome::Warm),
            "warm_fallback" => Some(CacheOutcome::WarmFallback),
            "cold" => Some(CacheOutcome::Cold),
            "coalesced" => Some(CacheOutcome::Coalesced),
            _ => None,
        }
    }
}

/// One solve response: the report plus the serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Echo of the request's correlation id.
    pub id: Option<String>,
    /// Registry name of the solver that answered.
    pub solver: String,
    /// How the response was produced.
    pub cache: CacheOutcome,
    /// Full content fingerprint of the resolved scenario.
    pub fingerprint: Fingerprint,
    /// Shape fingerprint of the resolved scenario.
    pub shape_fingerprint: Fingerprint,
    /// Wall-clock the *service* spent on this request — resolution, cache
    /// lookups, guard solves and solver work. Deliberately separate from
    /// [`SolveReport::runtime_s`], which always carries the wall time of the
    /// solve that produced the report: a cache hit reports the original
    /// solve's `runtime_s` next to a microsecond `service_wall_s`.
    pub service_wall_s: f64,
    /// Outer iterations spent on the serving path of *this* request: 0 for
    /// exact hits, the solve's iterations for cold responses, and the warm
    /// solve's plus any cold fallback's for warm-served responses — the
    /// same accounting as `OnlineStepRecord::outer_iterations`, so the true
    /// cost of a warm-served request (not just the kept report's) is
    /// visible.
    pub path_outer_iterations: usize,
    /// Outer iterations of the single-start floor guard (0 when no guard
    /// ran — hits, cold responses). Reported separately from the path, as
    /// in `OnlineStepRecord::guard_outer_iterations`: the guard is an
    /// independent solve a deployment can push onto an idle core.
    pub guard_outer_iterations: usize,
    /// The solve report (bit-identical to the cached one on exact hits).
    pub report: SolveReport,
}

fn malformed(detail: &str) -> QuheError {
    QuheError::InvalidConfig {
        reason: format!("malformed SolveResponse JSON: {detail}"),
    }
}

impl SolveResponse {
    /// Serializes to the response JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object()
            .with(
                "id",
                self.id
                    .as_ref()
                    .map_or(JsonValue::Null, |id| JsonValue::String(id.clone())),
            )
            .with("solver", JsonValue::String(self.solver.clone()))
            .with("cache", JsonValue::String(self.cache.tag().to_string()))
            .with("fingerprint", JsonValue::String(self.fingerprint.to_hex()))
            .with(
                "shape_fingerprint",
                JsonValue::String(self.shape_fingerprint.to_hex()),
            )
            .with("service_wall_s", JsonValue::from_f64(self.service_wall_s))
            .with(
                "path_outer_iterations",
                JsonValue::from_usize(self.path_outer_iterations),
            )
            .with(
                "guard_outer_iterations",
                JsonValue::from_usize(self.guard_outer_iterations),
            )
            .with("report", self.report.to_json_value())
    }

    /// Serializes to a pretty-printed JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty_string()
    }

    /// Deserializes from the response JSON object.
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] naming the first missing or malformed
    /// field.
    pub fn from_json_value(value: &JsonValue) -> QuheResult<Self> {
        let str_field = |key: &str| -> QuheResult<String> {
            Ok(value
                .get(key)
                .ok_or_else(|| malformed(&format!("missing field '{key}'")))?
                .as_str()
                .ok_or_else(|| malformed(&format!("field '{key}' must be a string")))?
                .to_string())
        };
        let fp_field = |key: &str| -> QuheResult<Fingerprint> {
            Fingerprint::from_hex(&str_field(key)?)
                .ok_or_else(|| malformed(&format!("field '{key}' must be 32 hex characters")))
        };
        let id = match value.get("id") {
            None | Some(JsonValue::Null) => None,
            Some(other) => Some(
                other
                    .as_str()
                    .ok_or_else(|| malformed("field 'id' must be a string or null"))?
                    .to_string(),
            ),
        };
        let cache = CacheOutcome::from_tag(&str_field("cache")?)
            .ok_or_else(|| malformed("unknown cache outcome"))?;
        let usize_field = |key: &str| -> QuheResult<usize> {
            value
                .get(key)
                .ok_or_else(|| malformed(&format!("missing field '{key}'")))?
                .as_usize()
                .ok_or_else(|| malformed(&format!("field '{key}' must be a non-negative integer")))
        };
        Ok(Self {
            id,
            solver: str_field("solver")?,
            cache,
            fingerprint: fp_field("fingerprint")?,
            shape_fingerprint: fp_field("shape_fingerprint")?,
            service_wall_s: value
                .get("service_wall_s")
                .ok_or_else(|| malformed("missing field 'service_wall_s'"))?
                .as_f64()
                .ok_or_else(|| malformed("field 'service_wall_s' must be a number"))?,
            path_outer_iterations: usize_field("path_outer_iterations")?,
            guard_outer_iterations: usize_field("guard_outer_iterations")?,
            report: SolveReport::from_json_value(
                value
                    .get("report")
                    .ok_or_else(|| malformed("missing field 'report'"))?,
            )?,
        })
    }

    /// Parses a response serialized with [`SolveResponse::to_json`].
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] for malformed JSON or a malformed
    /// response shape.
    pub fn from_json(text: &str) -> QuheResult<Self> {
        let value = JsonValue::parse(text).map_err(|e| QuheError::InvalidConfig {
            reason: format!("malformed SolveResponse JSON: {e}"),
        })?;
        Self::from_json_value(&value)
    }
}

/// Monotonic serving counters behind one lock, so a [`ServiceStats`]
/// snapshot is a consistent point in time even while workers are counting —
/// independently updated atomics could be observed torn (a request counted
/// in one counter but not yet in a related one).
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    exact_hits: usize,
    warm_hits: usize,
    warm_fallbacks: usize,
    cold_solves: usize,
    coalesced: usize,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered from the cache bit-identically.
    pub exact_hits: usize,
    /// Requests answered by an accepted warm solve.
    pub warm_hits: usize,
    /// Requests where the warm solve regressed and a fallback ran.
    pub warm_fallbacks: usize,
    /// Requests solved from scratch.
    pub cold_solves: usize,
    /// Requests coalesced onto an identical in-flight request (they spent no
    /// solver work and received the leader's report bit-identically).
    pub coalesced: usize,
    /// Reports currently cached. Read from the same cache-lock acquisition
    /// as [`ServiceStats::cache`], so it always equals `cache.entries`.
    pub cached_reports: usize,
    /// The cache's own telemetry (lookups, hits, evictions, anchor
    /// promotions…), taken as one consistent snapshot under the cache lock —
    /// the [`CacheStats`] invariants hold exactly, never just eventually.
    pub cache: CacheStats,
}

impl ServiceStats {
    /// Total requests served.
    pub fn total(&self) -> usize {
        self.exact_hits + self.warm_hits + self.warm_fallbacks + self.cold_solves + self.coalesced
    }
}

/// Configuration of a [`SolveService`] and the defaults its network front
/// end inherits — the one place to size the serving stack:
///
/// ```
/// use quhe_serve::service::ServiceConfig;
/// use quhe_core::params::QuheConfig;
///
/// let service = ServiceConfig::new(QuheConfig {
///     max_outer_iterations: 1,
///     max_stage3_iterations: 4,
///     solver_threads: 1,
///     ..QuheConfig::default()
/// })
/// .with_cache_capacity(256)
/// .with_worker_threads(2)
/// .with_queue_bound(32)
/// .build();
/// assert_eq!(service.cache().capacity(), 256);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    solver: QuheConfig,
    cache_capacity: usize,
    worker_threads: usize,
    queue_bound: usize,
    coalescing: bool,
    cache_snapshot: Option<JsonValue>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self::new(QuheConfig::default())
    }
}

impl ServiceConfig {
    /// A configuration with the given solver configuration and the service
    /// defaults: [`DEFAULT_CACHE_CAPACITY`], machine-sized workers,
    /// [`DEFAULT_QUEUE_BOUND`], coalescing on.
    pub fn new(solver: QuheConfig) -> Self {
        Self {
            solver,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            worker_threads: 0,
            queue_bound: DEFAULT_QUEUE_BOUND,
            coalescing: true,
            cache_snapshot: None,
        }
    }

    /// Sets the report-cache capacity (at least 1).
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the worker-thread count used by the network front end and as
    /// the default of batch serving (`0` sizes to the machine).
    #[must_use]
    pub fn with_worker_threads(mut self, threads: usize) -> Self {
        self.worker_threads = threads;
        self
    }

    /// Sets the admission-queue bound of the network front end: requests
    /// beyond this many pending are shed with an `overloaded` envelope.
    #[must_use]
    pub fn with_queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound.max(1);
        self
    }

    /// Enables or disables in-flight request coalescing (default on).
    #[must_use]
    pub fn with_coalescing(mut self, coalescing: bool) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Warms the cache at startup from a [`ScenarioCache::snapshot`] tree
    /// (e.g. one persisted to disk before a restart), so the service answers
    /// its previous working set as exact hits instead of cold solves. The
    /// snapshot is consumed when the service is built; entries beyond
    /// [`ServiceConfig::with_cache_capacity`] keep the most recently used
    /// tail. Use [`ServiceConfig::try_build`] /
    /// [`ServiceConfig::try_build_with`] to surface a rejected snapshot as
    /// an error instead of a panic.
    #[must_use]
    pub fn with_cache_snapshot(mut self, snapshot: JsonValue) -> Self {
        self.cache_snapshot = Some(snapshot);
        self
    }

    /// The solver configuration.
    pub fn solver(&self) -> &QuheConfig {
        &self.solver
    }

    /// The report-cache capacity.
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// The worker-thread count (`0` = machine-sized).
    pub fn worker_threads(&self) -> usize {
        self.worker_threads
    }

    /// The admission-queue bound.
    pub fn queue_bound(&self) -> usize {
        self.queue_bound
    }

    /// Whether in-flight request coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalescing
    }

    /// The startup cache snapshot, if one is pending
    /// ([`ServiceConfig::with_cache_snapshot`]); `None` after the service is
    /// built.
    pub fn cache_snapshot(&self) -> Option<&JsonValue> {
        self.cache_snapshot.as_ref()
    }

    /// Builds a service over the built-in solvers and catalogue.
    ///
    /// # Panics
    /// If a startup cache snapshot ([`ServiceConfig::with_cache_snapshot`])
    /// is malformed or fails its fingerprint verification — use
    /// [`ServiceConfig::try_build`] to handle that fallibly.
    pub fn build(self) -> SolveService {
        self.try_build()
            .unwrap_or_else(|e| panic!("startup cache snapshot rejected: {e}"))
    }

    /// Builds a service over an explicit registry and catalogue.
    ///
    /// # Panics
    /// As [`ServiceConfig::build`]; use [`ServiceConfig::try_build_with`]
    /// to handle a rejected snapshot fallibly.
    pub fn build_with(self, registry: SolverRegistry, catalog: ScenarioCatalog) -> SolveService {
        self.try_build_with(registry, catalog)
            .unwrap_or_else(|e| panic!("startup cache snapshot rejected: {e}"))
    }

    /// Fallible [`ServiceConfig::build`].
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] when the startup cache snapshot is
    /// malformed or fails its fingerprint verification.
    pub fn try_build(self) -> QuheResult<SolveService> {
        let registry = SolverRegistry::builtin_with(self.solver);
        self.try_build_with(registry, ScenarioCatalog::builtin())
    }

    /// Fallible [`ServiceConfig::build_with`].
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] when the startup cache snapshot is
    /// malformed or fails its fingerprint verification.
    pub fn try_build_with(
        mut self,
        registry: SolverRegistry,
        catalog: ScenarioCatalog,
    ) -> QuheResult<SolveService> {
        let cache = ScenarioCache::new(self.cache_capacity);
        if let Some(snapshot) = self.cache_snapshot.take() {
            cache.restore(&snapshot)?;
        }
        Ok(SolveService {
            registry,
            catalog,
            cache,
            counters: Mutex::new(Counters::default()),
            flights: Singleflight::new(),
            config: self,
        })
    }
}

/// A multi-worker solve service over a solver registry and a scenario
/// catalogue, with a shared content-addressed report cache and an in-flight
/// singleflight table. Built from a [`ServiceConfig`].
#[derive(Debug)]
pub struct SolveService {
    registry: SolverRegistry,
    catalog: ScenarioCatalog,
    cache: ScenarioCache,
    counters: Mutex<Counters>,
    flights: Singleflight,
    config: ServiceConfig,
}

impl SolveService {
    /// A service over an explicit registry and catalogue under the default
    /// [`ServiceConfig`] sizing.
    pub fn new(registry: SolverRegistry, catalog: ScenarioCatalog) -> Self {
        ServiceConfig::default().build_with(registry, catalog)
    }

    /// The built-in solvers and catalogue under a shared configuration.
    #[deprecated(
        since = "0.1.0",
        note = "use `ServiceConfig::new(config).build()` — the builder also \
                sizes the cache, workers, queue bound and coalescing"
    )]
    pub fn builtin(config: QuheConfig) -> Self {
        ServiceConfig::new(config).build()
    }

    /// Replaces the cache with one holding at most `capacity` reports.
    #[deprecated(
        since = "0.1.0",
        note = "use `ServiceConfig::with_cache_capacity` before building"
    )]
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ScenarioCache::new(capacity);
        self.config = self.config.with_cache_capacity(capacity);
        self
    }

    /// The solver registry.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The scenario catalogue.
    pub fn catalog(&self) -> &ScenarioCatalog {
        &self.catalog
    }

    /// The report cache.
    pub fn cache(&self) -> &ScenarioCache {
        &self.cache
    }

    /// The configuration this service was built from (the network front end
    /// reads its worker and queue sizing from here).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A snapshot of the serving counters and the cache's telemetry. The
    /// serving counters come from one lock acquisition and the cache block
    /// from one cache-lock acquisition, so each block is internally
    /// consistent — in particular `cached_reports` always equals
    /// `cache.entries` and the [`CacheStats`] invariants hold exactly
    /// (previously `cached_reports` was read under a separate lock and
    /// could disagree with the counters mid-burst).
    pub fn stats(&self) -> ServiceStats {
        let counters = *self.counters.lock();
        let cache = self.cache.stats();
        ServiceStats {
            exact_hits: counters.exact_hits,
            warm_hits: counters.warm_hits,
            warm_fallbacks: counters.warm_fallbacks,
            cold_solves: counters.cold_solves,
            coalesced: counters.coalesced,
            cached_reports: cache.entries,
            cache,
        }
    }

    fn count(&self, bump: impl FnOnce(&mut Counters)) {
        bump(&mut self.counters.lock());
    }

    /// Resolves a [`ScenarioSpec`] to a concrete scenario.
    ///
    /// # Errors
    /// Unknown catalogue names, invalid inline parameters and
    /// scenario-consistency failures.
    pub fn resolve_scenario(&self, spec: &ScenarioSpec) -> QuheResult<SystemScenario> {
        match spec {
            ScenarioSpec::Catalog { name, seed } => self.catalog.generate(name, *seed),
            ScenarioSpec::Drifted { name, seed, step } => {
                let config = OnlineTraceConfig {
                    drift_amplitude: DRIFT_AMPLITUDE,
                    key_rate_drift: DRIFT_AMPLITUDE,
                    ..OnlineTraceConfig::drift_only(*step)
                };
                let trace = SystemTrace::generate(&self.catalog, name, *seed, &config)?;
                let step = trace
                    .steps()
                    .last()
                    .ok_or_else(|| QuheError::InvalidConfig {
                        reason: format!("drifted scenario `{name}`: generated trace has no steps"),
                    })?;
                Ok(step.scenario.clone())
            }
            ScenarioSpec::Inline(inline) => resolve_inline(inline),
        }
    }

    /// Handles one request: resolve, consult the cache, solve as needed.
    ///
    /// # Errors
    /// Resolution failures, unknown solver names and solver errors.
    pub fn handle(&self, request: &SolveRequest) -> QuheResult<SolveResponse> {
        let wall = Instant::now();
        let scenario = self.resolve_scenario(&request.scenario)?;
        self.handle_resolved(
            request.id.clone(),
            &scenario,
            &request.solver,
            &request.spec,
            wall,
        )
    }

    /// Handles a request whose scenario is already resolved (the entry point
    /// tests and embedding callers use to serve concrete scenarios).
    ///
    /// # Errors
    /// Unknown solver names and solver errors.
    pub fn handle_scenario(
        &self,
        id: Option<String>,
        scenario: &SystemScenario,
        solver: &str,
        spec: &SolveSpec,
    ) -> QuheResult<SolveResponse> {
        self.handle_resolved(id, scenario, solver, spec, Instant::now())
    }

    fn handle_resolved(
        &self,
        id: Option<String>,
        scenario: &SystemScenario,
        solver_name: &str,
        spec: &SolveSpec,
        wall: Instant,
    ) -> QuheResult<SolveResponse> {
        // Resolve the solver name before anything else so an unknown name
        // fails fast without touching the flight table.
        self.registry.resolve(solver_name)?;
        let fingerprint = scenario.fingerprint();
        let spec_key = spec.to_json_value().to_compact_string();

        // Fast path: an exact hit needs no flight — the report already
        // exists, concurrent duplicates each read it bit-identically.
        if let Some(report) = self
            .cache
            .lookup_exact(fingerprint, scenario, solver_name, &spec_key)
        {
            self.count(|c| c.exact_hits += 1);
            return Ok(SolveResponse {
                id,
                solver: solver_name.to_string(),
                cache: CacheOutcome::Hit,
                fingerprint,
                shape_fingerprint: scenario.shape_fingerprint(),
                service_wall_s: wall.elapsed().as_secs_f64(),
                path_outer_iterations: 0,
                guard_outer_iterations: 0,
                report,
            });
        }

        if !self.config.coalescing() {
            return self.serve_slow(id, scenario, solver_name, spec, spec_key, wall);
        }

        // Singleflight: identical concurrent requests elect one leader; the
        // rest block on its flight and receive the report bit-identically.
        match self.flights.join(FlightKey {
            fingerprint: fingerprint.as_u128(),
            solver: solver_name.to_string(),
            spec_key: spec_key.clone(),
        }) {
            Join::Lead(token) => {
                let result = self.serve_slow(id, scenario, solver_name, spec, spec_key, wall);
                token.publish(match &result {
                    Ok(response) => Ok(FlightResult {
                        leader_outcome: response.cache,
                        fingerprint: response.fingerprint,
                        shape_fingerprint: response.shape_fingerprint,
                        report: response.report.clone(),
                    }),
                    Err(e) => Err(e.clone()),
                });
                result
            }
            Join::Coalesced(outcome) => {
                let flight = outcome?;
                self.count(|c| c.coalesced += 1);
                Ok(SolveResponse {
                    id,
                    solver: solver_name.to_string(),
                    cache: CacheOutcome::Coalesced,
                    fingerprint: flight.fingerprint,
                    shape_fingerprint: flight.shape_fingerprint,
                    // The wall includes the time spent blocked on the
                    // leader — that is what this request actually waited.
                    service_wall_s: wall.elapsed().as_secs_f64(),
                    // No solver work was spent on this request's behalf;
                    // the leader's own response carries the path bill.
                    path_outer_iterations: 0,
                    guard_outer_iterations: 0,
                    report: flight.report,
                })
            }
        }
    }

    /// The cache-miss path: warm near miss or cold solve. Runs at most once
    /// per in-flight key when coalescing is on (this is what the leader
    /// executes); re-checks the exact index first because a previous leader
    /// for the same key may have completed between this request's fast-path
    /// lookup and its flight-table join.
    fn serve_slow(
        &self,
        id: Option<String>,
        scenario: &SystemScenario,
        solver_name: &str,
        spec: &SolveSpec,
        spec_key: String,
        wall: Instant,
    ) -> QuheResult<SolveResponse> {
        let solver = self.registry.resolve(solver_name)?;
        let fingerprint = scenario.fingerprint();
        let shape_fingerprint = scenario.shape_fingerprint();

        let respond =
            |cache: CacheOutcome, report: SolveReport, path_iters: usize, guard_iters: usize| {
                SolveResponse {
                    id: id.clone(),
                    solver: solver_name.to_string(),
                    cache,
                    fingerprint,
                    shape_fingerprint,
                    service_wall_s: wall.elapsed().as_secs_f64(),
                    path_outer_iterations: path_iters,
                    guard_outer_iterations: guard_iters,
                    report,
                }
            };

        // 1. Exact hit (latecomer re-check, see above).
        if let Some(report) = self
            .cache
            .lookup_exact(fingerprint, scenario, solver_name, &spec_key)
        {
            self.count(|c| c.exact_hits += 1);
            return Ok(respond(CacheOutcome::Hit, report, 0, 0));
        }

        // 2. Warm near miss: only for plain cold requests to a warm-capable
        //    solver — single-start and explicit warm requests are served as
        //    written.
        if matches!(spec.start(), StartMode::Cold) && solver.supports_warm_start() {
            if let Some(anchor) = self
                .cache
                .lookup_anchor(shape_fingerprint, solver_name, scenario)
            {
                let (outcome, report, is_anchor, path_iters, guard_iters) =
                    self.solve_warm(solver, scenario, spec, &anchor)?;
                match outcome {
                    CacheOutcome::Warm => self.count(|c| c.warm_hits += 1),
                    _ => self.count(|c| c.warm_fallbacks += 1),
                };
                // Cache for exact reuse. Warm-path results anchor future
                // warm chains only when the kept report actually came from
                // the from-scratch cold multi-start fallback — a fresher
                // converged anchor than the one that just lost; warm and
                // floor winners never re-anchor.
                self.cache.insert(CacheEntry {
                    scenario: scenario.clone(),
                    fingerprint,
                    shape: shape_fingerprint,
                    solver: solver_name.to_string(),
                    spec_key,
                    report: report.clone(),
                    anchor: is_anchor && spec.multi_start(),
                });
                return Ok(respond(outcome, report, path_iters, guard_iters));
            }
        }

        // 3. Cold: solve as requested and cache.
        let report = solver.solve(scenario, spec)?;
        self.count(|c| c.cold_solves += 1);
        self.cache.insert(CacheEntry {
            scenario: scenario.clone(),
            fingerprint,
            shape: shape_fingerprint,
            solver: solver_name.to_string(),
            spec_key,
            report: report.clone(),
            // Only full cold multi-start solves anchor warm chains.
            anchor: matches!(spec.start(), StartMode::Cold) && spec.multi_start(),
        });
        let path_iters = report.outer_iterations;
        Ok(respond(CacheOutcome::Cold, report, path_iters, 0))
    }

    /// The warm near-miss path: warm solve at the tracking tolerance,
    /// single-start floor guard, cold fallback on regression. Mirrors the
    /// per-step logic of [`quhe_core::online::solve_online_with`]. Returns,
    /// alongside the outcome and kept report: whether the kept report is a
    /// from-scratch cold multi-start solve (eligible to anchor future warm
    /// chains), the outer iterations spent on the solve path (warm plus any
    /// fallback), and the floor guard's own iterations.
    fn solve_warm(
        &self,
        solver: &dyn Solver,
        scenario: &SystemScenario,
        spec: &SolveSpec,
        anchor: &CacheEntry,
    ) -> QuheResult<(CacheOutcome, SolveReport, bool, usize, usize)> {
        let config = spec.effective_config(solver.config());
        // One shared definition of warm-start semantics with the online
        // engine: scale-aware tracking tolerance, problem built under it,
        // delay bound re-tightened for this scenario.
        let (problem, warm_start) = prepare_warm_tracking(
            &config,
            scenario,
            anchor.report.objective,
            &anchor.report.variables,
        )?;
        let warm = solver.with_config(*problem.config()).solve_prepared(
            &problem,
            &SolveSpec::warm_from(warm_start).with_instrumentation(spec.instrumentation()),
        )?;

        // Floor guard: the cold single-start solve of this exact scenario
        // and configuration — the response must never fall below it.
        let floor = solver.with_config(config).solve(
            scenario,
            &SolveSpec::single_start().with_instrumentation(spec.instrumentation()),
        )?;

        let guard_iters = floor.outer_iterations;
        if warm.objective >= floor.objective {
            let path_iters = warm.outer_iterations;
            return Ok((CacheOutcome::Warm, warm, false, path_iters, guard_iters));
        }
        // The warm solve lost its basin: pay for the requested cold solve
        // and keep the best of the three candidates. The path bill covers
        // both solves, as in the online engine's fallback accounting.
        let cold = solver.solve(scenario, spec)?;
        let path_iters = warm.outer_iterations + cold.outer_iterations;
        let mut kept = warm;
        if floor.objective > kept.objective {
            kept = floor;
        }
        let cold_won = cold.objective > kept.objective;
        if cold_won {
            kept = cold;
        }
        Ok((
            CacheOutcome::WarmFallback,
            kept,
            cold_won,
            path_iters,
            guard_iters,
        ))
    }

    /// Handles a JSON request string, returning a JSON response string —
    /// never an `Err`: malformed requests and solver failures become an
    /// error envelope.
    ///
    /// The response shape follows the request's protocol version: a
    /// `quhe-serve/v2` body is answered with the v2 envelope (`ok`
    /// discriminator, stable `error.kind`), a legacy unversioned v1 body
    /// with the deprecated v1 shapes (the plain response object, or
    /// `{"id", "error": "<message>"}`), so existing callers keep working.
    /// See [`crate::wire`] for both shapes.
    pub fn handle_json(&self, text: &str) -> String {
        let (proto, id, request) = wire::parse_request(text);
        let request = match request {
            Ok(request) => request,
            Err(e) => return wire::error_envelope(proto, id.as_deref(), &e),
        };
        match self.handle(&request) {
            Ok(response) => wire::ok_envelope(proto, &response),
            Err(e) => wire::error_envelope(proto, request.id.as_deref(), &e),
        }
    }

    /// Handles a batch of requests concurrently on a scoped worker pool
    /// (`threads = 0` sizes the pool to the machine, `1` runs serially),
    /// returning responses in request order. All workers share the cache.
    pub fn handle_batch(
        &self,
        requests: &[SolveRequest],
        threads: usize,
    ) -> Vec<QuheResult<SolveResponse>> {
        threadpool::ThreadPool::new(threads).par_map(requests, |request| self.handle(request))
    }
}

fn resolve_inline(inline: &InlineScenario) -> QuheResult<SystemScenario> {
    // Overrides arrive on untrusted requests and the `with_*` builders
    // mutate without re-validating (their in-repo callers sweep known-good
    // grids), so the positivity checks `MecScenario::new` would enforce are
    // applied here — a bad value must come back as the error envelope, not
    // as a downstream panic.
    for (name, value) in [
        ("total_bandwidth_hz", inline.total_bandwidth_hz),
        (
            "total_server_frequency_hz",
            inline.total_server_frequency_hz,
        ),
        ("max_power_w", inline.max_power_w),
        ("max_client_frequency_hz", inline.max_client_frequency_hz),
    ] {
        if let Some(v) = value {
            if !(v > 0.0 && v.is_finite()) {
                return Err(QuheError::InvalidConfig {
                    reason: format!("inline {name} must be positive and finite, got {v}"),
                });
            }
        }
    }
    let mut mec = MecScenario::paper_with_num_clients(inline.num_clients, inline.seed);
    if let Some(bandwidth) = inline.total_bandwidth_hz {
        mec = mec.with_total_bandwidth(bandwidth);
    }
    if let Some(frequency) = inline.total_server_frequency_hz {
        mec = mec.with_total_server_frequency(frequency);
    }
    if let Some(power) = inline.max_power_w {
        mec = mec.with_max_power(power);
    }
    if let Some(frequency) = inline.max_client_frequency_hz {
        mec = mec.with_max_client_frequency(frequency);
    }
    let lambda_choices = inline
        .lambda_choices
        .clone()
        .unwrap_or_else(|| vec![1 << 15, 1 << 16, 1 << 17]);
    SystemScenario::new(
        synthetic_scenario(inline.num_clients, inline.seed),
        mec,
        lambda_choices,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> QuheConfig {
        QuheConfig {
            max_outer_iterations: 2,
            max_stage3_iterations: 8,
            solver_threads: 1,
            ..QuheConfig::default()
        }
    }

    fn quick_service() -> SolveService {
        ServiceConfig::new(quick_config()).build()
    }

    #[test]
    fn repeat_requests_hit_the_cache_bit_identically() {
        let service = quick_service();
        let request = SolveRequest::catalog("paper_default", 42).with_id("first");
        let cold = service.handle(&request).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Cold);

        let hit = service
            .handle(&SolveRequest::catalog("paper_default", 42).with_id("second"))
            .unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!(hit.id.as_deref(), Some("second"));
        // A hit spends zero solver work on its path; the cold response's
        // path bill is exactly its solve.
        assert_eq!(hit.path_outer_iterations, 0);
        assert_eq!(hit.guard_outer_iterations, 0);
        assert_eq!(cold.path_outer_iterations, cold.report.outer_iterations);
        assert_eq!(cold.guard_outer_iterations, 0);
        // Bit-identical: the whole report, including the original wall time.
        assert_eq!(hit.report, cold.report);
        assert_eq!(
            hit.report.runtime_s.to_bits(),
            cold.report.runtime_s.to_bits(),
            "a hit carries the producing solve's wall time"
        );
        let stats = service.stats();
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn different_spec_or_solver_is_not_an_exact_hit() {
        let service = quick_service();
        service
            .handle(&SolveRequest::catalog("paper_default", 1))
            .unwrap();
        let single = service
            .handle(&SolveRequest::catalog("paper_default", 1).with_spec(SolveSpec::single_start()))
            .unwrap();
        assert_ne!(single.cache, CacheOutcome::Hit);
        let aa = service
            .handle(&SolveRequest::catalog("paper_default", 1).with_solver("aa"))
            .unwrap();
        assert_eq!(aa.cache, CacheOutcome::Cold);
    }

    #[test]
    fn drifted_requests_warm_start_and_respect_the_floor() {
        let service = quick_service();
        let base = service
            .handle(&SolveRequest::catalog("paper_default", 42))
            .unwrap();
        assert_eq!(base.cache, CacheOutcome::Cold);

        let drifted_request = SolveRequest::drifted("paper_default", 42, 2);
        let scenario = service.resolve_scenario(&drifted_request.scenario).unwrap();
        assert_eq!(scenario.shape_fingerprint(), base.shape_fingerprint);
        assert_ne!(scenario.fingerprint(), base.fingerprint);

        let drifted = service.handle(&drifted_request).unwrap();
        assert!(
            matches!(
                drifted.cache,
                CacheOutcome::Warm | CacheOutcome::WarmFallback
            ),
            "drifted request served {:?}",
            drifted.cache
        );
        // Warm serving always runs the floor guard; a purely warm response
        // bills exactly its warm solve on the path.
        assert!(drifted.guard_outer_iterations >= 1);
        if drifted.cache == CacheOutcome::Warm {
            assert_eq!(
                drifted.path_outer_iterations,
                drifted.report.outer_iterations
            );
        }
        // The fallback guarantee: never below the cold single-start floor.
        let floor = service
            .registry()
            .resolve("quhe")
            .unwrap()
            .solve(&scenario, &SolveSpec::single_start())
            .unwrap();
        assert!(drifted.report.objective >= floor.objective);
        // And the drifted result was cached for exact reuse.
        let repeat = service.handle(&drifted_request).unwrap();
        assert_eq!(repeat.cache, CacheOutcome::Hit);
        assert_eq!(repeat.report, drifted.report);
    }

    #[test]
    fn one_shot_solvers_never_warm_start() {
        let service = quick_service();
        service
            .handle(&SolveRequest::catalog("paper_default", 7).with_solver("aa"))
            .unwrap();
        let drifted = service
            .handle(&SolveRequest::drifted("paper_default", 7, 1).with_solver("aa"))
            .unwrap();
        assert_eq!(drifted.cache, CacheOutcome::Cold);
    }

    #[test]
    fn inline_scenarios_resolve_with_overrides() {
        let service = quick_service();
        let request = SolveRequest {
            id: None,
            scenario: ScenarioSpec::Inline(InlineScenario {
                total_bandwidth_hz: Some(5e6),
                ..InlineScenario::new(4, 9)
            }),
            solver: "aa".to_string(),
            spec: SolveSpec::cold(),
        };
        let scenario = service.resolve_scenario(&request.scenario).unwrap();
        assert_eq!(scenario.num_clients(), 4);
        assert_eq!(scenario.mec().total_bandwidth_hz(), 5e6);
        let response = service.handle(&request).unwrap();
        assert_eq!(response.cache, CacheOutcome::Cold);
        assert!(response.report.objective.is_finite());
    }

    #[test]
    fn responses_round_trip_through_json() {
        let service = quick_service();
        let response = service
            .handle(&SolveRequest::catalog("paper_default", 3).with_id("rt"))
            .unwrap();
        let parsed = SolveResponse::from_json(&response.to_json()).unwrap();
        assert_eq!(parsed, response);
        assert_eq!(
            parsed.report.objective.to_bits(),
            response.report.objective.to_bits()
        );
    }

    #[test]
    fn handle_json_wraps_errors_in_an_envelope() {
        let service = quick_service();
        let ok = service.handle_json(
            "{\"id\": \"j1\", \"scenario\": {\"catalog\": \"paper_default\", \"seed\": 5}}",
        );
        let response = SolveResponse::from_json(&ok).unwrap();
        assert_eq!(response.id.as_deref(), Some("j1"));

        let bad = service.handle_json("{\"scenario\": {}}");
        let value = JsonValue::parse(&bad).unwrap();
        assert!(value
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("'catalog' or 'inline'"));

        let unknown = service.handle_json(
            "{\"id\": \"j2\", \"scenario\": {\"catalog\": \"atlantis\", \"seed\": 1}}",
        );
        let value = JsonValue::parse(&unknown).unwrap();
        assert_eq!(value.get("id").and_then(JsonValue::as_str), Some("j2"));
        assert!(value
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("atlantis"));

        // Hostile inline overrides come back as the envelope, never as a
        // panic: the unchecked `with_*` builders are guarded by the
        // service's own validation.
        for bad in [
            "{\"id\": \"j3\", \"scenario\": {\"inline\": {\"num_clients\": 2, \"seed\": 1, \
             \"total_bandwidth_hz\": -1.0}}}",
            "{\"id\": \"j4\", \"scenario\": {\"inline\": {\"num_clients\": 2, \"seed\": 1, \
             \"max_power_w\": 0.0}}}",
        ] {
            let value = JsonValue::parse(&service.handle_json(bad)).unwrap();
            assert!(
                value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .contains("must be positive and finite"),
                "{bad}"
            );
        }
    }

    #[test]
    fn deprecated_constructors_match_the_config_builder() {
        // The shims must stay behaviour-identical to the builder they
        // forward to: same cache capacity, same serving decisions.
        #[allow(deprecated)]
        let legacy = SolveService::builtin(quick_config()).with_cache_capacity(7);
        let modern = ServiceConfig::new(quick_config())
            .with_cache_capacity(7)
            .build();
        assert_eq!(legacy.cache().capacity(), 7);
        assert_eq!(legacy.config().cache_capacity(), 7);
        assert_eq!(legacy.config(), modern.config());

        let request = SolveRequest::catalog("paper_default", 11);
        let from_legacy = legacy.handle(&request).unwrap();
        let from_modern = modern.handle(&request).unwrap();
        assert_eq!(from_legacy.cache, CacheOutcome::Cold);
        assert_eq!(from_modern.cache, CacheOutcome::Cold);
        assert_eq!(
            from_legacy.report.objective.to_bits(),
            from_modern.report.objective.to_bits()
        );
        assert_eq!(from_legacy.report.variables, from_modern.report.variables);
    }

    #[test]
    fn concurrent_identical_cold_requests_coalesce_to_one_solve() {
        let service = std::sync::Arc::new(quick_service());
        let clients = 4;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(clients));
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let service = std::sync::Arc::clone(&service);
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    service
                        .handle(&SolveRequest::catalog("paper_default", 77).with_id(&i.to_string()))
                        .unwrap()
                })
            })
            .collect();
        let responses: Vec<SolveResponse> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let stats = service.stats();
        assert_eq!(
            stats.cold_solves, 1,
            "identical concurrent requests must trigger exactly one solve: {stats:?}"
        );
        assert_eq!(stats.total(), clients);
        // Every response carries the bit-identical report, whatever path
        // (leader, coalesced follower, or post-publication cache hit)
        // served it, and coalesced responses bill zero solver work.
        let reference = &responses[0].report;
        for response in &responses {
            assert_eq!(&response.report, reference);
            assert_eq!(
                response.report.runtime_s.to_bits(),
                reference.runtime_s.to_bits()
            );
            if response.cache == CacheOutcome::Coalesced {
                assert_eq!(response.path_outer_iterations, 0);
                assert_eq!(response.guard_outer_iterations, 0);
            }
        }
        // A later identical request is a plain cache hit, not a flight.
        let after = service
            .handle(&SolveRequest::catalog("paper_default", 77))
            .unwrap();
        assert_eq!(after.cache, CacheOutcome::Hit);
    }

    #[test]
    fn a_snapshot_restored_service_answers_its_working_set_as_hits() {
        let service = quick_service();
        let requests: Vec<SolveRequest> = (1..=3)
            .map(|seed| SolveRequest::catalog("paper_default", seed))
            .collect();
        let originals: Vec<SolveResponse> = requests
            .iter()
            .map(|r| service.handle(r).unwrap())
            .collect();
        assert!(originals.iter().all(|r| r.cache == CacheOutcome::Cold));

        // "Restart": a fresh service warmed from the snapshot answers the
        // same working set bit-identically with zero solver work.
        let snapshot = service.cache().snapshot();
        let restarted = ServiceConfig::new(quick_config())
            .with_cache_snapshot(snapshot)
            .build();
        assert_eq!(restarted.cache().len(), 3);
        assert!(restarted.config().cache_snapshot().is_none());
        for (request, original) in requests.iter().zip(&originals) {
            let replay = restarted.handle(request).unwrap();
            assert_eq!(replay.cache, CacheOutcome::Hit);
            assert_eq!(replay.report, original.report);
            assert_eq!(
                replay.report.runtime_s.to_bits(),
                original.report.runtime_s.to_bits()
            );
        }
        let stats = restarted.stats();
        assert_eq!(stats.cold_solves, 0);
        assert_eq!(stats.exact_hits, 3);

        // A rejected snapshot surfaces as an error through try_build.
        let err = ServiceConfig::new(quick_config())
            .with_cache_snapshot(JsonValue::object())
            .try_build()
            .unwrap_err();
        assert!(err.to_string().contains("snapshot"), "{err}");
    }

    #[test]
    fn stats_snapshots_are_never_torn() {
        // Regression: `cached_reports` used to be read under a different
        // lock than the cache counters, so a snapshot could show an entry
        // count that disagreed with the cache's own arithmetic mid-burst.
        // Hammer the service from several threads while polling stats: the
        // CacheStats invariants must hold on *every* snapshot.
        let service = std::sync::Arc::new(
            ServiceConfig::new(quick_config())
                .with_cache_capacity(4)
                .build(),
        );
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let workers: Vec<_> = (0..3u64)
            .map(|w| {
                let service = std::sync::Arc::clone(&service);
                std::thread::spawn(move || {
                    for seed in 0..8u64 {
                        service
                            .handle(&SolveRequest::catalog("paper_default", 100 * w + seed))
                            .unwrap();
                    }
                })
            })
            .collect();
        let poller = {
            let service = std::sync::Arc::clone(&service);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut polls = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let stats = service.stats();
                    let cache = stats.cache;
                    assert_eq!(stats.cached_reports, cache.entries, "{stats:?}");
                    assert_eq!(
                        cache.exact_hits + cache.exact_misses,
                        cache.exact_lookups(),
                        "{cache:?}"
                    );
                    assert_eq!(
                        cache.insertions - cache.evictions,
                        cache.entries as u64,
                        "{cache:?}"
                    );
                    assert!(cache.entries <= cache.capacity, "{cache:?}");
                    polls += 1;
                }
                polls
            })
        };
        for worker in workers {
            worker.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(poller.join().unwrap() > 0);
        let final_stats = service.stats();
        assert_eq!(final_stats.cached_reports, final_stats.cache.entries);
        assert!(final_stats.cache.entries <= 4);
    }

    #[test]
    fn coalescing_can_be_disabled() {
        let service = ServiceConfig::new(quick_config())
            .with_coalescing(false)
            .build();
        assert!(!service.config().coalescing());
        let response = service
            .handle(&SolveRequest::catalog("paper_default", 3))
            .unwrap();
        assert_eq!(response.cache, CacheOutcome::Cold);
        assert_eq!(service.stats().coalesced, 0);
    }

    #[test]
    fn v2_bodies_are_answered_with_the_v2_envelope() {
        let service = quick_service();
        let ok = service.handle_json(
            "{\"proto\": \"quhe-serve/v2\", \"id\": \"w1\", \
             \"scenario\": {\"catalog\": \"paper_default\", \"seed\": 5}}",
        );
        let value = JsonValue::parse(&ok).unwrap();
        assert_eq!(
            value.get("proto").and_then(JsonValue::as_str),
            Some("quhe-serve/v2")
        );
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(true));
        let response = SolveResponse::from_json_value(value.get("result").unwrap()).unwrap();
        assert_eq!(response.id.as_deref(), Some("w1"));

        let bad = service.handle_json(
            "{\"proto\": \"quhe-serve/v2\", \"id\": \"w2\", \
             \"scenario\": {\"catalog\": \"paper_default\", \"seed\": 1}, \
             \"solver\": \"atlantis\"}",
        );
        let value = JsonValue::parse(&bad).unwrap();
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(value.get("id").and_then(JsonValue::as_str), Some("w2"));
        let error = value.get("error").unwrap();
        assert_eq!(
            error.get("kind").and_then(JsonValue::as_str),
            Some("invalid_request")
        );
        assert!(error
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("atlantis"));

        // Scenario-domain failures keep their own stable kind.
        let unknown_world = service.handle_json(
            "{\"proto\": \"quhe-serve/v2\", \"id\": \"w3\", \
             \"scenario\": {\"catalog\": \"atlantis\", \"seed\": 1}}",
        );
        let value = JsonValue::parse(&unknown_world).unwrap();
        assert_eq!(value.get("ok").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(JsonValue::as_str),
            Some("mec")
        );
    }

    #[test]
    fn batch_serving_matches_serial_and_dedupes() {
        let service = quick_service();
        // Warm the cache serially, then replay duplicates concurrently:
        // every one must be an exact hit, bit-identical to the original
        // (duplicates racing ahead of any cached original would instead
        // each solve cold — correct, just unde-duplicated).
        let first = service
            .handle(&SolveRequest::catalog("paper_default", 1))
            .unwrap();
        let duplicates: Vec<SolveRequest> = (0..4)
            .map(|_| SolveRequest::catalog("paper_default", 1))
            .collect();
        for response in service.handle_batch(&duplicates, 2) {
            let response = response.unwrap();
            assert_eq!(response.cache, CacheOutcome::Hit);
            assert_eq!(response.report, first.report);
        }

        // A cold batch produces the same solutions as a fresh serial
        // service (wall clocks differ; the solutions must not).
        let requests = [
            SolveRequest::catalog("far_edge", 1),
            SolveRequest::catalog("far_edge", 2),
        ];
        let parallel = service.handle_batch(&requests, 2);
        let serial = quick_service();
        for (request, parallel_response) in requests.iter().zip(parallel) {
            let parallel_response = parallel_response.unwrap();
            let response = serial.handle(request).unwrap();
            assert_eq!(
                response.report.objective,
                parallel_response.report.objective
            );
            assert_eq!(
                response.report.variables,
                parallel_response.report.variables
            );
        }
    }
}
