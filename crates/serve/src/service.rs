//! The solve service: request resolution, cache consultation, warm-start
//! reuse and the response protocol.
//!
//! [`SolveService::handle`] processes one [`SolveRequest`] through a fixed
//! preference order:
//!
//! 1. **Exact hit** — the resolved scenario's full fingerprint, the solver
//!    name and the canonical spec key match a cached entry (with scenario
//!    equality verified): the cached [`SolveReport`] is returned
//!    bit-identically with zero solver work. The report keeps the
//!    `runtime_s` of the solve that produced it; the lookup's own wall goes
//!    to [`SolveResponse::service_wall_s`].
//! 2. **Warm near miss** — no exact hit, but a cached *anchor* (a cold
//!    multi-start solve) shares the scenario's shape fingerprint: the
//!    request is solved [`SolveSpec::warm_from`] the anchor's optimum at the
//!    online engine's scale-aware tracking tolerance, then checked against
//!    the cold single-start floor of this exact scenario (the same fallback
//!    guarantee [`quhe_core::online::solve_online_with`] enforces per step).
//!    A warm solve that reaches the floor is returned as
//!    [`CacheOutcome::Warm`]; one that regresses triggers a full cold
//!    re-solve and the best of the three candidates is returned as
//!    [`CacheOutcome::WarmFallback`] — a response therefore never reports an
//!    objective below the single-start cold floor.
//! 3. **Cold** — no reusable state: the request is solved as specified and
//!    cached for future requests.
//!
//! [`SolveService::handle_batch`] shards a request stream across the scoped
//! worker pool; the cache is shared, so duplicates arriving on different
//! workers still collapse to one solve plus hits (modulo racing workers that
//! start the same scenario before either finishes — both results are
//! correct, and the cache keeps one).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use quhe_core::error::{QuheError, QuheResult};
use quhe_core::fingerprint::Fingerprint;
use quhe_core::json::JsonValue;
use quhe_core::online::{prepare_warm_tracking, OnlineTraceConfig, SystemTrace};
use quhe_core::params::QuheConfig;
use quhe_core::registry::ScenarioCatalog;
use quhe_core::scenario::SystemScenario;
use quhe_core::solver::{SolveReport, SolveSpec, Solver, SolverRegistry, StartMode};
use quhe_mec::scenario::MecScenario;
use quhe_qkd::topology::synthetic_scenario;

use crate::cache::{CacheEntry, ScenarioCache};
use crate::request::{InlineScenario, ScenarioSpec, SolveRequest};

/// Per-step relative drift amplitude of the serve protocol's fixed drift
/// model (applied to both MEC channel gains and QKD key rates by
/// [`ScenarioSpec::Drifted`] resolution) — the gentle ±1 % regime of
/// `online_eval`.
pub const DRIFT_AMPLITUDE: f64 = 0.01;

/// Default number of cached reports ([`SolveService::with_cache_capacity`]
/// overrides).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Exact fingerprint hit: the cached report, bit-identical, zero solver
    /// work.
    Hit,
    /// Warm near miss: solved from a same-shape anchor's optimum and kept
    /// (met the single-start cold floor).
    Warm,
    /// Warm near miss that regressed: the best of the warm, floor and cold
    /// candidates.
    WarmFallback,
    /// Solved from scratch as requested.
    Cold,
}

impl CacheOutcome {
    /// Stable machine-readable tag (the response JSON's `cache` field).
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Warm => "warm",
            CacheOutcome::WarmFallback => "warm_fallback",
            CacheOutcome::Cold => "cold",
        }
    }

    /// Parses a [`CacheOutcome::tag`].
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "hit" => Some(CacheOutcome::Hit),
            "warm" => Some(CacheOutcome::Warm),
            "warm_fallback" => Some(CacheOutcome::WarmFallback),
            "cold" => Some(CacheOutcome::Cold),
            _ => None,
        }
    }
}

/// One solve response: the report plus the serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Echo of the request's correlation id.
    pub id: Option<String>,
    /// Registry name of the solver that answered.
    pub solver: String,
    /// How the response was produced.
    pub cache: CacheOutcome,
    /// Full content fingerprint of the resolved scenario.
    pub fingerprint: Fingerprint,
    /// Shape fingerprint of the resolved scenario.
    pub shape_fingerprint: Fingerprint,
    /// Wall-clock the *service* spent on this request — resolution, cache
    /// lookups, guard solves and solver work. Deliberately separate from
    /// [`SolveReport::runtime_s`], which always carries the wall time of the
    /// solve that produced the report: a cache hit reports the original
    /// solve's `runtime_s` next to a microsecond `service_wall_s`.
    pub service_wall_s: f64,
    /// Outer iterations spent on the serving path of *this* request: 0 for
    /// exact hits, the solve's iterations for cold responses, and the warm
    /// solve's plus any cold fallback's for warm-served responses — the
    /// same accounting as `OnlineStepRecord::outer_iterations`, so the true
    /// cost of a warm-served request (not just the kept report's) is
    /// visible.
    pub path_outer_iterations: usize,
    /// Outer iterations of the single-start floor guard (0 when no guard
    /// ran — hits, cold responses). Reported separately from the path, as
    /// in `OnlineStepRecord::guard_outer_iterations`: the guard is an
    /// independent solve a deployment can push onto an idle core.
    pub guard_outer_iterations: usize,
    /// The solve report (bit-identical to the cached one on exact hits).
    pub report: SolveReport,
}

fn malformed(detail: &str) -> QuheError {
    QuheError::InvalidConfig {
        reason: format!("malformed SolveResponse JSON: {detail}"),
    }
}

impl SolveResponse {
    /// Serializes to the response JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        JsonValue::object()
            .with(
                "id",
                self.id
                    .as_ref()
                    .map_or(JsonValue::Null, |id| JsonValue::String(id.clone())),
            )
            .with("solver", JsonValue::String(self.solver.clone()))
            .with("cache", JsonValue::String(self.cache.tag().to_string()))
            .with("fingerprint", JsonValue::String(self.fingerprint.to_hex()))
            .with(
                "shape_fingerprint",
                JsonValue::String(self.shape_fingerprint.to_hex()),
            )
            .with("service_wall_s", JsonValue::from_f64(self.service_wall_s))
            .with(
                "path_outer_iterations",
                JsonValue::from_usize(self.path_outer_iterations),
            )
            .with(
                "guard_outer_iterations",
                JsonValue::from_usize(self.guard_outer_iterations),
            )
            .with("report", self.report.to_json_value())
    }

    /// Serializes to a pretty-printed JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty_string()
    }

    /// Deserializes from the response JSON object.
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] naming the first missing or malformed
    /// field.
    pub fn from_json_value(value: &JsonValue) -> QuheResult<Self> {
        let str_field = |key: &str| -> QuheResult<String> {
            Ok(value
                .get(key)
                .ok_or_else(|| malformed(&format!("missing field '{key}'")))?
                .as_str()
                .ok_or_else(|| malformed(&format!("field '{key}' must be a string")))?
                .to_string())
        };
        let fp_field = |key: &str| -> QuheResult<Fingerprint> {
            Fingerprint::from_hex(&str_field(key)?)
                .ok_or_else(|| malformed(&format!("field '{key}' must be 32 hex characters")))
        };
        let id = match value.get("id") {
            None | Some(JsonValue::Null) => None,
            Some(other) => Some(
                other
                    .as_str()
                    .ok_or_else(|| malformed("field 'id' must be a string or null"))?
                    .to_string(),
            ),
        };
        let cache = CacheOutcome::from_tag(&str_field("cache")?)
            .ok_or_else(|| malformed("unknown cache outcome"))?;
        let usize_field = |key: &str| -> QuheResult<usize> {
            value
                .get(key)
                .ok_or_else(|| malformed(&format!("missing field '{key}'")))?
                .as_usize()
                .ok_or_else(|| malformed(&format!("field '{key}' must be a non-negative integer")))
        };
        Ok(Self {
            id,
            solver: str_field("solver")?,
            cache,
            fingerprint: fp_field("fingerprint")?,
            shape_fingerprint: fp_field("shape_fingerprint")?,
            service_wall_s: value
                .get("service_wall_s")
                .ok_or_else(|| malformed("missing field 'service_wall_s'"))?
                .as_f64()
                .ok_or_else(|| malformed("field 'service_wall_s' must be a number"))?,
            path_outer_iterations: usize_field("path_outer_iterations")?,
            guard_outer_iterations: usize_field("guard_outer_iterations")?,
            report: SolveReport::from_json_value(
                value
                    .get("report")
                    .ok_or_else(|| malformed("missing field 'report'"))?,
            )?,
        })
    }

    /// Parses a response serialized with [`SolveResponse::to_json`].
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] for malformed JSON or a malformed
    /// response shape.
    pub fn from_json(text: &str) -> QuheResult<Self> {
        let value = JsonValue::parse(text).map_err(|e| QuheError::InvalidConfig {
            reason: format!("malformed SolveResponse JSON: {e}"),
        })?;
        Self::from_json_value(&value)
    }
}

/// Monotonic serving counters, readable while workers are running.
#[derive(Debug, Default)]
struct ServiceCounters {
    exact_hits: AtomicUsize,
    warm_hits: AtomicUsize,
    warm_fallbacks: AtomicUsize,
    cold_solves: AtomicUsize,
}

/// A point-in-time snapshot of the serving counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests answered from the cache bit-identically.
    pub exact_hits: usize,
    /// Requests answered by an accepted warm solve.
    pub warm_hits: usize,
    /// Requests where the warm solve regressed and a fallback ran.
    pub warm_fallbacks: usize,
    /// Requests solved from scratch.
    pub cold_solves: usize,
    /// Reports currently cached.
    pub cached_reports: usize,
}

impl ServiceStats {
    /// Total requests served.
    pub fn total(&self) -> usize {
        self.exact_hits + self.warm_hits + self.warm_fallbacks + self.cold_solves
    }
}

/// A multi-worker solve service over a solver registry and a scenario
/// catalogue, with a shared content-addressed report cache.
#[derive(Debug)]
pub struct SolveService {
    registry: SolverRegistry,
    catalog: ScenarioCatalog,
    cache: ScenarioCache,
    counters: ServiceCounters,
}

impl SolveService {
    /// A service over an explicit registry and catalogue with the default
    /// cache capacity.
    pub fn new(registry: SolverRegistry, catalog: ScenarioCatalog) -> Self {
        Self {
            registry,
            catalog,
            cache: ScenarioCache::new(DEFAULT_CACHE_CAPACITY),
            counters: ServiceCounters::default(),
        }
    }

    /// The built-in solvers and catalogue under a shared configuration.
    pub fn builtin(config: QuheConfig) -> Self {
        Self::new(
            SolverRegistry::builtin_with(config),
            ScenarioCatalog::builtin(),
        )
    }

    /// Replaces the cache with one holding at most `capacity` reports.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ScenarioCache::new(capacity);
        self
    }

    /// The solver registry.
    pub fn registry(&self) -> &SolverRegistry {
        &self.registry
    }

    /// The scenario catalogue.
    pub fn catalog(&self) -> &ScenarioCatalog {
        &self.catalog
    }

    /// A snapshot of the serving counters and cache occupancy.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            exact_hits: self.counters.exact_hits.load(Ordering::Relaxed),
            warm_hits: self.counters.warm_hits.load(Ordering::Relaxed),
            warm_fallbacks: self.counters.warm_fallbacks.load(Ordering::Relaxed),
            cold_solves: self.counters.cold_solves.load(Ordering::Relaxed),
            cached_reports: self.cache.len(),
        }
    }

    /// Resolves a [`ScenarioSpec`] to a concrete scenario.
    ///
    /// # Errors
    /// Unknown catalogue names, invalid inline parameters and
    /// scenario-consistency failures.
    pub fn resolve_scenario(&self, spec: &ScenarioSpec) -> QuheResult<SystemScenario> {
        match spec {
            ScenarioSpec::Catalog { name, seed } => self.catalog.generate(name, *seed),
            ScenarioSpec::Drifted { name, seed, step } => {
                let config = OnlineTraceConfig {
                    drift_amplitude: DRIFT_AMPLITUDE,
                    key_rate_drift: DRIFT_AMPLITUDE,
                    ..OnlineTraceConfig::drift_only(*step)
                };
                let trace = SystemTrace::generate(&self.catalog, name, *seed, &config)?;
                Ok(trace
                    .steps()
                    .last()
                    .expect("a generated trace has at least the initial step")
                    .scenario
                    .clone())
            }
            ScenarioSpec::Inline(inline) => resolve_inline(inline),
        }
    }

    /// Handles one request: resolve, consult the cache, solve as needed.
    ///
    /// # Errors
    /// Resolution failures, unknown solver names and solver errors.
    pub fn handle(&self, request: &SolveRequest) -> QuheResult<SolveResponse> {
        let wall = Instant::now();
        let scenario = self.resolve_scenario(&request.scenario)?;
        self.handle_resolved(
            request.id.clone(),
            &scenario,
            &request.solver,
            &request.spec,
            wall,
        )
    }

    /// Handles a request whose scenario is already resolved (the entry point
    /// tests and embedding callers use to serve concrete scenarios).
    ///
    /// # Errors
    /// Unknown solver names and solver errors.
    pub fn handle_scenario(
        &self,
        id: Option<String>,
        scenario: &SystemScenario,
        solver: &str,
        spec: &SolveSpec,
    ) -> QuheResult<SolveResponse> {
        self.handle_resolved(id, scenario, solver, spec, Instant::now())
    }

    fn handle_resolved(
        &self,
        id: Option<String>,
        scenario: &SystemScenario,
        solver_name: &str,
        spec: &SolveSpec,
        wall: Instant,
    ) -> QuheResult<SolveResponse> {
        let solver = self.registry.resolve(solver_name)?;
        let fingerprint = scenario.fingerprint();
        let shape_fingerprint = scenario.shape_fingerprint();
        let spec_key = spec.to_json_value().to_compact_string();

        let respond =
            |cache: CacheOutcome, report: SolveReport, path_iters: usize, guard_iters: usize| {
                SolveResponse {
                    id: id.clone(),
                    solver: solver_name.to_string(),
                    cache,
                    fingerprint,
                    shape_fingerprint,
                    service_wall_s: wall.elapsed().as_secs_f64(),
                    path_outer_iterations: path_iters,
                    guard_outer_iterations: guard_iters,
                    report,
                }
            };

        // 1. Exact hit: zero solver work, the cached report bit-identically.
        if let Some(report) = self
            .cache
            .lookup_exact(fingerprint, scenario, solver_name, &spec_key)
        {
            self.counters.exact_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(respond(CacheOutcome::Hit, report, 0, 0));
        }

        // 2. Warm near miss: only for plain cold requests to a warm-capable
        //    solver — single-start and explicit warm requests are served as
        //    written.
        if matches!(spec.start(), StartMode::Cold) && solver.supports_warm_start() {
            if let Some(anchor) =
                self.cache
                    .lookup_anchor(shape_fingerprint, solver_name, scenario.num_clients())
            {
                let (outcome, report, is_anchor, path_iters, guard_iters) =
                    self.solve_warm(solver, scenario, spec, &anchor)?;
                match outcome {
                    CacheOutcome::Warm => self.counters.warm_hits.fetch_add(1, Ordering::Relaxed),
                    _ => self.counters.warm_fallbacks.fetch_add(1, Ordering::Relaxed),
                };
                // Cache for exact reuse. Warm-path results anchor future
                // warm chains only when the kept report actually came from
                // the from-scratch cold multi-start fallback — a fresher
                // converged anchor than the one that just lost; warm and
                // floor winners never re-anchor.
                self.cache.insert(CacheEntry {
                    scenario: scenario.clone(),
                    fingerprint,
                    shape: shape_fingerprint,
                    solver: solver_name.to_string(),
                    spec_key,
                    report: report.clone(),
                    anchor: is_anchor && spec.multi_start(),
                });
                return Ok(respond(outcome, report, path_iters, guard_iters));
            }
        }

        // 3. Cold: solve as requested and cache.
        let report = solver.solve(scenario, spec)?;
        self.counters.cold_solves.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(CacheEntry {
            scenario: scenario.clone(),
            fingerprint,
            shape: shape_fingerprint,
            solver: solver_name.to_string(),
            spec_key,
            report: report.clone(),
            // Only full cold multi-start solves anchor warm chains.
            anchor: matches!(spec.start(), StartMode::Cold) && spec.multi_start(),
        });
        let path_iters = report.outer_iterations;
        Ok(respond(CacheOutcome::Cold, report, path_iters, 0))
    }

    /// The warm near-miss path: warm solve at the tracking tolerance,
    /// single-start floor guard, cold fallback on regression. Mirrors the
    /// per-step logic of [`quhe_core::online::solve_online_with`]. Returns,
    /// alongside the outcome and kept report: whether the kept report is a
    /// from-scratch cold multi-start solve (eligible to anchor future warm
    /// chains), the outer iterations spent on the solve path (warm plus any
    /// fallback), and the floor guard's own iterations.
    fn solve_warm(
        &self,
        solver: &dyn Solver,
        scenario: &SystemScenario,
        spec: &SolveSpec,
        anchor: &CacheEntry,
    ) -> QuheResult<(CacheOutcome, SolveReport, bool, usize, usize)> {
        let config = spec.effective_config(solver.config());
        // One shared definition of warm-start semantics with the online
        // engine: scale-aware tracking tolerance, problem built under it,
        // delay bound re-tightened for this scenario.
        let (problem, warm_start) = prepare_warm_tracking(
            &config,
            scenario,
            anchor.report.objective,
            &anchor.report.variables,
        )?;
        let warm = solver.with_config(*problem.config()).solve_prepared(
            &problem,
            &SolveSpec::warm_from(warm_start).with_instrumentation(spec.instrumentation()),
        )?;

        // Floor guard: the cold single-start solve of this exact scenario
        // and configuration — the response must never fall below it.
        let floor = solver.with_config(config).solve(
            scenario,
            &SolveSpec::single_start().with_instrumentation(spec.instrumentation()),
        )?;

        let guard_iters = floor.outer_iterations;
        if warm.objective >= floor.objective {
            let path_iters = warm.outer_iterations;
            return Ok((CacheOutcome::Warm, warm, false, path_iters, guard_iters));
        }
        // The warm solve lost its basin: pay for the requested cold solve
        // and keep the best of the three candidates. The path bill covers
        // both solves, as in the online engine's fallback accounting.
        let cold = solver.solve(scenario, spec)?;
        let path_iters = warm.outer_iterations + cold.outer_iterations;
        let mut kept = warm;
        if floor.objective > kept.objective {
            kept = floor;
        }
        let cold_won = cold.objective > kept.objective;
        if cold_won {
            kept = cold;
        }
        Ok((
            CacheOutcome::WarmFallback,
            kept,
            cold_won,
            path_iters,
            guard_iters,
        ))
    }

    /// Handles a JSON request string, returning a JSON response string —
    /// never an `Err`: malformed requests and solver failures become an
    /// `{"error": ..., "id": ...}` envelope.
    pub fn handle_json(&self, text: &str) -> String {
        let request = match SolveRequest::from_json(text) {
            Ok(request) => request,
            Err(e) => return error_json(None, &e),
        };
        match self.handle(&request) {
            Ok(response) => response.to_json(),
            Err(e) => error_json(request.id.as_deref(), &e),
        }
    }

    /// Handles a batch of requests concurrently on a scoped worker pool
    /// (`threads = 0` sizes the pool to the machine, `1` runs serially),
    /// returning responses in request order. All workers share the cache.
    pub fn handle_batch(
        &self,
        requests: &[SolveRequest],
        threads: usize,
    ) -> Vec<QuheResult<SolveResponse>> {
        threadpool::ThreadPool::new(threads).par_map(requests, |request| self.handle(request))
    }
}

fn error_json(id: Option<&str>, error: &QuheError) -> String {
    JsonValue::object()
        .with(
            "id",
            id.map_or(JsonValue::Null, |i| JsonValue::String(i.to_string())),
        )
        .with("error", JsonValue::String(error.to_string()))
        .to_pretty_string()
}

fn resolve_inline(inline: &InlineScenario) -> QuheResult<SystemScenario> {
    // Overrides arrive on untrusted requests and the `with_*` builders
    // mutate without re-validating (their in-repo callers sweep known-good
    // grids), so the positivity checks `MecScenario::new` would enforce are
    // applied here — a bad value must come back as the error envelope, not
    // as a downstream panic.
    for (name, value) in [
        ("total_bandwidth_hz", inline.total_bandwidth_hz),
        (
            "total_server_frequency_hz",
            inline.total_server_frequency_hz,
        ),
        ("max_power_w", inline.max_power_w),
        ("max_client_frequency_hz", inline.max_client_frequency_hz),
    ] {
        if let Some(v) = value {
            if !(v > 0.0 && v.is_finite()) {
                return Err(QuheError::InvalidConfig {
                    reason: format!("inline {name} must be positive and finite, got {v}"),
                });
            }
        }
    }
    let mut mec = MecScenario::paper_with_num_clients(inline.num_clients, inline.seed);
    if let Some(bandwidth) = inline.total_bandwidth_hz {
        mec = mec.with_total_bandwidth(bandwidth);
    }
    if let Some(frequency) = inline.total_server_frequency_hz {
        mec = mec.with_total_server_frequency(frequency);
    }
    if let Some(power) = inline.max_power_w {
        mec = mec.with_max_power(power);
    }
    if let Some(frequency) = inline.max_client_frequency_hz {
        mec = mec.with_max_client_frequency(frequency);
    }
    let lambda_choices = inline
        .lambda_choices
        .clone()
        .unwrap_or_else(|| vec![1 << 15, 1 << 16, 1 << 17]);
    SystemScenario::new(
        synthetic_scenario(inline.num_clients, inline.seed),
        mec,
        lambda_choices,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> QuheConfig {
        QuheConfig {
            max_outer_iterations: 2,
            max_stage3_iterations: 8,
            solver_threads: 1,
            ..QuheConfig::default()
        }
    }

    fn quick_service() -> SolveService {
        SolveService::builtin(quick_config())
    }

    #[test]
    fn repeat_requests_hit_the_cache_bit_identically() {
        let service = quick_service();
        let request = SolveRequest::catalog("paper_default", 42).with_id("first");
        let cold = service.handle(&request).unwrap();
        assert_eq!(cold.cache, CacheOutcome::Cold);

        let hit = service
            .handle(&SolveRequest::catalog("paper_default", 42).with_id("second"))
            .unwrap();
        assert_eq!(hit.cache, CacheOutcome::Hit);
        assert_eq!(hit.id.as_deref(), Some("second"));
        // A hit spends zero solver work on its path; the cold response's
        // path bill is exactly its solve.
        assert_eq!(hit.path_outer_iterations, 0);
        assert_eq!(hit.guard_outer_iterations, 0);
        assert_eq!(cold.path_outer_iterations, cold.report.outer_iterations);
        assert_eq!(cold.guard_outer_iterations, 0);
        // Bit-identical: the whole report, including the original wall time.
        assert_eq!(hit.report, cold.report);
        assert_eq!(
            hit.report.runtime_s.to_bits(),
            cold.report.runtime_s.to_bits(),
            "a hit carries the producing solve's wall time"
        );
        let stats = service.stats();
        assert_eq!(stats.exact_hits, 1);
        assert_eq!(stats.cold_solves, 1);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn different_spec_or_solver_is_not_an_exact_hit() {
        let service = quick_service();
        service
            .handle(&SolveRequest::catalog("paper_default", 1))
            .unwrap();
        let single = service
            .handle(&SolveRequest::catalog("paper_default", 1).with_spec(SolveSpec::single_start()))
            .unwrap();
        assert_ne!(single.cache, CacheOutcome::Hit);
        let aa = service
            .handle(&SolveRequest::catalog("paper_default", 1).with_solver("aa"))
            .unwrap();
        assert_eq!(aa.cache, CacheOutcome::Cold);
    }

    #[test]
    fn drifted_requests_warm_start_and_respect_the_floor() {
        let service = quick_service();
        let base = service
            .handle(&SolveRequest::catalog("paper_default", 42))
            .unwrap();
        assert_eq!(base.cache, CacheOutcome::Cold);

        let drifted_request = SolveRequest::drifted("paper_default", 42, 2);
        let scenario = service.resolve_scenario(&drifted_request.scenario).unwrap();
        assert_eq!(scenario.shape_fingerprint(), base.shape_fingerprint);
        assert_ne!(scenario.fingerprint(), base.fingerprint);

        let drifted = service.handle(&drifted_request).unwrap();
        assert!(
            matches!(
                drifted.cache,
                CacheOutcome::Warm | CacheOutcome::WarmFallback
            ),
            "drifted request served {:?}",
            drifted.cache
        );
        // Warm serving always runs the floor guard; a purely warm response
        // bills exactly its warm solve on the path.
        assert!(drifted.guard_outer_iterations >= 1);
        if drifted.cache == CacheOutcome::Warm {
            assert_eq!(
                drifted.path_outer_iterations,
                drifted.report.outer_iterations
            );
        }
        // The fallback guarantee: never below the cold single-start floor.
        let floor = service
            .registry()
            .resolve("quhe")
            .unwrap()
            .solve(&scenario, &SolveSpec::single_start())
            .unwrap();
        assert!(drifted.report.objective >= floor.objective);
        // And the drifted result was cached for exact reuse.
        let repeat = service.handle(&drifted_request).unwrap();
        assert_eq!(repeat.cache, CacheOutcome::Hit);
        assert_eq!(repeat.report, drifted.report);
    }

    #[test]
    fn one_shot_solvers_never_warm_start() {
        let service = quick_service();
        service
            .handle(&SolveRequest::catalog("paper_default", 7).with_solver("aa"))
            .unwrap();
        let drifted = service
            .handle(&SolveRequest::drifted("paper_default", 7, 1).with_solver("aa"))
            .unwrap();
        assert_eq!(drifted.cache, CacheOutcome::Cold);
    }

    #[test]
    fn inline_scenarios_resolve_with_overrides() {
        let service = quick_service();
        let request = SolveRequest {
            id: None,
            scenario: ScenarioSpec::Inline(InlineScenario {
                total_bandwidth_hz: Some(5e6),
                ..InlineScenario::new(4, 9)
            }),
            solver: "aa".to_string(),
            spec: SolveSpec::cold(),
        };
        let scenario = service.resolve_scenario(&request.scenario).unwrap();
        assert_eq!(scenario.num_clients(), 4);
        assert_eq!(scenario.mec().total_bandwidth_hz(), 5e6);
        let response = service.handle(&request).unwrap();
        assert_eq!(response.cache, CacheOutcome::Cold);
        assert!(response.report.objective.is_finite());
    }

    #[test]
    fn responses_round_trip_through_json() {
        let service = quick_service();
        let response = service
            .handle(&SolveRequest::catalog("paper_default", 3).with_id("rt"))
            .unwrap();
        let parsed = SolveResponse::from_json(&response.to_json()).unwrap();
        assert_eq!(parsed, response);
        assert_eq!(
            parsed.report.objective.to_bits(),
            response.report.objective.to_bits()
        );
    }

    #[test]
    fn handle_json_wraps_errors_in_an_envelope() {
        let service = quick_service();
        let ok = service.handle_json(
            "{\"id\": \"j1\", \"scenario\": {\"catalog\": \"paper_default\", \"seed\": 5}}",
        );
        let response = SolveResponse::from_json(&ok).unwrap();
        assert_eq!(response.id.as_deref(), Some("j1"));

        let bad = service.handle_json("{\"scenario\": {}}");
        let value = JsonValue::parse(&bad).unwrap();
        assert!(value
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("'catalog' or 'inline'"));

        let unknown = service.handle_json(
            "{\"id\": \"j2\", \"scenario\": {\"catalog\": \"atlantis\", \"seed\": 1}}",
        );
        let value = JsonValue::parse(&unknown).unwrap();
        assert_eq!(value.get("id").and_then(JsonValue::as_str), Some("j2"));
        assert!(value
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains("atlantis"));

        // Hostile inline overrides come back as the envelope, never as a
        // panic: the unchecked `with_*` builders are guarded by the
        // service's own validation.
        for bad in [
            "{\"id\": \"j3\", \"scenario\": {\"inline\": {\"num_clients\": 2, \"seed\": 1, \
             \"total_bandwidth_hz\": -1.0}}}",
            "{\"id\": \"j4\", \"scenario\": {\"inline\": {\"num_clients\": 2, \"seed\": 1, \
             \"max_power_w\": 0.0}}}",
        ] {
            let value = JsonValue::parse(&service.handle_json(bad)).unwrap();
            assert!(
                value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap()
                    .contains("must be positive and finite"),
                "{bad}"
            );
        }
    }

    #[test]
    fn batch_serving_matches_serial_and_dedupes() {
        let service = quick_service();
        // Warm the cache serially, then replay duplicates concurrently:
        // every one must be an exact hit, bit-identical to the original
        // (duplicates racing ahead of any cached original would instead
        // each solve cold — correct, just unde-duplicated).
        let first = service
            .handle(&SolveRequest::catalog("paper_default", 1))
            .unwrap();
        let duplicates: Vec<SolveRequest> = (0..4)
            .map(|_| SolveRequest::catalog("paper_default", 1))
            .collect();
        for response in service.handle_batch(&duplicates, 2) {
            let response = response.unwrap();
            assert_eq!(response.cache, CacheOutcome::Hit);
            assert_eq!(response.report, first.report);
        }

        // A cold batch produces the same solutions as a fresh serial
        // service (wall clocks differ; the solutions must not).
        let requests = [
            SolveRequest::catalog("far_edge", 1),
            SolveRequest::catalog("far_edge", 2),
        ];
        let parallel = service.handle_batch(&requests, 2);
        let serial = quick_service();
        for (request, parallel_response) in requests.iter().zip(parallel) {
            let parallel_response = parallel_response.unwrap();
            let response = serial.handle(request).unwrap();
            assert_eq!(
                response.report.objective,
                parallel_response.report.objective
            );
            assert_eq!(
                response.report.variables,
                parallel_response.report.variables
            );
        }
    }
}
