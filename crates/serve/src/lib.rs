//! # quhe-serve — the solve service of the QuHE reproduction
//!
//! A long-running serving layer over the unified solver surface of
//! `quhe-core`: requests name a scenario (catalogue world, deterministic
//! drifted variant, or inline parameters), a registry solver and a
//! [`SolveSpec`](quhe_core::solver::SolveSpec); responses carry a
//! [`SolveReport`](quhe_core::solver::SolveReport) plus serving metadata.
//! Both sides are JSON through [`quhe_core::json`], so the protocol shares
//! the report vocabulary of every `BENCH_*.json` artifact.
//!
//! The service's core is a **content-addressed cache** keyed by the
//! canonical scenario fingerprints of [`quhe_core::fingerprint`]:
//!
//! * an **exact** fingerprint hit returns the cached report bit-identically
//!   with zero solver work (the report keeps the original solve's
//!   `runtime_s`; the lookup cost appears only in the response's
//!   `service_wall_s`);
//! * a **shape** hit — the same world modulo drifted channel/load fields —
//!   warm-starts the solve from the cached anchor's optimum, guarded by the
//!   cold single-start floor exactly like the online engine's per-step
//!   fallback guarantee, with a cold re-solve when the warm solve regresses;
//! * everything else solves cold and populates the cache.
//!
//! [`SolveService::handle_batch`] shards request streams across the scoped
//! worker pool with all workers sharing one cache. The `serve_bench` binary
//! in `quhe-bench` replays catalogue-derived request streams through this
//! service and emits `BENCH_serve.json`; `examples/serve_roundtrip.rs` walks
//! the JSON protocol end to end.
//!
//! ```
//! use quhe_serve::prelude::*;
//! use quhe_core::params::QuheConfig;
//!
//! let service = SolveService::builtin(QuheConfig {
//!     max_outer_iterations: 1,
//!     max_stage3_iterations: 4,
//!     solver_threads: 1,
//!     ..QuheConfig::default()
//! });
//! let request = SolveRequest::catalog("paper_default", 42);
//! let cold = service.handle(&request).unwrap();
//! let hit = service.handle(&request).unwrap();
//! assert_eq!(hit.cache, CacheOutcome::Hit);
//! assert_eq!(hit.report, cold.report); // bit-identical, zero solver work
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod request;
pub mod service;

pub use cache::{CacheEntry, ScenarioCache};
pub use request::{InlineScenario, ScenarioSpec, SolveRequest};
pub use service::{
    CacheOutcome, ServiceStats, SolveResponse, SolveService, DEFAULT_CACHE_CAPACITY,
    DRIFT_AMPLITUDE,
};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::cache::ScenarioCache;
    pub use crate::request::{InlineScenario, ScenarioSpec, SolveRequest};
    pub use crate::service::{CacheOutcome, ServiceStats, SolveResponse, SolveService};
}
