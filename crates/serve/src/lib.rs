//! # quhe-serve — the solve service of the QuHE reproduction
//!
//! A long-running serving layer over the unified solver surface of
//! `quhe-core`: requests name a scenario (catalogue world, deterministic
//! drifted variant, or inline parameters), a registry solver and a
//! [`SolveSpec`](quhe_core::solver::SolveSpec); responses carry a
//! [`SolveReport`](quhe_core::solver::SolveReport) plus serving metadata.
//! Both sides are JSON through [`quhe_core::json`], so the protocol shares
//! the report vocabulary of every `BENCH_*.json` artifact.
//!
//! The service's core is a **content-addressed cache** keyed by the
//! canonical scenario fingerprints of [`quhe_core::fingerprint`], with LRU
//! eviction (hits refresh recency) and JSON snapshot/restore so a restarted
//! service warms from disk instead of re-solving its working set:
//!
//! * an **exact** fingerprint hit returns the cached report bit-identically
//!   with zero solver work (the report keeps the original solve's
//!   `runtime_s`; the lookup cost appears only in the response's
//!   `service_wall_s`);
//! * a **shape** hit — the same world modulo drifted channel/load fields —
//!   warm-starts the solve from the optimum of the *nearest* cached anchor
//!   (ranked by the pinned drift distance over exactly the drifted fields;
//!   see [`cache`]), guarded by the cold single-start floor exactly like
//!   the online engine's per-step fallback guarantee, with a cold re-solve
//!   when the warm solve regresses;
//! * everything else solves cold and populates the cache.
//!
//! The cache keeps consistent telemetry ([`CacheStats`]) surfaced through
//! [`service::SolveService::stats`] and the bench artifacts' `cache`
//! blocks.
//!
//! In front of the cache sits a [`coalesce`] singleflight table: identical
//! requests arriving **concurrently** elect one leader that solves while
//! every follower blocks on the flight and receives the report
//! bit-identically — N identical in-flight requests cost one solve, closing
//! the window the completed-solve cache cannot cover.
//!
//! The [`net`] module puts a network front end on the service: a framed TCP
//! listener ([`wire`]: 4-byte length-prefixed JSON frames, versioned
//! `quhe-serve/v2` envelope with stable error kinds) feeding a bounded
//! admission queue drained by a worker pool, with shed-load `overloaded`
//! envelopes when the queue is full and graceful shutdown. Sizing — cache
//! capacity, worker threads, queue bound, coalescing — lives in one
//! [`ServiceConfig`] builder.
//!
//! [`SolveService::handle_batch`] shards request streams across the scoped
//! worker pool with all workers sharing one cache. The `serve_bench` and
//! `load_bench` binaries in `quhe-bench` drive this service (in-process and
//! over TCP respectively) and emit `BENCH_serve.json` / `BENCH_load.json`;
//! `examples/serve_roundtrip.rs` walks the JSON protocol end to end and
//! `examples/tcp_client.rs` the framed TCP front end.
//!
//! ```
//! use quhe_serve::prelude::*;
//! use quhe_core::params::QuheConfig;
//!
//! let service = ServiceConfig::new(QuheConfig {
//!     max_outer_iterations: 1,
//!     max_stage3_iterations: 4,
//!     solver_threads: 1,
//!     ..QuheConfig::default()
//! })
//! .build();
//! let request = SolveRequest::catalog("paper_default", 42);
//! let cold = service.handle(&request).unwrap();
//! let hit = service.handle(&request).unwrap();
//! assert_eq!(hit.cache, CacheOutcome::Hit);
//! assert_eq!(hit.report, cold.report); // bit-identical, zero solver work
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod net;
pub mod request;
pub mod service;
pub mod wire;

pub use cache::{CacheEntry, CacheStats, ScenarioCache, MAX_ANCHORS_PER_BUCKET, SNAPSHOT_SCHEMA};
pub use net::{NetStats, TcpServer};
pub use request::{InlineScenario, ScenarioSpec, SolveRequest};
pub use service::{
    CacheOutcome, ServiceConfig, ServiceStats, SolveResponse, SolveService, DEFAULT_CACHE_CAPACITY,
    DEFAULT_QUEUE_BOUND, DRIFT_AMPLITUDE,
};
pub use wire::{Protocol, WireReply, MAX_FRAME_BYTES, PROTOCOL_V2};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::cache::{CacheStats, ScenarioCache};
    pub use crate::net::{NetStats, TcpServer};
    pub use crate::request::{InlineScenario, ScenarioSpec, SolveRequest};
    pub use crate::service::{
        CacheOutcome, ServiceConfig, ServiceStats, SolveResponse, SolveService,
    };
    pub use crate::wire::{Protocol, WireReply, PROTOCOL_V2};
}
