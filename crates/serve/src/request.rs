//! The serve protocol's request side: [`SolveRequest`] and the
//! [`ScenarioSpec`] ways of naming a scenario.
//!
//! A request is a JSON object:
//!
//! ```json
//! {
//!   "id": "req-17",
//!   "scenario": {"catalog": "paper_default", "seed": 42},
//!   "solver": "quhe",
//!   "spec": { ... }
//! }
//! ```
//!
//! * `id` (optional) — an opaque correlation token echoed in the response.
//! * `scenario` (required) — one of the three [`ScenarioSpec`] shapes.
//! * `solver` (optional, default `"quhe"`) — a registry name.
//! * `spec` (optional, default cold) — a serialized [`SolveSpec`], exactly
//!   the shape embedded in every serialized `SolveReport`.
//!
//! Because the underlying [`quhe_core::json`] parser rejects duplicate
//! object keys, a request cannot smuggle two conflicting values for the same
//! field past the service.

use quhe_core::error::{QuheError, QuheResult};
use quhe_core::json::JsonValue;
use quhe_core::solver::SolveSpec;

/// Upper bound on `num_clients` an inline request may ask for. Requests are
/// untrusted input: without a ceiling, one request could demand a
/// billion-client scenario and take the whole service down allocating it.
/// The bound is far above every catalogue world (the largest is 32
/// clients) while keeping the worst-case request solvable.
pub const MAX_INLINE_CLIENTS: usize = 4096;

/// Upper bound on `drift_step`. Resolving a drifted world replays that many
/// deterministic drift steps, so an unbounded value would be a CPU
/// denial-of-service knob on an untrusted field.
pub const MAX_DRIFT_STEP: usize = 512;

/// How a request names the scenario to solve.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// A named catalogue world at a seed:
    /// `{"catalog": "paper_default", "seed": 42}`.
    Catalog {
        /// Registered name in the service's `ScenarioCatalog`.
        name: String,
        /// Generation seed.
        seed: u64,
    },
    /// A catalogue world observed after `step` steps of the serve layer's
    /// fixed drift model (±1 % per-step channel and key-rate drift, no
    /// discrete events — the `online_eval` drift regime):
    /// `{"catalog": "paper_default", "seed": 42, "drift_step": 3}`.
    ///
    /// The drifted world keeps the catalogue world's *shape* (same clients,
    /// routes, budgets and degree choices), so it shares the base request's
    /// shape fingerprint and is the protocol's way of asking for a
    /// warm-start-eligible near miss deterministically.
    Drifted {
        /// Registered catalogue name.
        name: String,
        /// Generation seed (of both the base world and the drift).
        seed: u64,
        /// Number of drift steps applied (must be at least 1).
        step: usize,
    },
    /// An inline parameterization:
    /// `{"inline": {"num_clients": 8, "seed": 3, ...}}`.
    Inline(InlineScenario),
}

/// Inline scenario parameters: the paper's world scaled to `num_clients`
/// (clients drawn with `seed`, QKD side the synthetic two-level tree of the
/// same size and seed), with optional budget overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineScenario {
    /// Number of clients (and QKD routes).
    pub num_clients: usize,
    /// Placement / fading / topology seed.
    pub seed: u64,
    /// Override of the total FDMA bandwidth in Hz.
    pub total_bandwidth_hz: Option<f64>,
    /// Override of the total server compute in Hz.
    pub total_server_frequency_hz: Option<f64>,
    /// Override of every client's maximum transmit power in W.
    pub max_power_w: Option<f64>,
    /// Override of every client's maximum CPU frequency in Hz.
    pub max_client_frequency_hz: Option<f64>,
    /// Override of the CKKS degree choice set (default the paper's
    /// `{2^15, 2^16, 2^17}`).
    pub lambda_choices: Option<Vec<u64>>,
}

impl InlineScenario {
    /// A plain inline spec with no overrides.
    pub fn new(num_clients: usize, seed: u64) -> Self {
        Self {
            num_clients,
            seed,
            total_bandwidth_hz: None,
            total_server_frequency_hz: None,
            max_power_w: None,
            max_client_frequency_hz: None,
            lambda_choices: None,
        }
    }
}

fn malformed(detail: &str) -> QuheError {
    QuheError::InvalidConfig {
        reason: format!("malformed SolveRequest JSON: {detail}"),
    }
}

fn u64_field(value: &JsonValue, key: &str) -> QuheResult<u64> {
    value
        .get(key)
        .ok_or_else(|| malformed(&format!("missing field '{key}'")))?
        .as_u64()
        .ok_or_else(|| malformed(&format!("field '{key}' must be a non-negative integer")))
}

fn opt_f64_field(value: &JsonValue, key: &str) -> QuheResult<Option<f64>> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(other) => {
            Ok(Some(other.as_f64().ok_or_else(|| {
                malformed(&format!("field '{key}' must be a number"))
            })?))
        }
    }
}

impl ScenarioSpec {
    /// Serializes to the protocol's `scenario` JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        match self {
            ScenarioSpec::Catalog { name, seed } => JsonValue::object()
                .with("catalog", JsonValue::String(name.clone()))
                .with("seed", JsonValue::from_u64(*seed)),
            ScenarioSpec::Drifted { name, seed, step } => JsonValue::object()
                .with("catalog", JsonValue::String(name.clone()))
                .with("seed", JsonValue::from_u64(*seed))
                .with("drift_step", JsonValue::from_usize(*step)),
            ScenarioSpec::Inline(inline) => {
                let mut body = JsonValue::object()
                    .with("num_clients", JsonValue::from_usize(inline.num_clients))
                    .with("seed", JsonValue::from_u64(inline.seed));
                for (key, value) in [
                    ("total_bandwidth_hz", inline.total_bandwidth_hz),
                    (
                        "total_server_frequency_hz",
                        inline.total_server_frequency_hz,
                    ),
                    ("max_power_w", inline.max_power_w),
                    ("max_client_frequency_hz", inline.max_client_frequency_hz),
                ] {
                    if let Some(v) = value {
                        body.set(key, JsonValue::from_f64(v));
                    }
                }
                if let Some(lambda) = &inline.lambda_choices {
                    body.set("lambda_choices", JsonValue::from_u64_slice(lambda));
                }
                JsonValue::object().with("inline", body)
            }
        }
    }

    /// Parses the protocol's `scenario` JSON object.
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] naming the first missing or malformed
    /// field; a spec with neither `catalog` nor `inline` is rejected.
    pub fn from_json_value(value: &JsonValue) -> QuheResult<Self> {
        if let Some(inline) = value.get("inline") {
            // Conflicting shapes are rejected, not silently resolved: an
            // inline spec must not also carry catalogue fields, which would
            // otherwise be dropped and solve a different world than the
            // client asked for.
            for key in ["catalog", "seed", "drift_step"] {
                if value.get(key).is_some() {
                    return Err(malformed(&format!(
                        "scenario mixes 'inline' with '{key}'; pick one shape"
                    )));
                }
            }
            let num_clients_raw = u64_field(inline, "num_clients")?;
            if num_clients_raw == 0 {
                return Err(malformed("inline num_clients must be at least 1"));
            }
            if num_clients_raw > MAX_INLINE_CLIENTS as u64 {
                return Err(malformed(&format!(
                    "inline num_clients {num_clients_raw} exceeds the service \
                     limit of {MAX_INLINE_CLIENTS}"
                )));
            }
            let num_clients = num_clients_raw as usize;
            let lambda_choices = match inline.get("lambda_choices") {
                None | Some(JsonValue::Null) => None,
                Some(other) => Some(
                    other
                        .as_array()
                        .ok_or_else(|| malformed("field 'lambda_choices' must be an array"))?
                        .iter()
                        .map(|v| {
                            v.as_u64().ok_or_else(|| {
                                malformed("field 'lambda_choices' must hold integers")
                            })
                        })
                        .collect::<QuheResult<Vec<u64>>>()?,
                ),
            };
            return Ok(ScenarioSpec::Inline(InlineScenario {
                num_clients,
                seed: u64_field(inline, "seed")?,
                total_bandwidth_hz: opt_f64_field(inline, "total_bandwidth_hz")?,
                total_server_frequency_hz: opt_f64_field(inline, "total_server_frequency_hz")?,
                max_power_w: opt_f64_field(inline, "max_power_w")?,
                max_client_frequency_hz: opt_f64_field(inline, "max_client_frequency_hz")?,
                lambda_choices,
            }));
        }
        if let Some(name) = value.get("catalog") {
            let name = name
                .as_str()
                .ok_or_else(|| malformed("field 'catalog' must be a string"))?
                .to_string();
            let seed = u64_field(value, "seed")?;
            return match value.get("drift_step") {
                None | Some(JsonValue::Null) => Ok(ScenarioSpec::Catalog { name, seed }),
                Some(step) => {
                    let step = step.as_usize().ok_or_else(|| {
                        malformed("field 'drift_step' must be a non-negative integer")
                    })?;
                    if step == 0 {
                        return Err(malformed(
                            "drift_step must be at least 1 (omit it for the undrifted world)",
                        ));
                    }
                    if step > MAX_DRIFT_STEP {
                        return Err(malformed(&format!(
                            "drift_step {step} exceeds the service limit of {MAX_DRIFT_STEP}"
                        )));
                    }
                    Ok(ScenarioSpec::Drifted { name, seed, step })
                }
            };
        }
        Err(malformed(
            "scenario must name a world via 'catalog' or 'inline'",
        ))
    }
}

/// One solve request: a scenario, a solver name and a spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// Opaque correlation token, echoed in the response.
    pub id: Option<String>,
    /// The scenario to solve.
    pub scenario: ScenarioSpec,
    /// Registry name of the solver to run (default `"quhe"`).
    pub solver: String,
    /// The solve spec (default [`SolveSpec::cold`]).
    pub spec: SolveSpec,
}

impl SolveRequest {
    /// A cold `quhe` request for a catalogue world.
    pub fn catalog(name: &str, seed: u64) -> Self {
        Self {
            id: None,
            scenario: ScenarioSpec::Catalog {
                name: name.to_string(),
                seed,
            },
            solver: "quhe".to_string(),
            spec: SolveSpec::cold(),
        }
    }

    /// A cold `quhe` request for a drifted catalogue world.
    pub fn drifted(name: &str, seed: u64, step: usize) -> Self {
        Self {
            scenario: ScenarioSpec::Drifted {
                name: name.to_string(),
                seed,
                step,
            },
            ..Self::catalog(name, seed)
        }
    }

    /// Sets the correlation id.
    #[must_use]
    pub fn with_id(mut self, id: &str) -> Self {
        self.id = Some(id.to_string());
        self
    }

    /// Sets the solver name.
    #[must_use]
    pub fn with_solver(mut self, solver: &str) -> Self {
        self.solver = solver.to_string();
        self
    }

    /// Sets the solve spec.
    #[must_use]
    pub fn with_spec(mut self, spec: SolveSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Serializes to the request JSON object.
    pub fn to_json_value(&self) -> JsonValue {
        let mut value = JsonValue::object();
        if let Some(id) = &self.id {
            value.set("id", JsonValue::String(id.clone()));
        }
        value
            .with("scenario", self.scenario.to_json_value())
            .with("solver", JsonValue::String(self.solver.clone()))
            .with("spec", self.spec.to_json_value())
    }

    /// Serializes to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_compact_string()
    }

    /// Parses a request JSON object.
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] naming the first missing or malformed
    /// field.
    pub fn from_json_value(value: &JsonValue) -> QuheResult<Self> {
        let id = match value.get("id") {
            None | Some(JsonValue::Null) => None,
            Some(other) => Some(
                other
                    .as_str()
                    .ok_or_else(|| malformed("field 'id' must be a string"))?
                    .to_string(),
            ),
        };
        let scenario = ScenarioSpec::from_json_value(
            value
                .get("scenario")
                .ok_or_else(|| malformed("missing field 'scenario'"))?,
        )?;
        let solver = match value.get("solver") {
            None | Some(JsonValue::Null) => "quhe".to_string(),
            Some(other) => other
                .as_str()
                .ok_or_else(|| malformed("field 'solver' must be a string"))?
                .to_string(),
        };
        let spec = match value.get("spec") {
            None | Some(JsonValue::Null) => SolveSpec::cold(),
            Some(other) => SolveSpec::from_json_value(other)?,
        };
        Ok(Self {
            id,
            scenario,
            solver,
            spec,
        })
    }

    /// Parses a request JSON string.
    ///
    /// # Errors
    /// [`QuheError::InvalidConfig`] for malformed JSON (including duplicate
    /// object keys) or a malformed request shape.
    pub fn from_json(text: &str) -> QuheResult<Self> {
        let value = JsonValue::parse(text).map_err(|e| QuheError::InvalidConfig {
            reason: format!("malformed SolveRequest JSON: {e}"),
        })?;
        Self::from_json_value(&value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quhe_core::solver::InstrumentationLevel;

    #[test]
    fn requests_round_trip_through_json() {
        let requests = [
            SolveRequest::catalog("paper_default", 42).with_id("req-1"),
            SolveRequest::drifted("far_edge", 7, 3).with_solver("aa"),
            SolveRequest {
                id: None,
                scenario: ScenarioSpec::Inline(InlineScenario {
                    num_clients: 8,
                    seed: 3,
                    total_bandwidth_hz: Some(5e6),
                    total_server_frequency_hz: None,
                    max_power_w: Some(0.4),
                    max_client_frequency_hz: None,
                    lambda_choices: Some(vec![1 << 14, 1 << 15]),
                }),
                solver: "quhe".to_string(),
                spec: SolveSpec::single_start().with_instrumentation(InstrumentationLevel::Minimal),
            },
        ];
        for request in requests {
            let parsed = SolveRequest::from_json(&request.to_json()).unwrap();
            assert_eq!(parsed, request);
        }
    }

    #[test]
    fn defaults_fill_solver_and_spec() {
        let request = SolveRequest::from_json(
            "{\"scenario\": {\"catalog\": \"paper_default\", \"seed\": 1}}",
        )
        .unwrap();
        assert_eq!(request.solver, "quhe");
        assert_eq!(request.spec, SolveSpec::cold());
        assert_eq!(request.id, None);
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (text, needle) in [
            ("{}", "missing field 'scenario'"),
            ("{\"scenario\": {}}", "'catalog' or 'inline'"),
            (
                "{\"scenario\": {\"catalog\": \"x\"}}",
                "missing field 'seed'",
            ),
            (
                "{\"scenario\": {\"catalog\": \"x\", \"seed\": 1, \"drift_step\": 0}}",
                "drift_step must be at least 1",
            ),
            (
                "{\"scenario\": {\"inline\": {\"num_clients\": 0, \"seed\": 1}}}",
                "num_clients must be at least 1",
            ),
            (
                "{\"scenario\": {\"inline\": {\"num_clients\": 6, \"seed\": 1}, \
                 \"drift_step\": 2}}",
                "mixes 'inline' with 'drift_step'",
            ),
            (
                "{\"scenario\": {\"inline\": {\"num_clients\": 18446744073709551615, \
                 \"seed\": 1}}}",
                "exceeds the service limit of 4096",
            ),
            (
                "{\"scenario\": {\"catalog\": \"x\", \"seed\": 1, \"drift_step\": 100000}}",
                "exceeds the service limit of 512",
            ),
            (
                "{\"scenario\": {\"catalog\": \"x\", \"inline\": {\"num_clients\": 6, \
                 \"seed\": 1}}}",
                "mixes 'inline' with 'catalog'",
            ),
            ("not json", "malformed SolveRequest JSON"),
        ] {
            let err = SolveRequest::from_json(text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn duplicate_keys_in_a_request_are_rejected() {
        let err = SolveRequest::from_json(
            "{\"scenario\": {\"catalog\": \"a\", \"seed\": 1, \"seed\": 2}}",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("duplicate object key 'seed'"), "{err}");
    }
}
